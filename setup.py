"""Setuptools shim; metadata lives in pyproject.toml.

Kept so that environments without the ``wheel`` package (where pip's
PEP 517 editable path fails with "invalid command 'bdist_wheel'") can
still do ``python setup.py develop``.
"""
from setuptools import setup

setup()
