"""The paper's Figure 2: a missing ``__syncwarp`` under ITS.

Pre-Volta GPUs executed warps in lockstep, so warp-level reduction steps
needed no explicit synchronization.  Independent Thread Scheduling (Volta,
2017) removed that guarantee: the classic reduction tail now needs
``__syncwarp()`` between steps, and code that omits it carries an
ITS-induced race that only iGUARD-class detectors can see.

The example runs the reduction tail with and without the warp barrier,
under both iGUARD and the ScoRD configuration (scoped-race detection but
no ITS support) — demonstrating the paper's point that ScoRD misses all
ITS races (iGUARD found 5 unreported ones in ScoRD's own suite).

Run with::

    python examples/its_reduction.py
"""

from repro import Device, IGuard, ScoRD
from repro.gpu import load, store, syncwarp


def make_reduction(with_syncwarp):
    def reduction_tail(ctx, sdata, result):
        """The last warp-level steps of a block reduction (Figure 2)."""
        tid = ctx.tid_in_block
        base = ctx.block_id * ctx.block_dim
        my_sum = yield load(sdata, base + tid)

        if tid < 2:
            other = yield load(sdata, base + tid + 2)
            my_sum += other
            yield store(sdata, base + tid, my_sum)
        if with_syncwarp:
            yield syncwarp()  # <-- the line Figure 2 comments out
        if tid == 0:
            other = yield load(sdata, base + 1)
            my_sum += other
            yield store(result, ctx.block_id, my_sum)

    return reduction_tail


def run(with_syncwarp, detector_factory, label):
    device = Device()
    detector = device.add_tool(detector_factory())
    sdata = device.alloc("sdata", 64, init=1)
    result = device.alloc("result", 2, init=0)
    # Several seeds: ITS interleavings vary per run, like real hardware.
    for seed in (1, 2, 3, 4):
        device.launch(make_reduction(with_syncwarp), grid_dim=2,
                      block_dim=32, args=(sdata, result), seed=seed)
        sdata.fill(1)
    races = detector.races.sites()
    print(f"{label:55s} -> {len(races)} race site(s) "
          f"{[str(t) for _, t in races]}")


def main():
    print("Figure 2 reduction tail, 4 schedules each:\n")
    run(False, IGuard, "missing __syncwarp under iGUARD")
    run(True, IGuard, "with __syncwarp under iGUARD")
    run(False, ScoRD, "missing __syncwarp under ScoRD (no ITS support)")
    print("\nScoRD assumes lockstep warps, so the ITS race is invisible")
    print("to it; iGUARD's WarpBarID tracking catches it (check R2).")


if __name__ == "__main__":
    main()
