"""The paper's Figure 1: a scoped-atomic race in work-stealing graph coloring.

Each threadblock colors vertices from its own partition, advancing its
``nextHead`` cursor with a *block-scope* atomic — fast, and correct as
long as nobody else reads the cursor.  But when a block finishes early it
*steals* from a victim's partition with a device-scope atomic, and the
victim's block-scope updates are not guaranteed visible to it: two blocks
can color the same vertex range.

This example runs the buggy getWork() on a device with the weak-visibility
memory model, so the race actually *manifests* (the stealer reads a stale
head and duplicates work), and shows iGUARD classifying it as an
insufficient-atomic-scope (AS) race.  With device scope everywhere the
duplication disappears and the detector goes quiet.

Run with::

    python examples/graph_coloring_scoped_race.py
"""

from repro import Device, IGuard
from repro.gpu import Scope, atomic_add, atomic_load, compute, load, store
from repro.gpu.arch import TITAN_RTX

NTHREADS = 8  # vertices claimed per getWork call


def make_coloring_kernel(head_scope):
    def coloring_kernel(ctx, next_head, partition_end, claimed, flags):
        """One getWork round per block leader, then a steal by block 1."""
        if ctx.tid_in_block != 0:
            return
            yield  # pragma: no cover - generator marker

        if ctx.block_id == 0:
            # The victim announces it is processing this partition, then
            # advances its cursor — with block scope in the buggy version.
            yield atomic_add(flags, 0, 1)
            yield compute(4)
            old = yield atomic_add(next_head, 0, NTHREADS, scope=head_scope)
            yield store(claimed, 0, old)  # vertices [old, old+8) claimed
        else:
            # The stealing block waits until the victim is active, then
            # grabs the next range from the victim's partition.
            while (yield atomic_load(flags, 0)) == 0:
                pass
            yield compute(200)  # give the victim time to claim first
            head = yield atomic_load(next_head, 0)  # <- the racy read (AS)
            end = yield load(partition_end, 0)
            if head < end:
                old = yield atomic_add(next_head, 0, NTHREADS)
                yield store(claimed, 1, old)

    return coloring_kernel


def run(head_scope, label):
    device = Device(TITAN_RTX, weak_visibility=True)
    detector = device.add_tool(IGuard())
    next_head = device.alloc("nextHead", 1, init=0)
    partition_end = device.alloc("partitionEnd", 1, init=64)
    claimed = device.alloc("claimed", 2, init=-1)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        make_coloring_kernel(head_scope),
        grid_dim=2, block_dim=32,
        args=(next_head, partition_end, claimed, flags), seed=3,
    )
    victim, stealer = claimed.read(0), claimed.read(1)
    print(f"--- {label} ---")
    print(f"victim colored vertices starting at {victim}, "
          f"stealer at {stealer}")
    if victim == stealer and victim >= 0:
        print("!! both blocks claimed the SAME vertex range: the stale")
        print("   block-scope head made the stealer duplicate work")
    print(detector.summary())
    print()


def main():
    run(Scope.BLOCK, label="block-scope nextHead (Figure 1 bug)")
    run(Scope.DEVICE, label="device-scope nextHead (fixed)")


if __name__ == "__main__":
    main()
