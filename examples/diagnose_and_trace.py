"""Diagnosing a race end to end: detector + diagnosis + event trace.

Workflow a developer would actually use:

1. run the kernel with iGUARD attached — it reports a racy site;
2. ask :mod:`repro.core.diagnose` what the race *means* and how to fix it;
3. re-run with a :class:`~repro.instrument.Tracer` watchpoint on the racy
   address to see exactly which accesses interleaved around it.

Run with::

    python examples/diagnose_and_trace.py
"""

from repro import Device, IGuard
from repro.core.diagnose import report
from repro.gpu import atomic_add, atomic_load, load, store
from repro.instrument import Tracer


def pipeline(ctx, results, ready, out):
    """Block 0 produces a result and raises a ready flag — without the
    device fence that would order the two.  Block 1 consumes."""
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield store(results, 0, 1234)
        yield atomic_add(ready, 0, 1)  # BUG: no __threadfence() before this
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        while (yield atomic_load(ready, 0)) == 0:
            pass
        value = yield load(results, 0)
        yield store(out, 0, value)


def main():
    # Step 1: detect.
    device = Device()
    detector = device.add_tool(IGuard())
    results = device.alloc("results", 4, init=0)
    ready = device.alloc("ready", 1, init=0)
    out = device.alloc("out", 1, init=0)
    device.launch(pipeline, grid_dim=2, block_dim=32,
                  args=(results, ready, out), seed=5)

    # Step 2: diagnose.
    print(report(detector))

    # Step 3: trace the racy address on a fresh run.
    racy_address = detector.races.records()[0].address
    device = Device()
    tracer = device.add_tool(Tracer(address_filter=racy_address))
    results = device.alloc("results", 4, init=0)
    ready = device.alloc("ready", 1, init=0)
    out = device.alloc("out", 1, init=0)
    device.launch(pipeline, grid_dim=2, block_dim=32,
                  args=(results, ready, out), seed=5)
    print("event trace for the racy location:")
    print(tracer.render())


if __name__ == "__main__":
    main()
