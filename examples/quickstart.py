"""Quickstart: find your first GPU race with iGUARD.

Run with::

    python examples/quickstart.py

A kernel is a Python generator that yields instructions.  We write one
with a classic bug — threads exchange values through global memory with
no barrier — attach the iGUARD detector, and watch it pinpoint the racy
source line.  Then we fix the kernel and show the detector goes quiet.
"""

from repro import Device, IGuard
from repro.gpu import load, store, syncthreads


def racy_exchange(ctx, data, out):
    """Each thread publishes a value, then reads its neighbour's...
    without waiting for the neighbour to have published it."""
    yield store(data, ctx.tid, ctx.tid * 10)
    # BUG: missing __syncthreads() here.
    neighbour = (ctx.tid + 1) % ctx.num_threads
    value = yield load(data, neighbour)
    yield store(out, ctx.tid, value)


def fixed_exchange(ctx, data, out):
    """The same kernel with the barrier in place."""
    yield store(data, ctx.tid, ctx.tid * 10)
    yield syncthreads()
    neighbour = (ctx.tid + 1) % ctx.block_dim + ctx.block_id * ctx.block_dim
    value = yield load(data, neighbour)
    yield store(out, ctx.tid, value)


def run(kernel, label):
    device = Device()
    detector = device.add_tool(IGuard())
    data = device.alloc("data", 64, init=0)
    out = device.alloc("out", 64, init=0)
    run_info = device.launch(kernel, grid_dim=2, block_dim=32,
                             args=(data, out), seed=7)
    print(f"--- {label} ---")
    print(f"executed {run_info.instructions} instructions, "
          f"detection overhead {run_info.overhead:.1f}x")
    print(detector.summary())
    for record in detector.races.records()[:3]:
        print(" ", record.describe())
    print()


def main():
    run(racy_exchange, "racy kernel (missing __syncthreads)")
    run(fixed_exchange, "fixed kernel")


if __name__ == "__main__":
    main()
