"""Run one paper workload under every detector and compare.

Picks a Table 4 workload (default: the ScoR ``reduction``, which mixes
ITS, intra-block, and device races) and runs it natively, under iGUARD,
under the ScoRD configuration, and under Barracuda/CURD — printing who
finds what at what cost.  Pass another workload name as ``argv[1]``.

Run with::

    python examples/compare_detectors.py [workload-name]
"""

import sys

from repro import Barracuda, CURD, IGuard, ScoRD, get_workload, run_workload


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "reduction"
    workload = get_workload(name)
    print(f"workload: {workload.name} ({workload.suite}) — "
          f"{workload.description}")
    print(f"expected (Table 4): {workload.expected_races} races "
          f"[{workload.type_tags() or 'race-free'}]\n")

    print(f"{'detector':<12} {'status':<12} {'races':>5} {'types':<16} "
          f"{'overhead':>9}")
    print("-" * 60)
    for factory in (None, IGuard, ScoRD, Barracuda, CURD):
        result = run_workload(workload, factory)
        types = ", ".join(sorted(result.race_types)) or "-"
        overhead = f"{result.overhead:.1f}x" if result.ran else "-"
        print(f"{result.detector:<12} {result.status:<12} "
              f"{result.races:>5} {types:<16} {overhead:>9}")

    print("\nNotes: ScoRD misses ITS/lockset races; Barracuda/CURD abort")
    print("on scoped atomics and multi-file libraries, and Barracuda's")
    print("CPU-side pass can exceed its budget ('timeout' = the paper's")
    print("'did not terminate').")


if __name__ == "__main__":
    main()
