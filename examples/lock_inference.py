"""Lock inference and the lockset check (paper section 6.3 and Figure 9).

CUDA has no lock instructions; the guidebook idiom is ``atomicCAS`` +
fence to acquire and fence + ``atomicExch`` to release.  iGUARD infers
those pairs as lock/unlock, and — uniquely — infers whether a kernel uses
one lock per *warp* or one per *thread* by watching the warp's active
mask during the CAS.  With per-thread locking, threads of one warp that
update shared data under *different* locks race (Figure 9); the lockset
check (R5) catches it even in schedules where the conflict never
materializes.

Run with::

    python examples/lock_inference.py
"""

from collections import Counter

from repro import Device, IGuard
from repro.gpu import load, store
from repro.workloads.patterns import lock_acquire, lock_release


def make_locking_kernel(shared_lock):
    def locking_kernel(ctx, locks, data, values):
        """Figure 9: every thread of the warp enters a critical section
        and accumulates into data[warpId]."""
        lock_id = 0 if shared_lock else ctx.lane  # per-warp vs per-thread
        yield from lock_acquire(locks, lock_id)
        value = yield load(values, ctx.tid)
        current = yield load(data, ctx.warp_id)
        yield store(data, ctx.warp_id, current + value)
        yield from lock_release(locks, lock_id)

    return locking_kernel


def run(shared_lock, label, seeds=range(8)):
    outcome = Counter()
    for seed in seeds:
        device = Device()
        detector = device.add_tool(IGuard())
        locks = device.alloc("locks", 32, init=0)
        data = device.alloc("data", 4, init=0)
        values = device.alloc("values", 64, init=1)
        device.launch(make_locking_kernel(shared_lock), grid_dim=2,
                      block_dim=32, args=(locks, data, values), seed=seed)
        kinds = tuple(sorted({str(t) for _, t in detector.races.sites()}))
        outcome[kinds or ("race-free",)] += 1
    print(f"--- {label} ---")
    for kinds, count in outcome.most_common():
        print(f"  {count}/8 schedules -> {', '.join(kinds)}")
    print()


def main():
    print("Figure 9's locking kernel under 8 ITS schedules each:\n")
    run(shared_lock=True,
        label="one shared lock for the accumulator (correct)")
    run(shared_lock=False,
        label="per-thread locks 'protecting' one accumulator (racy)")
    print("With distinct locks, the lockset intersection is empty: check")
    print("R5 reports an improper-locking (IL) race — or R2 reports the")
    print("ITS conflict directly when the schedule exposes it.")


if __name__ == "__main__":
    main()
