"""The paper's headline bug: NVIDIA's grid synchronization (Figure 10).

The CG library's grid-level barrier lets all threadblocks of a grid
synchronize.  Its implementation makes every thread wait (the *execution*
barrier holds) but only the per-block leader executes a ``__threadfence``
— and a fence orders only the *calling thread's* writes.  Writes by the
other threads are not guaranteed visible across the barrier: a device-wide
data race in every application that trusts the sync.  iGUARD reported
this; NVIDIA filed an internal bug, and the same defect was found (and
acknowledged) in cuML and CUB.

The example runs a multi-block pipeline through both the racy library
sync and the corrected one, under iGUARD.

Run with::

    python examples/grid_sync_bug.py
"""

from repro import Device, IGuard
from repro.cg import GridBarrier, this_grid
from repro.gpu import load, store


def make_pipeline(use_racy_sync):
    def pipeline(ctx, barrier_state, stage1, stage2):
        """Stage 1: every thread produces; grid sync; stage 2: consume a
        value produced by a thread of another block."""
        grid = this_grid(ctx, GridBarrier(barrier_state))
        yield store(stage1, ctx.tid, ctx.tid + 1000)
        if use_racy_sync:
            yield from grid.sync_racy()  # Figure 10's implementation
        else:
            yield from grid.sync()  # every thread fences before arriving
        partner = (ctx.tid + ctx.block_dim) % ctx.num_threads
        value = yield load(stage1, partner)
        yield store(stage2, ctx.tid, value)

    return pipeline


def run(use_racy_sync, label):
    device = Device()
    detector = device.add_tool(IGuard())
    barrier_state = GridBarrier.alloc(device).state
    stage1 = device.alloc("stage1", 64, init=0)
    stage2 = device.alloc("stage2", 64, init=0)
    device.launch(make_pipeline(use_racy_sync), grid_dim=2, block_dim=32,
                  args=(barrier_state, stage1, stage2), seed=11)
    print(f"--- {label} ---")
    print(detector.summary())
    for record in detector.races.records()[:2]:
        print(" ", record.describe())
    print()


def main():
    run(True, "NVIDIA library grid sync (leader-only fence, Figure 10)")
    run(False, "corrected grid sync (per-thread fence)")
    print("The race is device-scope (DR): the producer thread never")
    print("executed a device fence, so check R4 fires at the consumer.")


if __name__ == "__main__":
    main()
