"""Overhead accounting in the Figure 13 categories.

The paper breaks application runtime under detection into: *Native* (the
uninstrumented kernel), *NVBit* (binary analysis and injection), *Setup*
(metadata allocation/initialization), *Instrumentation* (the delay of the
injected calls minus detection work), *Detection* (the race checks and
metadata updates), and *Misc* (everything else, e.g. kernel loading).

Each category accumulates both *parallel* cycles (executed across all GPU
lanes, divided by the effective parallelism when converted to time) and
*serial* cycles (executed with no parallelism: metadata-lock convoys in
iGUARD, or the CPU-side detection pass in Barracuda).  This split is the
load-bearing part of the model — it is why Barracuda's overheads explode
with parallelism while iGUARD's stay bounded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class Category(enum.Enum):
    """Runtime components of Figure 13."""

    NATIVE = "native"
    NVBIT = "nvbit"
    SETUP = "setup"
    INSTRUMENTATION = "instrumentation"
    DETECTION = "detection"
    MISC = "misc"


@dataclass
class _Account:
    parallel: float = 0.0
    serial: float = 0.0


@dataclass
class TimingBreakdown:
    """Per-category cycle accounts plus the parallelism used to value them."""

    parallelism: int = 1
    accounts: Dict[Category, _Account] = field(
        default_factory=lambda: {c: _Account() for c in Category}
    )

    def charge(self, category: Category, cycles: float, serial: bool = False) -> None:
        """Add ``cycles`` of work to ``category``."""
        account = self.accounts[category]
        if serial:
            account.serial += cycles
        else:
            account.parallel += cycles

    def time_of(self, category: Category) -> float:
        """Wall time contributed by one category."""
        account = self.accounts[category]
        return account.parallel / max(self.parallelism, 1) + account.serial

    @property
    def native_time(self) -> float:
        """Wall time of the uninstrumented application."""
        return self.time_of(Category.NATIVE)

    @property
    def total_time(self) -> float:
        """Wall time with all overhead categories included."""
        return sum(self.time_of(c) for c in Category)

    @property
    def overhead(self) -> float:
        """Slowdown factor: instrumented time over native time."""
        native = self.native_time
        if native <= 0:
            return 1.0
        return self.total_time / native

    def fractions(self) -> Dict[Category, float]:
        """Each category's share of total wall time (the Figure 13 bars)."""
        total = self.total_time
        if total <= 0:
            return {c: 0.0 for c in Category}
        return {c: self.time_of(c) / total for c in Category}

    def snapshot(self) -> Dict[str, float]:
        """Times per category keyed by name, for reports and tests."""
        return {c.value: self.time_of(c) for c in Category}


def shared_native_view(shared: TimingBreakdown) -> TimingBreakdown:
    """A per-sink timing view over a launch's shared breakdown.

    The view *shares* the NATIVE account object with ``shared`` (the
    executor's uninstrumented cycles accrue into both) but owns private
    accounts for every overhead category.  When several detectors observe
    one execution pass through the event bus, each charges its own view, so
    per-detector overheads and Figure 13 fractions come out exactly as if
    the detector had run alone.
    """
    view = TimingBreakdown(parallelism=shared.parallelism)
    view.accounts[Category.NATIVE] = shared.accounts[Category.NATIVE]
    return view
