"""Tool interface: the reproduction's NVBit.

NVBit lets a tool observe and extend every SASS instruction of a running
CUDA binary without recompilation.  Here, the simulated
:class:`~repro.gpu.device.Device` plays the role of the instrumented GPU:
any number of :class:`Tool` objects can be attached to it, and their
callbacks fire on the same occasions iGUARD's injected functions do —
memory accesses, synchronization operations, kernel launch boundaries, and
``cudaMalloc`` calls (which iGUARD intercepts to budget metadata
pre-faulting, section 6.1).

A tool charges its own runtime into ``launch.timing`` using the Figure 13
categories; a tool that charges nothing is a zero-overhead observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.instrument.timing import TimingBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.gpu.device import Device
    from repro.gpu.events import MemoryEvent, SyncEvent
    from repro.gpu.memory import Allocation


@dataclass
class LaunchInfo:
    """Everything a tool may need to know about one kernel launch."""

    kernel_name: str
    grid_dim: int
    block_dim: int
    warp_size: int
    warps_per_block: int
    num_threads: int
    timing: TimingBreakdown
    device: "Device"
    seed: int = 0
    static_instruction_count: int = 0
    #: The kernel generator and its launch arguments, for tools that
    #: re-derive facts about the program (the static analyzer's pruning
    #: hints).  Live launches populate both; trace *replay* reconstructs
    #: LaunchInfo from serialized records and leaves them at their
    #: defaults — consumers must treat ``kernel_fn=None`` as "source
    #: unavailable".
    kernel_fn: Optional[Callable] = None
    args: Tuple = ()

    @property
    def num_warps(self) -> int:
        return self.grid_dim * self.warps_per_block


class Tool:
    """Base class for instrumentation tools; all callbacks default to no-ops.

    Subclasses: :class:`repro.core.detector.IGuard`,
    :class:`repro.baselines.barracuda.Barracuda`, and the test utilities.
    """

    #: Human-readable tool name used in experiment output.
    name: str = "tool"

    def attach(self, device: "Device") -> None:
        """Called when the tool is registered with a device."""

    def on_alloc(self, allocation: "Allocation") -> None:
        """Called on each application ``cudaMalloc`` (section 6.1)."""

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        """Called before the first instruction of a kernel executes."""

    def on_memory(self, event: "MemoryEvent", launch: LaunchInfo) -> None:
        """Called after every load/store/atomic."""

    def on_sync(self, event: "SyncEvent", launch: LaunchInfo) -> None:
        """Called after every fence and on each barrier completion."""

    def on_launch_end(self, launch: LaunchInfo) -> None:
        """Called after the kernel finishes (all threads done)."""

    def on_timeout(self, launch: LaunchInfo) -> None:
        """Called when the step budget expires (the paper's timeout path:
        detected races are flushed to the CPU before termination)."""

    def on_kernel_end(self, run, launch: LaunchInfo) -> None:
        """Called once the completed :class:`~repro.gpu.device.KernelRun`
        exists, after ``on_launch_end``/``on_timeout``.  Optional: the bus
        skips sinks that don't define it."""
