"""The binary-instrumentation analogue (NVBit stand-in).

iGUARD is built on NVIDIA's NVBit dynamic binary instrumentation framework:
NVBit rewrites SASS so that injected device functions run before memory and
synchronization instructions.  In this reproduction, the simulated device
calls registered :class:`~repro.instrument.nvbit.Tool` objects at the same
points with the same information, and every tool charges its overhead into
a :class:`~repro.instrument.timing.TimingBreakdown` whose categories match
Figure 13 (Native / NVBit / Setup / Instrumentation / Detection / Misc).
"""

from repro.instrument.nvbit import Tool, LaunchInfo
from repro.instrument.timing import Category, TimingBreakdown
from repro.instrument.tracer import Tracer

__all__ = ["Tool", "LaunchInfo", "Category", "TimingBreakdown", "Tracer"]
