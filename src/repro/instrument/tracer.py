"""An event tracer: record the instrumented stream for offline inspection.

The companion tool to the detector: where iGUARD *consumes* the event
stream, :class:`Tracer` just records it — handy for debugging kernels and
the detector itself, for building custom analyses over the same events
iGUARD sees, and for understanding a race after the fact (what actually
executed around the racy access).  Supports bounded in-memory capture and
text dumps in execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent, SyncKind
from repro.instrument.nvbit import LaunchInfo, Tool


@dataclass(frozen=True)
class TraceLine:
    """One rendered trace entry."""

    index: int
    batch: int
    kind: str
    where: str
    detail: str

    def render(self) -> str:
        return (
            f"{self.index:>7} b{self.batch:<6} {self.where:<14} "
            f"{self.kind:<11} {self.detail}"
        )


class Tracer(Tool):
    """Record every memory and synchronization event of a launch.

    Args:
        limit: maximum events retained (oldest dropped beyond it).
        memory_only: skip synchronization events.
        address_filter: if set, record only accesses to this byte address's
            granule (4-byte aligned) — the "watchpoint" mode.
    """

    name = "tracer"

    def __init__(
        self,
        limit: int = 100_000,
        memory_only: bool = False,
        address_filter: Optional[int] = None,
    ):
        self.limit = limit
        self.memory_only = memory_only
        self.address_filter = address_filter
        self.lines: List[TraceLine] = []
        self.dropped = 0
        self._counter = 0
        self._device = None

    def attach(self, device) -> None:
        self._device = device

    @classmethod
    def from_trace(cls, trace, **kwargs) -> "Tracer":
        """Rebuild a rendered trace from a recorded event stream.

        ``trace`` is a :class:`~repro.engine.trace.Trace` (or any iterable
        of stream records), or a path to a saved trace file — paths are
        streamed lazily (columnar chunks or JSONL lines) rather than
        loaded whole; the tracer observes the stream through
        :func:`repro.engine.replay.replay` instead of a live device.
        """
        from repro.engine.replay import replay

        if isinstance(trace, (str, bytes)) or hasattr(trace, "__fspath__"):
            from repro.engine.trace import stream_events

            trace = stream_events(trace)
        tracer = cls(**kwargs)
        replay(trace, tools=[tracer])
        return tracer

    # ------------------------------------------------------------------

    def _push(self, batch: int, kind: str, where, detail: str) -> None:
        self._counter += 1
        if len(self.lines) >= self.limit:
            self.lines.pop(0)
            self.dropped += 1
        self.lines.append(
            TraceLine(
                index=self._counter,
                batch=batch,
                kind=kind,
                where=f"w{where.warp_id}.t{where.lane}/b{where.block_id}",
                detail=detail,
            )
        )

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        if self.address_filter is not None:
            if event.address // 4 != self.address_filter // 4:
                return
        location = launch.device.memory.describe(event.address)
        if event.kind is AccessKind.LOAD:
            detail = f"{location} -> {event.value_loaded!r} @ {event.ip}"
        elif event.kind is AccessKind.STORE:
            detail = f"{location} <- {event.value_stored!r} @ {event.ip}"
        else:
            detail = (
                f"{location} {event.atomic_op.value}"
                f"({event.value_stored!r}) was {event.value_loaded!r} "
                f"[{event.scope.name.lower()}] @ {event.ip}"
            )
        self._push(event.batch, event.kind.value, event.where, detail)

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        if self.memory_only:
            return
        if event.kind is SyncKind.FENCE:
            detail = f"scope={event.scope.name.lower()} @ {event.ip}"
        else:
            detail = f"mask={sorted(event.active_mask)} @ {event.ip}"
        self._push(event.batch, event.kind.value, event.where, detail)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lines)

    def render(self, last: Optional[int] = None) -> str:
        """The trace as text, optionally only the last N entries."""
        lines = self.lines if last is None else self.lines[-last:]
        header = f"{'#':>7} {'batch':<7} {'thread':<14} {'event':<11} detail"
        body = [line.render() for line in lines]
        suffix = []
        if self.dropped:
            suffix.append(f"({self.dropped} earlier events dropped)")
        return "\n".join([header] + body + suffix)

    def events_for(self, location_substring: str) -> List[TraceLine]:
        """Trace lines whose detail mentions a location (e.g. 'data[0]')."""
        return [l for l in self.lines if location_substring in l.detail]
