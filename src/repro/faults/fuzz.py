"""Differential fuzzer over the kernel DSL and both trace codecs.

Two generators, one oracle:

- **Program fuzzing**: seeded random kernel-DSL programs biased toward
  the synchronization constructs the Table 2 checks R1–R5 key on —
  scoped atomics (R1), warp barriers under ITS (R2), block barriers
  (R3), fences (R4), and plain conflicting accesses.  Each program is
  captured once and replayed through every detection mode the repo
  claims is byte-identical: serial iGUARD, inline-sharded, batched
  sharded, the columnar drain, plus FastTrack serial vs sharded.  Any
  crash, per-input wall-clock blowout, report divergence between modes,
  or quarantine-snapshot divergence is a failure.  A seventh leg is the
  **soundness gate** for the static analyzer (:mod:`repro.analysis`):
  every race the serial iGUARD leg reports must fall inside the
  analyzer's may-race set — a dynamically caught race at a
  statically-proven-safe site would mean check pruning can hide real
  races, so it fails the campaign like any divergence.
- **Trace mutation**: byte- and line-level corruption of ``.jsonl``,
  ``.jsonl.gz``, ``.ctr`` and ``.ctr.gz`` containers (flips, truncation,
  duplication, junk insertion).  The salvage contract is the oracle:
  strict loads may only succeed or raise
  :class:`~repro.errors.TraceCorruptionError`; ``salvage=True`` loads
  must never raise at all.  Anything else — a raw ``EOFError``, a
  ``zlib.error``, an unbounded allocation — is a failure.

Every failure is shrunk with :func:`repro.faults.ddmin.ddmin` (over DSL
statements for programs, JSONL lines / byte blocks for traces) and
deduplicated by crash signature (exception type @ deepest in-repo
frame).  ``--write-corpus`` files minimized repros into the triage
corpus (``tests/corpus/``); ``--replay-corpus`` re-runs every historical
entry and fails if any regresses — the CI regression gate.

Fixed seed + fixed input count ⇒ a fully deterministic campaign.
"""

from __future__ import annotations

import base64
import gzip
import json
import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.rng import SplitMix64
from repro.errors import (
    DeadlockError,
    OutOfMemoryError,
    TimeoutError_,
    TraceCorruptionError,
    UnsupportedFeatureError,
)
from repro.faults import quarantine
from repro.faults.ddmin import ddmin
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_cas,
    atomic_exch,
    fence,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.obs.log import get_logger
from repro.workloads.base import Workload

logger = get_logger("fuzz")

#: Per-input wall-clock budget: a generated program whose capture plus
#: all oracle legs exceed this is filed as a hang finding.
INPUT_BUDGET_S = 20.0

#: Statement count range for generated programs (small programs keep the
#: campaign throughput up; races need only a handful of statements).
MIN_STMTS, MAX_STMTS = 3, 12


# ---------------------------------------------------------------------------
# Program generation: statements are plain JSON-able lists so ddmin and
# the corpus can carry them.  [op, guard, array, index, extra]
# ---------------------------------------------------------------------------

_GUARDS: Tuple[Callable, ...] = (
    lambda ctx: True,
    lambda ctx: ctx.block_id == 0 and ctx.is_block_leader,
    lambda ctx: ctx.block_id == 1 and ctx.is_block_leader,
    lambda ctx: ctx.warp_in_block == 0 and ctx.lane == 0,
    lambda ctx: ctx.warp_in_block == 1 and ctx.lane == 0,
    lambda ctx: ctx.lane == 0,
    lambda ctx: ctx.lane == 1,
)

_SCOPES = (Scope.BLOCK, Scope.DEVICE)

#: Weighted op table — barriers, atomics and scope/fence choices are
#: over-represented because those are what R1–R5 discriminate on.
_OPS = (
    ["store"] * 5
    + ["load"] * 3
    + ["atomic"] * 5
    + ["cas"] * 1
    + ["exch"] * 1
    + ["fence"] * 2
    + ["syncthreads"] * 3
    + ["syncwarp"] * 2
)


def gen_program(rng: SplitMix64) -> List[list]:
    """One random DSL program as a JSON-able statement list."""
    count = MIN_STMTS + rng.randint(MAX_STMTS - MIN_STMTS + 1)
    statements = []
    for _ in range(count):
        op = rng.choice(_OPS)
        guard = rng.randint(len(_GUARDS))
        array = rng.randint(2)
        index = rng.randint(4)
        if op in ("store", "exch", "cas"):
            extra = rng.randint(64)
        elif op in ("atomic", "fence"):
            extra = rng.randint(len(_SCOPES))
        else:
            extra = 0
        statements.append([op, guard, array, index, extra])
    return statements


def build_kernel(statements: List[list]):
    """Compile a statement list into a generator kernel."""

    def _fuzz_kernel(ctx, a, b):
        arrays = (a, b)
        for op, guard, array, index, extra in statements:
            if op not in ("syncthreads", "syncwarp") and not _GUARDS[guard](ctx):
                continue
            if op == "store":
                yield store(arrays[array], index, extra)
            elif op == "load":
                yield load(arrays[array], index)
            elif op == "atomic":
                yield atomic_add(arrays[array], index, 1, scope=_SCOPES[extra])
            elif op == "cas":
                yield atomic_cas(arrays[array], index, 0, extra)
            elif op == "exch":
                yield atomic_exch(arrays[array], index, extra)
            elif op == "fence":
                yield fence(_SCOPES[extra])
            elif op == "syncthreads":
                yield syncthreads()
            elif op == "syncwarp":
                yield syncwarp()

    return _fuzz_kernel


def program_workload(statements: List[list], name: str = "fuzz-program") -> Workload:
    kernel = build_kernel(statements)

    def _run(device, seed: int) -> None:
        a = device.alloc("fz_a", 8)
        b = device.alloc("fz_b", 8)
        device.launch(
            kernel, grid_dim=2, block_dim=16, args=(a, b), seed=seed
        )

    return Workload(
        name=name, suite="fuzz", run=_run, seeds=(0,),
        description="generated fuzz program",
    )


# ---------------------------------------------------------------------------
# Crash signatures
# ---------------------------------------------------------------------------


def crash_signature(exc: BaseException) -> str:
    """``ExcType@file.py:function`` for the deepest in-repo frame.

    File basename + function (not line numbers) so signatures stay
    stable across unrelated edits, which is what keeps corpus dedup
    meaningful over time.
    """
    site = "?"
    for frame in reversed(traceback.extract_tb(exc.__traceback__)):
        path = frame.filename.replace(os.sep, "/")
        if "/repro/" in path:
            site = f"{os.path.basename(frame.filename)}:{frame.name}"
            break
    return f"{type(exc).__name__}@{site}"


# ---------------------------------------------------------------------------
# The differential oracle over detection modes
# ---------------------------------------------------------------------------


def _leg(run: Callable[[], object]) -> Dict:
    """Run one oracle leg; normalize its observable surface."""
    quarantine.reset()
    status = "ok"
    tool = None
    try:
        tool = run()
    except TimeoutError_:
        status = "timeout"
    except UnsupportedFeatureError:
        status = "unsupported"
    except OutOfMemoryError:
        status = "oom"
    except DeadlockError:
        status = "deadlock"
    sites: Dict[str, str] = {}
    races = getattr(tool, "races", None)
    if races is not None:
        for ip, race_type in races.sites():
            sites[str(ip)] = str(race_type)
    return {
        "status": status,
        "sites": dict(sorted(sites.items())),
        "quarantine": quarantine.snapshot(),
    }


def differential_check(
    statements: List[list], shards: int = 3
) -> Optional[Dict]:
    """Capture one program, replay through every mode, compare reports.

    Returns None when all modes agree and nothing crashed, else a
    failure dict with ``kind``/``signature``/``detail``.
    """
    import tempfile

    from repro.core.detector import IGuard
    from repro.core.sharding import (
        replay_columnar_sharded,
        replay_trace_sharded,
    )
    from repro.baselines.fasttrack import FastTrack
    from repro.engine.coltrace import write_columnar
    from repro.engine.replay import capture_workload, replay

    started = time.perf_counter()
    workload = program_workload(statements)
    try:
        trace = capture_workload(workload, seeds=(0,))
        events = list(trace)

        def _replay_tool(factory):
            def _run():
                tool = factory()
                replay(events, tools=[tool])
                return tool

            return _run

        legs = {
            "iguard-serial": _leg(_replay_tool(lambda: IGuard(shards=1))),
            "iguard-inline": _leg(
                _replay_tool(lambda: IGuard(shards=shards))
            ),
            "iguard-batched": _leg(
                lambda: replay_trace_sharded(events, shards=shards).tool
            ),
        }
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "fuzz.ctr")
            with open(path, "wb") as handle:
                write_columnar(handle, events)
            legs["iguard-columnar"] = _leg(
                lambda: replay_columnar_sharded(path, shards=shards).tool
            )
        legs["fasttrack-serial"] = _leg(
            _replay_tool(lambda: FastTrack(shards=1))
        )
        legs["fasttrack-sharded"] = _leg(
            _replay_tool(lambda: FastTrack(shards=shards))
        )
        # Soundness gate (seventh leg): lint the same program statically.
        # Compared against the *iGUARD* leg only — FastTrack's
        # happens-before model flags atomic-atomic interleavings that
        # iGUARD's Table 2 (and hence the static mirror) correctly
        # permits.
        from repro.analysis.lint import analyze_workload

        static_lint = analyze_workload(workload)
    except Exception as exc:  # noqa: BLE001 — any escape is the finding
        return {
            "kind": "crash",
            "signature": crash_signature(exc),
            "detail": f"{type(exc).__name__}: {exc}"[:300],
        }
    elapsed = time.perf_counter() - started
    if elapsed > INPUT_BUDGET_S:
        return {
            "kind": "hang",
            "signature": f"hang@differential_check",
            "detail": f"input took {elapsed:.1f}s (> {INPUT_BUDGET_S:.0f}s)",
        }
    reference = legs["iguard-serial"]
    for name in ("iguard-inline", "iguard-batched", "iguard-columnar"):
        if legs[name] != reference:
            return {
                "kind": "divergence",
                "signature": f"divergence@{name}",
                "detail": (
                    f"{name} disagrees with iguard-serial: "
                    f"{legs[name]} != {reference}"
                )[:500],
            }
    if legs["fasttrack-sharded"] != legs["fasttrack-serial"]:
        return {
            "kind": "divergence",
            "signature": "divergence@fasttrack-sharded",
            "detail": (
                f"fasttrack-sharded disagrees with fasttrack-serial: "
                f"{legs['fasttrack-sharded']} != {legs['fasttrack-serial']}"
            )[:500],
        }
    for ip, race_type in reference["sites"].items():
        if not static_lint.allows_dynamic_site(ip):
            # The dynamic detector caught a race at a site the static
            # analyzer proved safe (or never saw): pruning that site
            # would have hidden a real race.  This is THE bug class the
            # gate exists to catch — fail the campaign.
            return {
                "kind": "soundness",
                "signature": "soundness@static-analyzer",
                "detail": (
                    f"dynamic race [{race_type}] at {ip} falls outside "
                    f"the static may-race set (static verdict: "
                    f"{static_lint.verdict})"
                )[:500],
            }
    return None


# ---------------------------------------------------------------------------
# Trace mutation: the salvage-contract oracle
# ---------------------------------------------------------------------------

CODECS = ("jsonl", "jsonl.gz", "ctr", "ctr.gz")


def base_trace_bytes(rng: SplitMix64) -> Dict[str, bytes]:
    """Deterministic base containers for mutation, one per codec."""
    import io
    import tempfile

    from repro.engine.coltrace import write_columnar
    from repro.engine.replay import capture_workload

    statements = gen_program(rng)
    trace = capture_workload(program_workload(statements), seeds=(0,))
    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = os.path.join(tmp, "base.jsonl")
        trace.save(jsonl_path)
        with open(jsonl_path, "rb") as handle:
            jsonl = handle.read()
    buffer = io.BytesIO()
    write_columnar(buffer, list(trace))
    ctr = buffer.getvalue()
    return {
        "jsonl": jsonl,
        "jsonl.gz": gzip.compress(jsonl, mtime=0),
        "ctr": ctr,
        "ctr.gz": gzip.compress(ctr, mtime=0),
    }


def mutate_bytes(data: bytes, rng: SplitMix64) -> bytes:
    """One random corruption: flip, truncate, duplicate, junk, zero."""
    if not data:
        return data
    choice = rng.randint(5)
    offset = rng.randint(len(data))
    if choice == 0:  # flip one byte
        flipped = data[offset] ^ (1 << rng.randint(8))
        return data[:offset] + bytes([flipped]) + data[offset + 1 :]
    if choice == 1:  # truncate
        return data[:offset]
    if choice == 2:  # duplicate a slice
        end = min(len(data), offset + 1 + rng.randint(64))
        return data[:end] + data[offset:end] + data[end:]
    if choice == 3:  # insert junk
        junk = bytes(rng.randint(256) for _ in range(1 + rng.randint(16)))
        return data[:offset] + junk + data[offset:]
    # zero a slice
    end = min(len(data), offset + 1 + rng.randint(32))
    return data[:offset] + b"\x00" * (end - offset) + data[end:]


def check_trace_bytes(data: bytes, codec: str) -> Optional[Dict]:
    """Run one (possibly corrupt) container through the codec oracle.

    Strict loads may succeed or raise TraceCorruptionError — nothing
    else.  Salvage loads must never raise.  Returns a failure dict or
    None.
    """
    import tempfile

    from repro.engine.trace import Trace, stream_events

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"mut.{codec}")
        with open(path, "wb") as handle:
            handle.write(data)
        try:
            Trace.load(path)
        except TraceCorruptionError:
            pass
        except Exception as exc:  # noqa: BLE001
            return {
                "kind": "crash",
                "signature": crash_signature(exc),
                "detail": f"strict load: {type(exc).__name__}: {exc}"[:300],
            }
        try:
            Trace.load(path, salvage=True)
        except Exception as exc:  # noqa: BLE001
            return {
                "kind": "salvage-violation",
                "signature": crash_signature(exc),
                "detail": f"salvage load raised {type(exc).__name__}: {exc}"[:300],
            }
        if codec.startswith("jsonl"):
            try:
                for _ in stream_events(path):
                    pass
            except TraceCorruptionError:
                pass
            except Exception as exc:  # noqa: BLE001
                return {
                    "kind": "crash",
                    "signature": crash_signature(exc),
                    "detail": f"stream: {type(exc).__name__}: {exc}"[:300],
                }
    return None


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------


def minimize_program(
    statements: List[list], signature: str, shards: int = 3
) -> List[list]:
    """ddmin a failing program down to the same-signature minimum."""

    def _still_fails(candidate: List[list]) -> bool:
        if not candidate:
            return False
        failure = differential_check(candidate, shards=shards)
        return failure is not None and failure["signature"] == signature

    return ddmin(statements, _still_fails, max_tests=256)


def minimize_trace(data: bytes, codec: str, signature: str) -> bytes:
    """ddmin a failing container (lines for jsonl, 64B blocks for ctr)."""
    if codec.startswith("jsonl") and not codec.endswith(".gz"):
        parts: List[bytes] = [
            line + b"\n" for line in data.split(b"\n")
        ]
    else:
        parts = [data[i : i + 64] for i in range(0, len(data), 64)]

    def _still_fails(candidate: List[bytes]) -> bool:
        failure = check_trace_bytes(b"".join(candidate), codec)
        return failure is not None and failure["signature"] == signature

    return b"".join(ddmin(parts, _still_fails, max_tests=256))


# ---------------------------------------------------------------------------
# Triage corpus
# ---------------------------------------------------------------------------


def default_corpus_dir() -> str:
    """``tests/corpus`` relative to the repo checkout (CI convention)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "corpus")


def _entry_name(entry: Dict) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "-"
        for ch in entry["signature"]
    )
    return f"{entry['kind']}-{safe}.json"


def write_corpus_entry(corpus_dir: str, entry: Dict) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, _entry_name(entry))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(corpus_dir: str) -> List[Tuple[str, Dict]]:
    entries = []
    if not os.path.isdir(corpus_dir):
        return entries
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            entries.append((path, json.load(handle)))
    return entries


def replay_entry(entry: Dict, shards: int = 3) -> Optional[Dict]:
    """Re-run one corpus entry; None means it passes (bug stays fixed)."""
    if entry.get("input") == "program":
        return differential_check(entry["statements"], shards=shards)
    data = base64.b64decode(entry["data_b64"])
    return check_trace_bytes(data, entry["codec"])


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------


def run_campaign(
    seed: int = 0,
    max_inputs: Optional[int] = None,
    budget_s: Optional[float] = None,
    shards: int = 3,
    minimize: bool = True,
    corpus_dir: Optional[str] = None,
    write_corpus: bool = False,
) -> Dict:
    """Drive the fuzzer; returns the campaign stats document.

    Every third input mutates a trace container, the rest are generated
    programs.  Failures are deduplicated by signature and (optionally)
    minimized; with ``write_corpus`` each minimized repro is filed in
    the triage corpus.
    """
    rng = SplitMix64(seed)
    bases = base_trace_bytes(SplitMix64(seed ^ 0xBA5E))
    started = time.perf_counter()
    stats = {
        "schema": 1,
        "generated_by": "repro.faults.fuzz",
        "seed": seed,
        "shards": shards,
        "inputs": 0,
        "programs": 0,
        "trace_mutations": 0,
        "failures": [],
    }
    seen: Dict[str, Dict] = {}
    index = 0
    while True:
        if max_inputs is not None and index >= max_inputs:
            break
        if budget_s is not None and time.perf_counter() - started >= budget_s:
            break
        if max_inputs is None and budget_s is None:
            raise ValueError("run_campaign needs max_inputs or budget_s")
        index += 1
        stats["inputs"] = index
        if index % 3 == 0:
            stats["trace_mutations"] += 1
            codec = CODECS[rng.randint(len(CODECS))]
            data = mutate_bytes(bases[codec], rng)
            failure = check_trace_bytes(data, codec)
            if failure is not None and failure["signature"] not in seen:
                if minimize:
                    data = minimize_trace(
                        data, codec, failure["signature"]
                    )
                entry = {
                    "input": "trace",
                    "kind": failure["kind"],
                    "signature": failure["signature"],
                    "detail": failure["detail"],
                    "codec": codec,
                    "data_b64": base64.b64encode(data).decode("ascii"),
                    "minimized": minimize,
                    "found_by_seed": seed,
                }
                seen[failure["signature"]] = entry
                logger.error("fuzz failure: %s", failure["signature"])
        else:
            stats["programs"] += 1
            statements = gen_program(rng)
            failure = differential_check(statements, shards=shards)
            if failure is not None and failure["signature"] not in seen:
                if minimize:
                    statements = minimize_program(
                        statements, failure["signature"], shards=shards
                    )
                entry = {
                    "input": "program",
                    "kind": failure["kind"],
                    "signature": failure["signature"],
                    "detail": failure["detail"],
                    "statements": statements,
                    "minimized": minimize,
                    "found_by_seed": seed,
                }
                seen[failure["signature"]] = entry
                logger.error("fuzz failure: %s", failure["signature"])
    elapsed = time.perf_counter() - started
    stats["elapsed_s"] = round(elapsed, 3)
    stats["inputs_per_sec"] = round(index / elapsed, 2) if elapsed else 0.0
    stats["failures"] = list(seen.values())
    stats["distinct_failures"] = len(seen)
    # Surfaced separately so CI can assert the static analyzer's
    # soundness gate stayed green without parsing the failures list.
    stats["soundness_failures"] = sum(
        1 for entry in seen.values() if entry["kind"] == "soundness"
    )
    if write_corpus and seen:
        corpus = corpus_dir or default_corpus_dir()
        for entry in seen.values():
            path = write_corpus_entry(corpus, entry)
            logger.info("filed corpus entry %s", path)
    quarantine.reset()
    return stats


# ---------------------------------------------------------------------------
# CLI: python -m repro.faults.fuzz / iguard-experiments fuzz
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="iguard-experiments fuzz",
        description="Differential fuzz campaign over the DSL and codecs.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--inputs", type=int, default=None, metavar="N",
        help="stop after N inputs (deterministic with --seed)",
    )
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SEC",
        help="stop after SEC seconds of campaign wall clock",
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="triage corpus directory (default: tests/corpus)",
    )
    parser.add_argument(
        "--write-corpus", action="store_true",
        help="file minimized failures into the corpus",
    )
    parser.add_argument(
        "--replay-corpus", action="store_true",
        help="replay every corpus entry instead of fuzzing; nonzero "
             "exit if any historical repro fails again",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin on failures (faster triage-less campaign)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the campaign stats document to PATH",
    )
    args = parser.parse_args(argv)
    corpus_dir = args.corpus or default_corpus_dir()

    if args.replay_corpus:
        entries = load_corpus(corpus_dir)
        failures = []
        for path, entry in entries:
            result = replay_entry(entry, shards=args.shards)
            if result is not None:
                failures.append({"entry": path, "failure": result})
                logger.error(
                    "corpus regression: %s reproduces again (%s)",
                    path, result["signature"],
                )
        doc = {
            "corpus": corpus_dir,
            "entries": len(entries),
            "regressions": failures,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return 1 if failures else 0

    if args.inputs is None and args.budget is None:
        args.budget = 30.0
    stats = run_campaign(
        seed=args.seed,
        max_inputs=args.inputs,
        budget_s=args.budget,
        shards=args.shards,
        minimize=not args.no_minimize,
        corpus_dir=corpus_dir,
        write_corpus=args.write_corpus,
    )
    print(json.dumps(stats, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if stats["failures"] else 0


def minimize_main(argv=None) -> int:
    """``iguard-experiments minimize <entry.json>``: re-shrink a repro."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="iguard-experiments minimize",
        description="Re-run ddmin on a corpus entry and rewrite it.",
    )
    parser.add_argument("entry", help="path to a corpus entry JSON file")
    parser.add_argument("--shards", type=int, default=3)
    args = parser.parse_args(argv)
    with open(args.entry, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    failure = replay_entry(entry, shards=args.shards)
    if failure is None:
        print(f"{args.entry}: no longer reproduces — nothing to minimize")
        return 0
    if entry.get("input") == "program":
        entry["statements"] = minimize_program(
            entry["statements"], failure["signature"], shards=args.shards
        )
    else:
        data = base64.b64decode(entry["data_b64"])
        minimized = minimize_trace(
            data, entry["codec"], failure["signature"]
        )
        entry["data_b64"] = base64.b64encode(minimized).decode("ascii")
    entry["minimized"] = True
    with open(args.entry, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"rewrote {args.entry} (signature {failure['signature']})")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
