"""Infrastructure chaos: deterministic worker faults behind ``IGUARD_CHAOS``.

A chaos spec is a comma-separated list of ``key=value`` pairs::

    IGUARD_CHAOS="crash=0.25,hang=0.15,seed=11"

Fault kinds (each ``key`` is a probability in ``[0, 1]``):

- ``crash`` — the worker process exits immediately (``os._exit``), as if
  segfaulted or OOM-killed; the executor must detect the dead worker and
  resubmit the cell.
- ``hang``  — the worker sleeps for ``hang_s`` seconds (default 600),
  far past any sane cell deadline; only a hard ``--cell-timeout`` kill
  recovers it.
- ``slow``  — the worker sleeps ``slow_s`` seconds (default 0.05) before
  running the cell: latency jitter, no failure.
- ``flake`` — the worker raises :class:`ChaosFault` before running the
  cell: an in-process transient failure the executor retries.

Decisions are *deterministic*: whether a fault fires depends only on the
spec's ``seed``, the cell's label, and the attempt number — never on
wall-clock or process state.  Faults fire only on the first ``times``
attempts (default 1), so a bounded-retry executor always converges and a
seeded chaos run produces results byte-identical to a fault-free one.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.common.rng import SplitMix64
from repro.errors import ConfigError

#: Exit status of a chaos-crashed worker (distinctive in executor logs).
CHAOS_EXIT_CODE = 57

#: Environment variable carrying the active spec.
ENV_VAR = "IGUARD_CHAOS"


class ChaosFault(Exception):
    """The transient in-process failure raised by ``flake`` faults.

    Deliberately *not* a :class:`repro.errors.ReproError`: domain code
    never catches it, so it propagates to the executor like any
    unexpected worker bug would.
    """


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed ``IGUARD_CHAOS`` fault-injection specification."""

    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    flake: float = 0.0
    seed: int = 0
    times: int = 1
    hang_s: float = 600.0
    slow_s: float = 0.05

    _FLOAT_KEYS = ("crash", "hang", "slow", "flake", "hang_s", "slow_s")
    _INT_KEYS = ("seed", "times")

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse ``"crash=0.25,hang=0.1,seed=11"`` into a spec."""
        values: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(
                    f"chaos spec entry {part!r} is not key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            try:
                if key in cls._INT_KEYS:
                    values[key] = int(raw)
                elif key in cls._FLOAT_KEYS:
                    values[key] = float(raw)
                else:
                    raise ConfigError(f"unknown chaos spec key {key!r}")
            except ValueError:
                raise ConfigError(
                    f"chaos spec value {raw!r} for {key!r} is not a number"
                ) from None
        spec = cls(**values)
        for name in ("crash", "hang", "slow", "flake"):
            p = getattr(spec, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"chaos probability {name}={p} not in [0, 1]")
        return spec

    def fault_for(self, label: str, attempt: int) -> Optional[str]:
        """The fault kind to inject for this (cell, attempt), if any.

        Deterministic in (seed, label, attempt).  Faults never fire past
        attempt ``times``, guaranteeing eventual success under retries.
        """
        if attempt > self.times:
            return None
        mix = (self.seed << 32) ^ (zlib.crc32(label.encode("utf-8")) << 8)
        rng = SplitMix64(mix ^ attempt)
        draw = rng.random()
        for kind in ("crash", "hang", "slow", "flake"):
            p = getattr(self, kind)
            if draw < p:
                return kind
            draw -= p
        return None


def active_spec() -> Optional[ChaosSpec]:
    """The spec from ``IGUARD_CHAOS``, or None when chaos is off.

    Parsed per call but cached against the raw string, so flipping the
    environment between runs (tests, CLI ``--chaos``) takes effect
    immediately without re-parse cost on the steady path.
    """
    text = os.environ.get(ENV_VAR, "")
    if not text:
        return None
    cached = _CACHE.get(text)
    if cached is None:
        cached = _CACHE[text] = ChaosSpec.parse(text)
    return cached


_CACHE: dict = {}


def maybe_inject(label: str, attempt: int) -> None:
    """Fire the configured fault for this cell attempt, if any.

    Called by the executor's worker wrapper just before the cell runs —
    crashes and flakes therefore lose the whole attempt, exactly like a
    real mid-cell failure would.
    """
    spec = active_spec()
    if spec is None:
        return
    kind = spec.fault_for(label, attempt)
    if kind is None:
        return
    if kind == "slow":
        _count_injection()
        time.sleep(spec.slow_s)
        return
    if kind == "flake":
        _count_injection()
        raise ChaosFault(f"injected flake in cell {label!r} (attempt {attempt})")
    if kind == "hang":
        _count_injection()
        time.sleep(spec.hang_s)
        return
    # crash: no metrics survive an _exit, so do not bother counting.
    os._exit(CHAOS_EXIT_CODE)


def _count_injection() -> None:
    from repro.obs.metrics import HOT

    if HOT.enabled:
        HOT.chaos_injected.inc()
