"""Seeded kernel-stream mutators: break synchronization, annotate the race.

A :class:`MutationSpec` names one way to corrupt a kernel's
synchronization — exactly the bug classes the paper's Table 2 conditions
exist to catch (and the classes repair tools like GPURepair patch):

===================  ====================================================
kind                 effect on the instruction stream
===================  ====================================================
``drop_fence``       delete a matching :class:`~repro.gpu.instructions.Fence`
``weaken_fence``     demote a device-scope fence to block scope
``skip_syncthreads`` delete ``__syncthreads()`` (for every thread, so the
                     mutant cannot deadlock on a partial barrier)
``skip_syncwarp``    delete ``__syncwarp()``
``demote_atomic``    replace an atomic with a plain load (zero-add reads)
                     or store (everything else)
``weaken_scope``     demote a device-scope atomic to block scope
``reorder_store``    stash a matching store and replay it just *after*
                     the thread's next ``__syncthreads()``
===================  ====================================================

Each spec carries the Table 2 condition (``condition``) and race-type tag
(``expected_type``) the injected bug should fire, which is what the
recall gate asserts.  Targeting is structural — instruction class, scope,
allocation name, a thread predicate — not line numbers, so catalogs
survive edits to the pattern kernels.

The runtime hook is :class:`StreamMutator.on_instruction`, called by
:meth:`repro.gpu.kernel.KernelThread._advance` for every fetched
instruction.  Install one with :func:`install` (it needs the device to
resolve allocation names to address ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import ConfigError
from repro.gpu.instructions import (
    Atomic,
    AtomicOp,
    Fence,
    Load,
    Scope,
    Store,
    Syncthreads,
    Syncwarp,
)

#: Mutation kinds -> instruction class they target.
_KIND_TARGETS = {
    "drop_fence": Fence,
    "weaken_fence": Fence,
    "skip_syncthreads": Syncthreads,
    "skip_syncwarp": Syncwarp,
    "demote_atomic": Atomic,
    "weaken_scope": Atomic,
    "reorder_store": Store,
}


@dataclass(frozen=True)
class MutationSpec:
    """One catalogued way to break a workload's synchronization.

    ``thread`` restricts the mutation to threads whose
    :class:`~repro.gpu.kernel.ThreadCtx` satisfies the predicate (None =
    all threads); ``target_array`` restricts address-carrying targets to
    one named allocation.  ``condition``/``expected_type`` annotate the
    Table 2 check and race tag the mutant should trigger.
    """

    name: str
    kind: str
    condition: str        # e.g. "R4" — the Table 2 check expected to fire
    expected_type: str    # e.g. "DR" — the RaceType tag expected in reports
    description: str = ""
    target_array: Optional[str] = None
    thread: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_TARGETS:
            raise ConfigError(f"unknown mutation kind {self.kind!r}")


class StreamMutator:
    """Applies one :class:`MutationSpec` to a device's instruction stream.

    Stateful per launch-set: counts applications (``applied``) so the
    recall gate can assert the mutation actually landed, and tracks the
    per-thread stash for ``reorder_store``.
    """

    def __init__(self, spec: MutationSpec, device):
        self.spec = spec
        self.device = device
        self.applied = 0
        self._range: Optional[Tuple[int, int]] = None
        #: reorder_store state: thread id -> stashed (Store, ip).
        self._stash: dict = {}
        #: reorder_store: threads whose stash was already replayed.
        self._replayed: set = set()

    # ------------------------------------------------------------------

    def _address_matches(self, address: int) -> bool:
        if self.spec.target_array is None:
            return True
        if self._range is None:
            for allocation in self.device.memory.allocations():
                if allocation.name == self.spec.target_array:
                    self._range = (allocation.base, allocation.end)
                    break
            else:
                return False
        base, end = self._range
        return base <= address < end

    def _thread_matches(self, thread) -> bool:
        predicate = self.spec.thread
        return predicate is None or bool(predicate(thread.ctx))

    # ------------------------------------------------------------------

    def on_instruction(self, thread, instr, ip):
        """The :class:`~repro.gpu.kernel.KernelThread` mutation hook.

        Returns the instruction unchanged, ``None`` to drop it, a
        replacement instruction, or a list of ``(instruction, ip)`` steps
        (first executes now, the rest before the generator resumes).
        """
        kind = self.spec.kind

        # reorder_store arms on the *barrier*, for any thread with a stash.
        if kind == "reorder_store" and isinstance(instr, Syncthreads):
            stashed = self._stash.pop(id(thread), None)
            if stashed is not None:
                return [(instr, ip), stashed]
            return instr

        if not isinstance(instr, _KIND_TARGETS[kind]):
            return instr
        if not self._thread_matches(thread):
            return instr

        if kind == "drop_fence":
            self.applied += 1
            return None
        if kind == "weaken_fence":
            if instr.scope is not Scope.DEVICE:
                return instr
            self.applied += 1
            return Fence(Scope.BLOCK)
        if kind in ("skip_syncthreads", "skip_syncwarp"):
            self.applied += 1
            return None
        if kind == "demote_atomic":
            if not self._address_matches(instr.address):
                return instr
            self.applied += 1
            if instr.op is AtomicOp.ADD and instr.value == 0:
                return Load(instr.address)
            return Store(instr.address, instr.value)
        if kind == "weaken_scope":
            if not self._address_matches(instr.address):
                return instr
            if instr.scope is not Scope.DEVICE:
                return instr
            self.applied += 1
            return Atomic(
                instr.op, instr.address, instr.value,
                scope=Scope.BLOCK, compare=instr.compare,
            )
        # reorder_store: stash the first matching store per thread; it is
        # dropped here and replayed right after the thread's next
        # __syncthreads() (see the Syncthreads branch above).
        key = id(thread)
        if (
            key in self._stash
            or key in self._replayed
            or not self._address_matches(instr.address)
        ):
            return instr
        self._stash[key] = (instr, ip)
        self._replayed.add(key)
        self.applied += 1
        return None


def install(spec: MutationSpec, device) -> StreamMutator:
    """Attach a mutator for ``spec`` to ``device`` and return it."""
    mutator = StreamMutator(spec, device)
    device.mutator = mutator
    return mutator
