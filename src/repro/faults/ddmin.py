"""Delta debugging: shrink a failing input to a minimal reproducer.

Zeller & Hildebrandt's ``ddmin`` over an arbitrary sequence: given a
list of items (trace events, DSL statements, JSONL lines) and a
predicate that re-runs the failure check, find a *1-minimal* sublist —
removing any single remaining item makes the failure disappear.  The
fuzzer (:mod:`repro.faults.fuzz`) runs every crash and divergence it
finds through this before filing it in the triage corpus, so corpus
entries are small enough to read.

The predicate is called on candidate sublists and must return True when
the candidate still reproduces the *original* failure (same crash
signature, same divergence) — returning True for a different failure
would minimize toward the wrong bug, so callers bind the signature into
the predicate.  A ``max_tests`` budget bounds the quadratic tail; on
exhaustion the best-so-far (still failing) sublist is returned.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    test: Callable[[List[T]], bool],
    max_tests: int = 2048,
) -> List[T]:
    """Minimize ``items`` while ``test`` keeps returning True.

    ``test(candidate)`` must be deterministic and True for the full
    input (callers should verify that before invoking; a non-failing
    input is returned unchanged).  Returns a 1-minimal failing sublist,
    or the smallest failing sublist found within ``max_tests`` calls.
    """
    current = list(items)
    if len(current) <= 1:
        return current
    tests_run = 0
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [
            current[start : start + chunk]
            for start in range(0, len(current), chunk)
        ]
        reduced = False
        # Try each subset alone (reduce to subset) ...
        for subset in subsets:
            if len(subset) == len(current):
                continue
            tests_run += 1
            if tests_run > max_tests:
                return current
            if test(list(subset)):
                current = list(subset)
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then each complement (remove subset).
        if granularity > 2:
            for index in range(len(subsets)):
                complement = [
                    item
                    for position, subset in enumerate(subsets)
                    if position != index
                    for item in subset
                ]
                if len(complement) == len(current):
                    continue
                tests_run += 1
                if tests_run > max_tests:
                    return current
                if test(complement):
                    current = complement
                    granularity = max(2, granularity - 1)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)
    return current
