"""Poison-event quarantine: absorb per-event detector crashes, bounded.

One malformed event in a million-event trace used to abort the whole
replay — the exact failure mode the salvage contract already forbids for
*decoder* corruption.  Quarantine extends that contract to the
*detection* plane: when handling a single event raises an unexpected
exception, the event is recorded and skipped, detection continues on
everything else, and the degradation is surfaced exactly like
``metadata_max_entries`` eviction (HOT counter, watchdog rule,
structured ``quarantine`` block in reports).  A quarantined event can
hide a race on its own granule — bounded recall loss — but can never
invent one.

Wrap points (all per-event):

- :func:`repro.engine.replay.replay` — the serial bus-publish loop;
- :class:`repro.core.sharding._ShardedDrain` — the batched/columnar
  inlined front-end loop;
- :meth:`repro.core.engine.DetectorCore.handle` and the ``check_run``
  drain loops — the routed check itself, shared by every mode, so a
  poison event that survives the front-end quarantines *identically*
  in serial, sharded, and columnar replays (byte-identical reports on
  all non-quarantined records).

Deliberate non-absorptions: every :class:`~repro.errors.ReproError`
(Unsupported/OOM/Timeout/Deadlock are policy signals, corruption and
config errors are contracts) and ``MemoryError`` keep propagating, and
once more than ``IGUARD_QUARANTINE`` events (default 64) have been
absorbed the stream is considered systematically hostile and the
original exception is re-raised — quarantine is a shock absorber, not a
blindfold.

State is process-global (like the HOT recorder): one replay's absorbed
events are visible to the report built right after it.  Callers running
differential legs reset between legs with :func:`reset`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.budget import quarantine_limit
from repro.errors import ReproError
from repro.obs.log import get_logger
from repro.obs.metrics import HOT

#: Exceptions quarantine must never absorb: intentional policy and
#: contract signals (ReproError covers Unsupported/OOM/Timeout/Deadlock/
#: TraceCorruption/Config/RetryExhausted/WorkerCrash) plus allocator
#: exhaustion.  BaseExceptions (KeyboardInterrupt, SystemExit) never
#: reach :func:`poison` — wrap points catch ``Exception`` only.
EXEMPT = (ReproError, MemoryError)

#: Structured examples kept for forensics (the counter keeps counting).
MAX_EXAMPLES = 8

logger = get_logger("quarantine")


class _QuarantineState:
    __slots__ = ("events", "kinds", "examples", "_logged")

    def __init__(self):
        self.events = 0
        self.kinds: Dict[str, int] = {}
        self.examples: List[dict] = []
        self._logged: set = set()


_STATE = _QuarantineState()


def poison(event, exc: Exception, stage: str) -> None:
    """Absorb one poison event, or re-raise when it must propagate.

    Called from an ``except Exception as exc:`` handler around one
    event's dispatch.  Returns normally when the event is quarantined
    (caller skips it and continues); re-raises ``exc`` when quarantine
    is disabled, the exception is exempt, or the absorption budget is
    spent.
    """
    limit = quarantine_limit()
    if limit <= 0 or isinstance(exc, EXEMPT):
        raise exc
    state = _STATE
    if state.events >= limit:
        logger.error(
            "quarantine limit %d exhausted at %s; re-raising %s",
            limit, stage, type(exc).__name__,
        )
        raise exc
    state.events += 1
    kind = type(exc).__name__
    state.kinds[kind] = state.kinds.get(kind, 0) + 1
    if len(state.examples) < MAX_EXAMPLES:
        state.examples.append(
            {
                "stage": stage,
                "error": f"{kind}: {exc}"[:300],
                "event": repr(event)[:200],
            }
        )
    if HOT.enabled:
        HOT.quarantined_events.inc()
    if kind not in state._logged:
        state._logged.add(kind)
        logger.warning(
            "quarantined poison event at %s (%s: %s) — detection "
            "continues, recall on this granule may be reduced",
            stage, kind, exc,
        )


def events_absorbed() -> int:
    """Poison events absorbed by this process so far."""
    return _STATE.events


def snapshot() -> dict:
    """Deterministic, mode-agnostic summary for report blocks.

    Deliberately excludes the wrap-point stage: the same poison event
    surfaces at the replay loop in serial mode and at the drain loop in
    batched mode, and the report block must stay byte-identical across
    modes.  Stages live in the bounded :func:`examples` forensics and
    the logs.
    """
    return {
        "events": _STATE.events,
        "kinds": {k: _STATE.kinds[k] for k in sorted(_STATE.kinds)},
    }


def examples() -> List[dict]:
    """The first few absorbed events, with stages, for forensics."""
    return [dict(example) for example in _STATE.examples]


def report_block() -> Optional[dict]:
    """The ``quarantine`` report block, or None for a clean run.

    None (not an empty block) keeps clean-run reports byte-identical
    with pre-quarantine ones.
    """
    return snapshot() if _STATE.events else None


def reset() -> None:
    """Forget all absorbed events (test isolation, differential legs)."""
    global _STATE
    _STATE = _QuarantineState()
