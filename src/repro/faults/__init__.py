"""Fault injection and chaos engineering for the iGUARD reproduction.

Three layers, one package:

- :mod:`repro.faults.mutators` — seeded transformations over the kernel
  DSL instruction stream (drop/weaken fences, skip barriers, demote
  atomics, reorder stores past barriers), each annotated with the Table 2
  condition the injected race should fire;
- :mod:`repro.faults.workloads` — small race-free *pattern* workloads
  built so that every catalogued mutation produces a deterministic,
  direction-pinned race;
- :mod:`repro.faults.recall` — the detection-power regression gate: run
  iGUARD over every (workload, mutant) cell and report detected/missed;
- :mod:`repro.faults.chaos` — infrastructure chaos: crash/hang/slow/flake
  faults injected into suite-executor workers behind the ``IGUARD_CHAOS``
  environment spec, exercised against the executor's retry/resume
  machinery.

Submodules import lazily on purpose: :mod:`repro.engine.parallel` pulls
in :mod:`repro.faults.chaos` (stdlib-only) without dragging the mutation
catalog into every worker process.
"""

__all__ = ["chaos", "mutators", "recall", "workloads"]
