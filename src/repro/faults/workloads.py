"""Race-free pattern workloads whose mutations race deterministically.

Each pattern is a minimal, *correctly synchronized* kernel exercising one
synchronization idiom (fence-published flag, block barrier, warp barrier,
scoped atomics).  Its mutation catalog lists :class:`MutationSpec`\\ s
that each remove or weaken exactly the synchronization the pattern
depends on — and, crucially, every pattern orders the conflicting pair at
*runtime* through an unfenced atomic flag (``signal``/``wait_for``, the
same direction-pinning idiom the Table 4 workloads use).  Removing the
*happens-before* synchronization therefore cannot reorder the accesses:
the mutant still executes producer-then-consumer, the detector just no
longer sees an ordering edge, and the injected race fires on the same
site with the same Table 2 condition on every seed.

That determinism is what makes the recall gate a usable CI signal: a
missed mutant is a detection regression, never scheduler luck.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.faults.mutators import MutationSpec
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    signal,
    signal_fenced,
    wait_for,
    wait_for_acquire,
)

# ---------------------------------------------------------------------------
# ff-pipeline: device-scope fence publication across blocks
# ---------------------------------------------------------------------------


def _ff_pipeline_kernel(ctx, data, flags):
    if ctx.block_id == 0 and ctx.is_block_leader:
        yield store(data, 0, 13)
        yield from signal_fenced(flags, 0)
    elif ctx.block_id == 1 and ctx.is_block_leader:
        yield from wait_for_acquire(flags, 0)
        value = yield load(data, 0)
        yield store(data, 1, value)


def _run_ff_pipeline(device, seed: int) -> None:
    data = device.alloc("ff_data", 4)
    flags = device.alloc("ff_flags", 1)
    device.launch(
        _ff_pipeline_kernel, grid_dim=2, block_dim=8,
        args=(data, flags), seed=seed,
    )


# ---------------------------------------------------------------------------
# barrier-handoff: __syncthreads() handoff between warps of one block
# ---------------------------------------------------------------------------


def _barrier_handoff_kernel(ctx, cells, flags):
    if ctx.warp_in_block == 0 and ctx.lane == 0:
        yield store(cells, 0, 41)
        yield from signal(flags, 0)
    yield syncthreads()
    if ctx.warp_in_block == 1 and ctx.lane == 0:
        yield from wait_for(flags, 0)
        value = yield load(cells, 0)
        yield store(cells, 1, value)


def _run_barrier_handoff(device, seed: int) -> None:
    cells = device.alloc("bh_cells", 4)
    flags = device.alloc("bh_flags", 1)
    device.launch(
        _barrier_handoff_kernel, grid_dim=1, block_dim=16,
        args=(cells, flags), seed=seed,
    )


# ---------------------------------------------------------------------------
# warp-exchange: __syncwarp() handoff between lanes of one warp
# ---------------------------------------------------------------------------


def _warp_exchange_kernel(ctx, lanes, flags):
    if ctx.lane == 0:
        yield store(lanes, 0, 7)
        yield from signal(flags, 0)
    yield syncwarp()
    if ctx.lane == 1:
        yield from wait_for(flags, 0)
        value = yield load(lanes, 0)
        yield store(lanes, 1, value)


def _run_warp_exchange(device, seed: int) -> None:
    lanes = device.alloc("we_lanes", 4)
    flags = device.alloc("we_flags", 1)
    device.launch(
        _warp_exchange_kernel, grid_dim=1, block_dim=8,
        args=(lanes, flags), seed=seed,
    )


# ---------------------------------------------------------------------------
# scoped-counter: device-scope atomics shared across blocks
# ---------------------------------------------------------------------------


def _scoped_counter_kernel(ctx, counter, flags):
    if ctx.block_id == 0 and ctx.is_block_leader:
        yield atomic_add(counter, 0, 1, scope=Scope.DEVICE)
        yield from signal(flags, 0)
    elif ctx.block_id == 1 and ctx.is_block_leader:
        yield from wait_for(flags, 0)
        yield atomic_add(counter, 0, 1, scope=Scope.DEVICE)


def _run_scoped_counter(device, seed: int) -> None:
    counter = device.alloc("sc_counter", 1)
    flags = device.alloc("sc_flags", 1)
    device.launch(
        _scoped_counter_kernel, grid_dim=2, block_dim=8,
        args=(counter, flags), seed=seed,
    )


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------


def _is_producer_block(ctx) -> bool:
    return ctx.block_id == 0


def _is_consumer_block(ctx) -> bool:
    return ctx.block_id == 1


def _is_handoff_producer(ctx) -> bool:
    return ctx.warp_in_block == 0 and ctx.lane == 0


class PatternWorkload:
    """A race-free pattern plus the mutations that break it."""

    def __init__(self, workload: Workload, mutations: Tuple[MutationSpec, ...]):
        self.workload = workload
        self.mutations = mutations
        self.name = workload.name

    def mutation(self, name: str) -> MutationSpec:
        for spec in self.mutations:
            if spec.name == name:
                return spec
        raise KeyError(f"pattern {self.name!r} has no mutation {name!r}")


FAULT_PATTERNS: Tuple[PatternWorkload, ...] = (
    PatternWorkload(
        Workload(
            name="ff-pipeline",
            suite="faults",
            run=_run_ff_pipeline,
            seeds=(1, 2),
            description="cross-block handoff through a fenced flag",
        ),
        (
            MutationSpec(
                name="drop-release-fence",
                kind="drop_fence",
                condition="R4",
                expected_type="DR",
                description="delete the producer's __threadfence() before "
                            "the flag bump: the published store races "
                            "inter-block",
                thread=_is_producer_block,
            ),
            MutationSpec(
                name="weaken-release-fence",
                kind="weaken_fence",
                condition="R4",
                expected_type="DR",
                description="demote the producer's device fence to "
                            "__threadfence_block(): too weak to order the "
                            "cross-block consumer",
                thread=_is_producer_block,
            ),
        ),
    ),
    PatternWorkload(
        Workload(
            name="barrier-handoff",
            suite="faults",
            run=_run_barrier_handoff,
            seeds=(1, 2),
            description="cross-warp handoff through __syncthreads()",
        ),
        (
            MutationSpec(
                name="skip-syncthreads",
                kind="skip_syncthreads",
                condition="R3",
                expected_type="BR",
                description="delete the block barrier for every thread: "
                            "the handoff becomes an intra-block race",
            ),
            MutationSpec(
                name="reorder-store-past-barrier",
                kind="reorder_store",
                condition="R3",
                expected_type="BR",
                description="move the producer's store to after the "
                            "barrier: it now races the consumer's load",
                target_array="bh_cells",
                thread=_is_handoff_producer,
            ),
        ),
    ),
    PatternWorkload(
        Workload(
            name="warp-exchange",
            suite="faults",
            run=_run_warp_exchange,
            seeds=(1, 2),
            description="cross-lane handoff through __syncwarp()",
        ),
        (
            MutationSpec(
                name="skip-syncwarp",
                kind="skip_syncwarp",
                condition="R2",
                expected_type="ITS",
                description="delete the warp barrier: under independent "
                            "thread scheduling the lanes race",
            ),
        ),
    ),
    PatternWorkload(
        Workload(
            name="scoped-counter",
            suite="faults",
            run=_run_scoped_counter,
            seeds=(1, 2),
            description="cross-block counter updated by scoped atomics",
        ),
        (
            MutationSpec(
                name="demote-atomic-to-store",
                kind="demote_atomic",
                condition="R4",
                expected_type="DR",
                description="replace the consumer block's atomicAdd with a "
                            "plain store: it races the producer's atomic",
                target_array="sc_counter",
                thread=_is_consumer_block,
            ),
            MutationSpec(
                name="weaken-atomic-scope",
                kind="weaken_scope",
                condition="R1",
                expected_type="AS",
                description="demote both counter atomics to block scope: "
                            "insufficient for cross-block communication",
                target_array="sc_counter",
            ),
        ),
    ),
)

_BY_NAME: Dict[str, PatternWorkload] = {p.name: p for p in FAULT_PATTERNS}


def get_pattern(name: str) -> PatternWorkload:
    """Look a pattern workload up by name."""
    pattern = _BY_NAME.get(name)
    if pattern is None:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown fault pattern {name!r} (known: {known})")
    return pattern


def total_mutations(patterns=FAULT_PATTERNS) -> int:
    return sum(len(p.mutations) for p in patterns)
