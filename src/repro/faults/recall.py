"""The detection-power regression gate: does iGUARD catch injected races?

For each pattern workload the gate runs one *baseline* cell (unmutated —
must report **zero** races, proving the pattern is genuinely race-free)
and one cell per selected mutation (must report at least one race whose
type matches the mutation's annotated Table 2 expectation).  A mutant
whose race goes unreported is a *missed* detection: the gate exits
non-zero and CI fails, which is what makes it a recall regression gate
rather than a demo.

The report is deliberately timing-free and key-sorted, so two runs of
the same tree produce byte-identical JSON — CI exploits that to assert
that a chaos-injected ``--workers 2`` run (worker crashes, hangs,
retries, resume) merges to exactly the fault-free serial result.

CLI::

    python -m repro.faults.recall [--workloads a,b] [--mutants N]
        [--seed S] [--workers N] [--cell-timeout SEC]
        [--checkpoint PATH [--resume]] [--chaos SPEC] [--json OUT]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.rng import SplitMix64
from repro.core.detector import IGuard
from repro.engine import checkpoint as ckpt
from repro.engine.parallel import parallel_map
from repro.errors import DeadlockError, TimeoutError_
from repro.faults.mutators import install
from repro.faults.workloads import FAULT_PATTERNS, PatternWorkload, get_pattern
from repro.gpu.device import Device
from repro.workloads.base import SIM_GPU

#: Report schema version (bump on incompatible changes).
#: v2: per-record static-analyzer cross-check fields (``static_verdict``,
#: ``static_types``, ``static_ok``) and ``summary.static_mismatches``.
REPORT_SCHEMA = 2


@dataclass(frozen=True)
class _RecallCell:
    """One executable gate cell: a pattern, optionally mutated."""

    pattern: str
    mutation: Optional[str]  # None = the race-free baseline

    def __str__(self) -> str:
        return f"recall:{self.pattern}:{self.mutation or 'baseline'}"


def _run_recall_cell(cell: _RecallCell) -> dict:
    """Run one gate cell over the pattern's pinned seeds; union the races.

    Every field of the returned record is deterministic in (tree, cell):
    sites are source positions, never timings or pids.
    """
    pattern = get_pattern(cell.pattern)
    spec = pattern.mutation(cell.mutation) if cell.mutation else None
    sites: Dict[str, str] = {}
    applied = 0
    status = "ok"
    for seed in pattern.workload.seeds:
        device = Device(SIM_GPU)
        tool = device.add_tool(IGuard())
        mutator = install(spec, device) if spec is not None else None
        try:
            pattern.workload.run(device, seed)
        except (DeadlockError, TimeoutError_) as exc:
            # A mutant wedging the kernel is a legitimate outcome; the
            # detector's races up to that point stand.
            status = f"{type(exc).__name__}"
        if mutator is not None:
            applied += mutator.applied
        for ip, race_type in tool.races.sites():
            sites[ip] = str(race_type)
    record = {
        "workload": cell.pattern,
        "mutation": cell.mutation,
        "status": status,
        "applied": applied,
        "sites": sorted(sites.items()),
        "types": sorted(set(sites.values())),
    }
    if spec is not None:
        record["condition"] = spec.condition
        record["expected_type"] = spec.expected_type
        record["detected"] = spec.expected_type in record["types"]

    # Static cross-check (repro.analysis): the same pattern, analyzed
    # without running the dynamic detector at all.  The MutationSpec's
    # race-type annotation is the shared ground truth — the dynamic
    # detector AND the static analyzer must both agree with it, so a
    # drift in either (or a stale annotation) fails the gate loudly.
    from repro.analysis.lint import analyze_workload

    lint = analyze_workload(pattern.workload, mutation_spec=spec)
    record["static_verdict"] = lint.verdict
    record["static_types"] = lint.race_types
    if spec is None:
        record["static_ok"] = lint.verdict == "clean"
    else:
        record["static_ok"] = spec.expected_type in lint.race_types
    return record


def select_mutations(
    pattern: PatternWorkload, mutants: Optional[int], seed: int
) -> Tuple:
    """The mutation subset to run: all, or ``mutants`` seeded picks."""
    specs = list(pattern.mutations)
    if mutants is None or mutants >= len(specs):
        return tuple(specs)
    rng = SplitMix64((seed << 16) ^ len(pattern.name))
    picked = []
    pool = list(specs)
    for _ in range(max(mutants, 0)):
        picked.append(pool.pop(rng.randint(len(pool))))
    return tuple(sorted(picked, key=lambda s: s.name))


def run_recall(
    workload_names: Optional[Sequence[str]] = None,
    mutants: Optional[int] = None,
    seed: int = 1,
    workers: int = 1,
    cell_timeout: Optional[float] = None,
    journal: Optional[ckpt.CellJournal] = None,
) -> dict:
    """Run the gate and return the (deterministic, JSON-ready) report."""
    patterns = (
        [get_pattern(name) for name in workload_names]
        if workload_names
        else list(FAULT_PATTERNS)
    )
    cells: List[_RecallCell] = []
    for pattern in patterns:
        cells.append(_RecallCell(pattern.name, None))
        for spec in select_mutations(pattern, mutants, seed):
            cells.append(_RecallCell(pattern.name, spec.name))

    keys = [f"{cell}|s{seed}|{ckpt.config_fingerprint(SIM_GPU)}"
            for cell in cells]
    records: List[Optional[dict]] = [None] * len(cells)
    submit: List[int] = []
    for index, key in enumerate(keys):
        if journal is not None and key in journal:
            records[index] = journal.get(key)
        else:
            submit.append(index)

    def _journal_result(position: int, record: dict) -> None:
        if journal is not None:
            journal.record(keys[submit[position]], record)

    fresh = parallel_map(
        _run_recall_cell,
        [cells[i] for i in submit],
        workers,
        hard_timeout=cell_timeout,
        on_result=_journal_result,
    )
    for position, record in zip(submit, fresh):
        records[position] = record

    workloads: Dict[str, dict] = {}
    detected = missed = baseline_false_positives = 0
    static_mismatches = 0
    for record in records:
        entry = workloads.setdefault(
            record["workload"], {"baseline": None, "mutants": []}
        )
        if not record.get("static_ok", True):
            static_mismatches += 1
        if record["mutation"] is None:
            entry["baseline"] = record
            baseline_false_positives += len(record["sites"])
        else:
            entry["mutants"].append(record)
            if record["detected"]:
                detected += 1
            else:
                missed += 1
    for entry in workloads.values():
        entry["mutants"].sort(key=lambda r: r["mutation"])

    return {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "mutants_per_workload": mutants,
        "workloads": workloads,
        "summary": {
            "mutants": detected + missed,
            "detected": detected,
            "missed": missed,
            "baseline_false_positives": baseline_false_positives,
            "static_mismatches": static_mismatches,
        },
    }


def report_passed(report: dict) -> bool:
    """Gate verdict: every mutant detected, every baseline race-free,
    and the static analyzer agreeing with every annotation."""
    summary = report["summary"]
    return (
        summary["missed"] == 0
        and summary["baseline_false_positives"] == 0
        and summary.get("static_mismatches", 0) == 0
    )


def render(report: dict) -> str:
    """Human-readable gate summary (the JSON artifact is the contract)."""
    lines = ["Recall gate: injected-race detection power", ""]
    for name, entry in sorted(report["workloads"].items()):
        baseline = entry["baseline"]
        clean = "race-free" if not baseline["sites"] else (
            f"FALSE POSITIVES: {baseline['sites']}"
        )
        static = baseline.get("static_verdict", "?")
        lines.append(f"{name}: baseline {clean} (static: {static})")
        if not baseline.get("static_ok", True):
            lines.append(
                f"  STATIC MISMATCH: analyzer says {static} "
                f"({', '.join(baseline.get('static_types', [])) or '-'}) "
                f"but the baseline is annotated race-free"
            )
        for record in entry["mutants"]:
            verdict = "detected" if record["detected"] else "MISSED"
            types = ", ".join(record["types"]) or "-"
            static_types = ", ".join(record.get("static_types", [])) or "-"
            lines.append(
                f"  {record['mutation']}: {verdict} "
                f"[{record['condition']} -> expect {record['expected_type']}, "
                f"got {types}; static: {static_types}]"
            )
            if not record.get("static_ok", True):
                lines.append(
                    f"    STATIC MISMATCH: annotation expects "
                    f"{record['expected_type']}, dynamic detector got "
                    f"[{types}], static analyzer got [{static_types}] "
                    f"(verdict {record.get('static_verdict', '?')})"
                )
    summary = report["summary"]
    lines.append("")
    lines.append(
        f"{summary['detected']}/{summary['mutants']} mutants detected, "
        f"{summary['missed']} missed, "
        f"{summary['baseline_false_positives']} baseline false positive(s), "
        f"{summary.get('static_mismatches', 0)} static mismatch(es)."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse
    import os

    from repro.obs import (
        add_observability_args,
        begin_observability,
        finalize_observability,
    )
    from repro.obs.log import output

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.recall",
        description="Detection-power gate: run iGUARD over injected races.",
    )
    parser.add_argument(
        "--workloads", default=None, metavar="A,B",
        help="pattern workloads to gate (default: all)",
    )
    parser.add_argument(
        "--mutants", type=int, default=None, metavar="N",
        help="seeded pick of N mutations per workload (default: all)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan gate cells out over N worker processes",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SEC",
        help="hard per-cell timeout: kill and retry cells running longer "
             "than SEC seconds (default: IGUARD_CELL_TIMEOUT or none)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed cells to PATH for crash-safe --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve cells already journaled in --checkpoint",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="set IGUARD_SHARDS for this run: partition each cell's "
             "detector across N shards (byte-identical reports for any N)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="set IGUARD_CHAOS for this run, e.g. 'crash=0.25,seed=11'",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the deterministic JSON report to PATH",
    )
    add_observability_args(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.chaos is not None:
        from repro.faults import chaos as chaos_module

        os.environ[chaos_module.ENV_VAR] = args.chaos
    if args.shards is not None:
        # Like --chaos: env-armed process-wide state, inherited by worker
        # processes, so the gate cells need no new plumbing.
        from repro.core import sharding

        os.environ[sharding.ENV_VAR] = str(args.shards)
    begin_observability(args)

    from repro.core.config import DEFAULT_CONFIG
    from repro.core.sharding import default_shards
    from repro.obs.log import log_run_config

    log_run_config(
        backend="iguard",
        shards=default_shards(),
        workers=args.workers,
        fast_path=DEFAULT_CONFIG.fast_path,
    )

    journal = (
        ckpt.CellJournal(args.checkpoint, resume=args.resume)
        if args.checkpoint
        else None
    )
    names = args.workloads.split(",") if args.workloads else None
    report = run_recall(
        workload_names=names,
        mutants=args.mutants,
        seed=args.seed,
        workers=args.workers,
        cell_timeout=args.cell_timeout,
        journal=journal,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    output(render(report))
    finalize_observability(args)
    return 0 if report_passed(report) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
