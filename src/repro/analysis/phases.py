"""Barrier-interval phases and granule-level sharing facts.

The MHP (may-happen-in-parallel) skeleton follows Liew et al.'s
barrier-interval reasoning, adapted to the counters the dynamic detector
actually snapshots (Table 2):

- every access carries the number of ``syncthreads`` its thread completed
  before it (its *block interval*) and the number of ``syncwarp``s (its
  *warp interval*);
- a block barrier only completes when every live thread of the block has
  arrived, so at the moment a thread executes an access in block interval
  *i*, the block's live barrier counter is exactly *i* — the same value
  the detector would snapshot into the metadata entry.  Two same-block
  accesses in different intervals therefore cannot both be "current while
  the other is the stale snapshot": whichever executes second observes a
  counter that moved, which is precisely preliminary check P5 (P4 for
  warps) passing.  No barrier-alignment side condition is needed: the
  interval number *is* the live counter, not a per-thread textual count.

The same-block argument additionally needs the granule's ``DevShared``
flag to be provably clear (P5 requires it), which is a *granule-global*
fact: one access from another block anywhere in the kernel can set it.
:class:`GranuleFacts` aggregates those whole-granule properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.extract import KernelSummary, StaticAccess, ThreadTrace


@dataclass
class SiteRecord:
    """Deduplicated accesses of one thread that are interchangeable.

    Two accesses merge when they agree on everything the pairwise checker
    looks at (site, kind, granule, scope, intervals, fence counts,
    value-changingness).  Spin polls collapse this way, keeping the
    pairwise loop quadratic in *distinct* behaviors rather than in raw
    poll counts.  ``min_index``/``max_index`` preserve the program-order
    extremes so position-sensitive rules (the fence-publication chain)
    can still quantify over every merged occurrence.
    """

    access: StaticAccess  # representative (first occurrence)
    min_index: int
    max_index: int
    count: int = 1


def _dedup_key(a: StaticAccess) -> Tuple:
    return (
        a.ip,
        a.kind,
        a.granule,
        a.scope,
        a.atomic_op,
        a.value_changing,
        a.blk_interval,
        a.warp_interval,
        a.dev_fences,
        a.blk_fences,
        a.spin,
    )


def dedup_thread(trace: ThreadTrace) -> List[SiteRecord]:
    """Collapse one thread's accesses into site records."""
    records: Dict[Tuple, SiteRecord] = {}
    for access in trace.accesses:
        key = _dedup_key(access)
        record = records.get(key)
        if record is None:
            records[key] = SiteRecord(
                access=access, min_index=access.index, max_index=access.index
            )
        else:
            record.min_index = min(record.min_index, access.index)
            record.max_index = max(record.max_index, access.index)
            record.count += 1
    return list(records.values())


@dataclass
class GranuleFacts:
    """Whole-granule properties the pairwise rules consult."""

    granule: int
    records: List[SiteRecord] = field(default_factory=list)
    blocks: Set[int] = field(default_factory=set)
    warps: Set[int] = field(default_factory=set)
    has_write: bool = False
    #: Threads whose writes can change the stored value (spin zero-adds
    #: excluded) — the chain rule's single-writer condition.
    changing_writer_tids: Set[int] = field(default_factory=set)

    @property
    def single_block(self) -> bool:
        """Only one block ever touches the granule: DevShared stays clear."""
        return len(self.blocks) <= 1


def granule_facts(summary: KernelSummary) -> Dict[int, GranuleFacts]:
    """Site records and sharing facts for every granule in the kernel."""
    facts: Dict[int, GranuleFacts] = {}
    for trace in summary.threads:
        for record in dedup_thread(trace):
            access = record.access
            fact = facts.get(access.granule)
            if fact is None:
                fact = facts[access.granule] = GranuleFacts(granule=access.granule)
            fact.records.append(record)
            fact.blocks.add(access.location.block_id)
            fact.warps.add(access.location.warp_id)
            if access.is_write:
                fact.has_write = True
            if access.value_changing:
                fact.changing_writer_tids.add(access.location.global_tid)
    return facts


@dataclass
class PhaseSummary:
    """One barrier interval of one thread, for human-facing lint output."""

    blk_interval: int
    warp_interval: int
    ips: List[str] = field(default_factory=list)


def phase_partition(trace: ThreadTrace) -> List[PhaseSummary]:
    """Split a thread's accesses at barrier boundaries, in program order."""
    phases: List[PhaseSummary] = []
    for access in trace.accesses:
        if (
            not phases
            or phases[-1].blk_interval != access.blk_interval
            or phases[-1].warp_interval != access.warp_interval
        ):
            phases.append(
                PhaseSummary(
                    blk_interval=access.blk_interval,
                    warp_interval=access.warp_interval,
                )
            )
        if access.ip not in phases[-1].ips:
            phases[-1].ips.append(access.ip)
    return phases
