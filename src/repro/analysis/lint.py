"""``iguard-experiments lint``: static race lint over registered workloads.

A workload is its host driver: the only way to know which kernels it
launches (and with which grids and arrays) is to run the driver.
:class:`AnalysisDevice` does exactly that — a normal simulated device
whose ``launch`` first statically analyzes the kernel (extraction +
pairwise checking against the *pre-launch* memory state, which is what
the fence-publication chain rule needs), then executes it natively so the
driver's later launches and host-side reads behave normally.

``analyze_workload`` is also the backbone of the fuzzer's soundness gate
and the recall suite's annotation cross-check; for those callers a
``mutation_spec`` mutates the *statically analyzed* instruction stream
while native execution stays unmutated (a mutated native run could
deadlock — the static verdict must not depend on surviving one).

Output is deterministic (no timings, stable ordering) and, with
``--format json``, validated in CI against
``benchmarks/schemas/lint.schema.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.checker import KernelReport, analyze_kernel
from repro.analysis.extract import KernelSummary, extract_or_unanalyzable
from repro.gpu.device import Device
from repro.workloads.base import SIM_GPU, Workload

#: Version of the lint JSON document (benchmarks/schemas/lint.schema.json).
LINT_SCHEMA = 1

#: Global extraction cache: unrolling is memory-independent, so summaries
#: can be shared across launches, seeds, and detector instances.  Keyed by
#: kernel code identity, launch geometry, and the argument signature.
_EXTRACTION_CACHE: Dict[Tuple, KernelSummary] = {}


def args_signature(args: Tuple) -> Optional[Tuple]:
    """A hashable identity for launch args, or None if not cacheable."""
    signature: List[Tuple] = []
    for arg in args:
        allocation = getattr(arg, "allocation", None)
        if allocation is not None:
            signature.append(("array", allocation.base, allocation.num_words))
        elif isinstance(arg, (int, float, str, bool, type(None))):
            signature.append(("scalar", arg))
        else:
            return None
    return tuple(signature)


def _freeze(value):
    """Recursively hashable *value* view of a closure cell, or raise.

    Only value-stable leaves are accepted — identity-hashed objects
    could alias a later object reusing the same id after collection.
    """
    allocation = getattr(value, "allocation", None)
    if allocation is not None:
        return ("array", allocation.base, allocation.num_words)
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (int, float, str, bytes, bool, type(None))):
        return value
    raise TypeError(f"unfreezable closure value {type(value).__name__}")


def closure_signature(kernel_fn) -> Optional[Tuple]:
    """A hashable identity for a kernel's closure, or None if opaque.

    Kernel *factories* (``build_kernel`` in the fuzzer, parameterized
    workload builders) return distinct closures over one shared
    ``__code__`` object — cache keys built from the code object alone
    would alias every program the factory ever produced.  The closure
    cells carry the distinguishing state, so they join the key; a cell
    holding something unhashable (and not a plain list/tuple tree)
    makes the kernel uncacheable.
    """
    cells = getattr(kernel_fn, "__closure__", None)
    if not cells:
        return ()
    signature = []
    for cell in cells:
        try:
            signature.append(_freeze(cell.cell_contents))
        except (TypeError, ValueError):
            return None
    return tuple(signature)


def extract_cached(
    kernel_fn,
    grid_dim: int,
    block_dim: int,
    warp_size: int,
    args: Tuple = (),
    mutator_factory=None,
    mutation_key: Optional[str] = None,
) -> KernelSummary:
    """Extraction with the global cache (bypassed for uncacheable args)."""
    arg_sig = args_signature(args)
    closure_sig = closure_signature(kernel_fn)
    key = None
    if arg_sig is not None and closure_sig is not None:
        key = (
            getattr(kernel_fn, "__code__", kernel_fn),
            closure_sig,
            grid_dim,
            block_dim,
            warp_size,
            arg_sig,
            mutation_key,
        )
        cached = _EXTRACTION_CACHE.get(key)
        if cached is not None:
            return cached
    summary = extract_or_unanalyzable(
        kernel_fn,
        grid_dim,
        block_dim,
        warp_size,
        args,
        mutator_factory=mutator_factory,
    )
    if key is not None:
        _EXTRACTION_CACHE[key] = summary
    return summary


@dataclass
class LaunchLint:
    """Static verdict for one analyzed launch."""

    summary: KernelSummary
    report: KernelReport

    def to_json(self) -> Dict:
        report, summary = self.report, self.summary
        return {
            "kernel": report.kernel_name,
            "grid_dim": summary.grid_dim,
            "block_dim": summary.block_dim,
            "warp_size": summary.warp_size,
            "analyzable": report.analyzable,
            "reason": report.reason,
            "has_lock_ops": report.has_lock_ops,
            "truncated": report.truncated,
            "sites": len(report.sites),
            "safe_sites": len(report.safe_sites),
            "may_race_sites": len(report.may_race_sites),
            "race_types": sorted(report.race_types),
            "findings": [f.to_json() for f in report.findings],
        }


class AnalysisDevice(Device):
    """A device that statically analyzes every launch before running it."""

    def __init__(self, config=SIM_GPU, mutation_spec=None):
        super().__init__(config)
        self.lints: List[LaunchLint] = []
        self._mutation_spec = mutation_spec

    def _memory_value(self, address: int) -> Optional[int]:
        try:
            value = self.memory.host_read(address)
        except Exception:  # noqa: BLE001 - unreadable word disables chains
            return None
        return value if isinstance(value, int) else None

    def _mutator_factory(self):
        if self._mutation_spec is None:
            return None
        from repro.faults.mutators import StreamMutator

        spec = self._mutation_spec
        # One FRESH mutator per extraction pass: never the device's live
        # mutator, whose applied-counter and reorder stash belong to the
        # dynamic run.
        return lambda: StreamMutator(spec, self)

    def analyze_launch(
        self, kernel_fn, grid_dim: int, block_dim: int, args: Tuple = ()
    ) -> LaunchLint:
        spec = self._mutation_spec
        summary = extract_cached(
            kernel_fn,
            grid_dim,
            block_dim,
            self.config.warp_size,
            args,
            mutator_factory=self._mutator_factory(),
            mutation_key=None if spec is None else spec.name,
        )
        report = analyze_kernel(summary, memory_value=self._memory_value)
        return LaunchLint(summary=summary, report=report)

    def launch(self, kernel_fn, grid_dim, block_dim, args=(), **kwargs):
        self.lints.append(
            self.analyze_launch(kernel_fn, grid_dim, block_dim, args)
        )
        return super().launch(kernel_fn, grid_dim, block_dim, args, **kwargs)


@dataclass
class WorkloadLint:
    """Aggregated lint verdict for one workload's host driver."""

    workload: str
    launches: List[LaunchLint] = field(default_factory=list)
    status: str = "ok"
    detail: str = ""

    @property
    def verdict(self) -> str:
        if self.status != "ok":
            return "error"
        if any(not l.report.analyzable for l in self.launches):
            return "unanalyzable"
        if any(l.report.findings for l in self.launches):
            return "racy"
        return "clean"

    @property
    def race_types(self) -> List[str]:
        types = set()
        for launch in self.launches:
            types |= launch.report.race_types
        return sorted(types)

    def allows_dynamic_site(self, ip: str) -> bool:
        """May the dynamic detector report a race at ``ip``?

        True if *any* analyzed launch allows it (the dynamic report does
        not say which launch it came from), or if nothing was analyzed.
        """
        if self.status != "ok" or not self.launches:
            return True
        return any(l.report.allows_dynamic_site(ip) for l in self.launches)

    def static_safe_sites(self) -> set:
        """Sites proven safe by every launch that contains them."""
        safe: set = set()
        seen: set = set()
        for launch in self.launches:
            report = launch.report
            if not report.analyzable:
                return set()
            for ip in report.sites:
                if ip in report.safe_sites:
                    if ip not in seen:
                        safe.add(ip)
                else:
                    safe.discard(ip)
                seen.add(ip)
        return safe

    def to_json(self) -> Dict:
        # Identical repeated launches collapse to one entry with a count,
        # keeping the document deterministic and small for multi-seed
        # drivers.
        collapsed: List[Tuple[Dict, int]] = []
        for launch in self.launches:
            doc = launch.to_json()
            if collapsed and collapsed[-1][0] == doc:
                collapsed[-1] = (doc, collapsed[-1][1] + 1)
            else:
                collapsed.append((doc, 1))
        return {
            "workload": self.workload,
            "verdict": self.verdict,
            "status": self.status,
            "detail": self.detail,
            "race_types": self.race_types,
            "launches": [
                dict(doc, count=count) for doc, count in collapsed
            ],
        }


def analyze_workload(
    workload: Workload,
    config=SIM_GPU,
    seed: Optional[int] = None,
    mutation_spec=None,
) -> WorkloadLint:
    """Run a workload's host driver under static analysis."""
    device = AnalysisDevice(config, mutation_spec=mutation_spec)
    lint = WorkloadLint(workload=workload.name)
    if seed is None:
        seed = workload.seeds[0] if workload.seeds else 0
    try:
        workload.run(device, seed)
    except Exception as exc:  # noqa: BLE001 - verdict, not crash
        lint.status = "error"
        lint.detail = f"{type(exc).__name__}: {exc}"
    lint.launches = device.lints
    return lint


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _resolve(name: str) -> Workload:
    from repro.faults.workloads import get_pattern
    from repro.workloads.registry import get_workload

    try:
        return get_workload(name)
    except KeyError:
        return get_pattern(name).workload


def render_text(lints: List[WorkloadLint]) -> str:
    lines = ["=== static race lint ==="]
    for lint in lints:
        lines.append(f"\n{lint.workload}: {lint.verdict.upper()}"
                     + (f" [{', '.join(lint.race_types)}]"
                        if lint.race_types else ""))
        if lint.status != "ok":
            lines.append(f"  driver error: {lint.detail}")
        for launch in lint.launches:
            report = launch.report
            summary = launch.summary
            head = (
                f"  {report.kernel_name} <<<{summary.grid_dim}, "
                f"{summary.block_dim}>>>"
            )
            if not report.analyzable:
                lines.append(f"{head}: unanalyzable ({report.reason})")
                continue
            lines.append(
                f"{head}: {len(report.sites)} sites, "
                f"{len(report.safe_sites)} proven safe, "
                f"{len(report.may_race_sites)} may race"
                + (" (pair budget hit)" if report.truncated else "")
            )
            for finding in report.findings:
                lines.append(
                    f"    {finding.race_type} at {finding.ip} "
                    f"({finding.access} vs {finding.other_access} "
                    f"at {finding.other_ip})"
                )
                lines.append(f"      fix: {finding.fix_hint}")
    counts: Dict[str, int] = {}
    for lint in lints:
        counts[lint.verdict] = counts.get(lint.verdict, 0) + 1
    lines.append(
        "\nsummary: "
        + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    )
    return "\n".join(lines)


def to_document(lints: List[WorkloadLint]) -> Dict:
    counts: Dict[str, int] = {}
    for lint in lints:
        counts[lint.verdict] = counts.get(lint.verdict, 0) + 1
    return {
        "schema": LINT_SCHEMA,
        "workloads": [lint.to_json() for lint in lints],
        "summary": {
            "workloads": len(lints),
            "clean": counts.get("clean", 0),
            "racy": counts.get("racy", 0),
            "unanalyzable": counts.get("unanalyzable", 0),
            "error": counts.get("error", 0),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="iguard-experiments lint",
        description="Statically analyze workload kernels for races.",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        metavar="NAME",
        help="workload names (registry) or fault-pattern names",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="lint every registered workload plus the fault patterns",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument("--out", default=None, metavar="PATH")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="host-driver seed (default: the workload's first seed)",
    )
    args = parser.parse_args(argv)
    if args.all:
        from repro.faults.workloads import FAULT_PATTERNS
        from repro.workloads.registry import REGISTRY

        workloads = list(REGISTRY) + [p.workload for p in FAULT_PATTERNS]
    elif args.workloads:
        try:
            workloads = [_resolve(name) for name in args.workloads]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        parser.error("name at least one workload, or pass --all")
    lints = [
        analyze_workload(workload, seed=args.seed) for workload in workloads
    ]
    if args.fmt == "json":
        text = json.dumps(to_document(lints), indent=2, sort_keys=True)
    else:
        text = render_text(lints)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
