"""Pairwise static race checking over extracted kernel traces.

The question the checker answers, per instruction site *s*: can an access
at *s* ever be the **current** access of a race the dynamic detector
reports?  Races are blamed on the current access's ip
(:meth:`IGuardCore.report_race`), so the per-site may-race set is exactly
what both consumers need — the pruning contract skips checks at sites
proven safe, and the fuzzer's soundness gate asserts dynamically reported
ips are a subset of the may-race set.

The metadata entry an access is checked against always snapshots some
*earlier* access ``o`` to the same granule (or is invalid, check P1 — a
safe path).  So ``may_race(s) = ∃ o : pair_unsafe(o → s)``, quantified
over every other access to the granule, including accesses from third
sites: flag pollution by a third access is covered because that third
access is itself an ``o`` in the quantification, and rules are written to
be robust to flags set by accesses other than ``o`` (granule-global facts
from :mod:`repro.analysis.phases`).

A pair is pronounced *safe* only through arguments that mirror the
dynamic checks' own short circuits:

- **P3** same thread;
- load vs. non-write (a load is only ever checked against the last
  *writer*);
- **P4** same warp, different warp interval: the live warp counter at the
  later access necessarily differs from the snapshot (see
  :mod:`repro.analysis.phases` for why no alignment side condition is
  needed);
- **P5** same block, different block interval — valid only when the
  granule is single-block, else a third access can set ``DevShared`` and
  defeat P5;
- **P6** atomic–atomic: same block always; cross-block iff the *earlier*
  atomic's scope is device-wide (its writeback is what sets the entry's
  Scope flag while it is the snapshot);
- the **fence-publication chain**: ``o``, then a sufficiently scoped
  fence by ``o``'s thread, then that thread's only value-changing writes
  to a fresh flag granule, which ``s``'s thread provably spins on before
  ``s``.  The spin pins the dynamic order, the fence bumps the counter
  the R2/R3/R4 checks compare.  Requires a CAS/EXCH-free kernel (lock
  blooms stay empty, R5 cannot fire) and is barred when ``o`` is a
  cross-block block-scoped atomic (R1 ignores fences entirely).

Anything not proven safe is classified with the paper's taxonomy (AS /
ITS / BR / DR, plus IL for lock-inference candidates) and paired with a
GPURepair-style fix hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.extract import (
    GRANULARITY_BYTES,
    KernelSummary,
    StaticAccess,
    ThreadTrace,
)
from repro.analysis.phases import GranuleFacts, SiteRecord, granule_facts
from repro.gpu.events import AccessKind
from repro.gpu.instructions import AtomicOp, Scope, scope_covers

#: Pairwise evaluations per kernel before the checker gives up and marks
#: the remaining sites may-race (still sound: conservatism only ever
#: grows the may-race set).
PAIR_BUDGET = 200_000

#: Race-type labels, matching repro.core.report.RaceType values.
AS, ITS, BR, DR, IL = "AS", "ITS", "BR", "DR", "IL"

_FIX_HINTS = {
    AS: "promote the atomic's scope to device (atomicAdd_system/"
        "cuda::thread_scope_device) so cross-block accesses are covered",
    ITS: "insert __syncwarp() between the conflicting accesses "
         "(independent thread scheduling breaks lockstep ordering)",
    BR: "insert __syncthreads() between the conflicting accesses, or move "
        "them into the same barrier interval's owner thread",
    DR: "order the accesses with a device-scope release fence "
        "(__threadfence) before the signalling atomic, or strengthen the "
        "existing fence's scope to device",
    IL: "protect both accesses with the same lock (atomicCAS/__threadfence "
        "acquire, __threadfence/atomicExch release)",
}


@dataclass(frozen=True)
class Finding:
    """One may-race verdict at one instruction site."""

    ip: str
    race_type: str
    granule: int
    address: int
    access: str  # current access kind ("load"/"store"/"atomic")
    other_ip: str
    other_access: str
    same_block: bool
    same_warp: bool
    fix_hint: str

    def to_json(self) -> Dict:
        return {
            "ip": self.ip,
            "race_type": self.race_type,
            "granule": self.granule,
            "address": self.address,
            "access": self.access,
            "other_ip": self.other_ip,
            "other_access": self.other_access,
            "same_block": self.same_block,
            "same_warp": self.same_warp,
            "fix_hint": self.fix_hint,
        }


@dataclass
class KernelReport:
    """The static verdict for one kernel launch."""

    kernel_name: str
    analyzable: bool
    reason: Optional[str] = None
    sites: List[str] = field(default_factory=list)
    safe_sites: Set[str] = field(default_factory=set)
    findings: List[Finding] = field(default_factory=list)
    has_lock_ops: bool = False
    truncated: bool = False  # pair budget exhausted

    @property
    def may_race_sites(self) -> Set[str]:
        return {s for s in self.sites if s not in self.safe_sites}

    @property
    def race_types(self) -> Set[str]:
        return {f.race_type for f in self.findings}

    def allows_dynamic_site(self, ip: str) -> bool:
        """Soundness-gate predicate: may the detector report at ``ip``?

        Unanalyzable kernels allow everything; analyzable kernels allow
        exactly the may-race set.  A dynamic report at a site extraction
        never saw is a footprint mismatch and therefore also a violation.
        """
        if not self.analyzable:
            return True
        return ip in self.sites and ip not in self.safe_sites


def _chain_orders(
    o: SiteRecord,
    s: SiteRecord,
    o_trace: ThreadTrace,
    s_trace: ThreadTrace,
    facts: Dict[int, GranuleFacts],
    memory_value: Optional[Callable[[int], Optional[int]]],
) -> bool:
    """Fence-publication chain: o → fence → flag bump ⇒ spin ⇒ s."""
    if memory_value is None:
        return False
    oa, sa = o.access, s.access
    cross_block = oa.location.block_id != sa.location.block_id
    # R1 checks the last writer's scope flag regardless of fences: a
    # cross-block block-scoped atomic writer can always fire it.
    if (
        oa.is_atomic
        and cross_block
        and not scope_covers(oa.scope, Scope.DEVICE)
    ):
        return False
    o_tid = oa.location.global_tid
    # Candidate flag granules: ones s's thread provably spins on before s.
    spin_granules = {
        a.granule
        for a in s_trace.accesses
        if a.spin and a.index < s.min_index
    }
    if not spin_granules:
        return False
    for position, fence_scope in o_trace.fences:
        if position <= o.max_index:
            continue
        if cross_block and not scope_covers(fence_scope, Scope.DEVICE):
            continue
        for flag in spin_granules:
            fact = facts.get(flag)
            if fact is None:
                continue
            # Single writer: only o's thread can change the flag's value.
            if fact.changing_writer_tids != {o_tid}:
                continue
            # Every value-changing write to the flag sits after the fence
            # in o's program order (any observed bump is post-fence).
            bumps = [
                r
                for r in fact.records
                if r.access.value_changing
                and r.access.location.global_tid == o_tid
            ]
            if not bumps or any(r.min_index <= position for r in bumps):
                continue
            # The spin cannot be satisfied by the flag's initial value:
            # extraction observed value 0 *not* releasing it, so require
            # the pre-launch word to be 0.
            if memory_value(flag * GRANULARITY_BYTES) != 0:
                continue
            return True
    return False


def _pair_safe(
    o: SiteRecord,
    s: SiteRecord,
    fact: GranuleFacts,
    summary_has_locks: bool,
    facts: Dict[int, GranuleFacts],
    traces_by_tid: Dict[int, ThreadTrace],
    memory_value: Optional[Callable[[int], Optional[int]]],
) -> bool:
    """Can ``s`` never report a race while ``o`` is the stale snapshot?"""
    oa, sa = o.access, s.access
    # P3: same thread — program order, the detector's identity check.
    if oa.location.global_tid == sa.location.global_tid:
        return True
    # A load is only checked against the last *writer*.
    if sa.kind is AccessKind.LOAD and not oa.is_write:
        return True
    # P4: same warp, different warp interval.
    if (
        oa.location.warp_id == sa.location.warp_id
        and oa.warp_interval != sa.warp_interval
    ):
        return True
    # P5: same block, different block interval, granule private to the block.
    if (
        oa.location.block_id == sa.location.block_id
        and oa.blk_interval != sa.blk_interval
        and fact.single_block
    ):
        return True
    # P6: atomic vs. atomic.
    if oa.is_atomic and sa.is_atomic:
        if oa.location.block_id == sa.location.block_id:
            return True
        if scope_covers(oa.scope, Scope.DEVICE):
            return True
    # Fence-publication chain (lock-free kernels only: with CAS/EXCH in
    # play the lockset check R5 can fire on any surviving pair, and the
    # lock tables cannot be modeled soundly from a static trace).  Two
    # roles for one argument:
    #   forward  — o happens-before s with a fence the detector credits,
    #              so every ordering check on the stale snapshot passes;
    #   reverse  — s happens-before o, so o can never *be* the stale
    #              snapshot when s is checked (o strictly follows s in
    #              every execution the spin permits).
    if not summary_has_locks:
        o_trace = traces_by_tid[oa.location.global_tid]
        s_trace = traces_by_tid[sa.location.global_tid]
        if _chain_orders(o, s, o_trace, s_trace, facts, memory_value):
            return True
        if _chain_orders(s, o, s_trace, o_trace, facts, memory_value):
            return True
    return False


def _holds_inferred_lock(record: SiteRecord, trace: ThreadTrace) -> bool:
    """Did the thread CAS-acquire before this access (lock candidate)?"""
    return any(
        a.atomic_op is AtomicOp.CAS and a.index < record.min_index
        for a in trace.accesses
    )


def _classify(
    o: SiteRecord,
    s: SiteRecord,
    summary_has_locks: bool,
    traces_by_tid: Dict[int, ThreadTrace],
) -> str:
    """Map an unsafe pair onto the paper's race taxonomy (R1..R5 order)."""
    oa, sa = o.access, s.access
    cross_block = oa.location.block_id != sa.location.block_id
    if (
        oa.is_atomic
        and sa.is_atomic
        and cross_block
        and (
            not scope_covers(oa.scope, Scope.DEVICE)
            or not scope_covers(sa.scope, Scope.DEVICE)
        )
    ):
        return AS
    if oa.location.warp_id == sa.location.warp_id:
        return ITS
    if not cross_block:
        return BR
    if (
        summary_has_locks
        and _holds_inferred_lock(o, traces_by_tid[oa.location.global_tid])
        and _holds_inferred_lock(s, traces_by_tid[sa.location.global_tid])
    ):
        return IL
    return DR


def analyze_kernel(
    summary: KernelSummary,
    memory_value: Optional[Callable[[int], Optional[int]]] = None,
    pair_budget: int = PAIR_BUDGET,
) -> KernelReport:
    """Run the pairwise checker over an extracted kernel summary.

    ``memory_value`` maps a byte address to the pre-launch memory word
    (enables the fence-publication chain rule); ``None`` disables chains.
    """
    report = KernelReport(
        kernel_name=summary.kernel_name,
        analyzable=summary.analyzable,
        reason=summary.reason,
        has_lock_ops=summary.has_lock_ops,
    )
    if not summary.analyzable:
        return report
    report.sites = summary.all_sites()
    report.safe_sites = set(report.sites)
    facts = granule_facts(summary)
    traces_by_tid = {t.location.global_tid: t for t in summary.threads}
    has_locks = summary.has_lock_ops
    seen_findings: Set[Tuple[str, str]] = set()
    pairs_left = pair_budget
    for fact in sorted(facts.values(), key=lambda f: f.granule):
        for s in fact.records:
            for o in fact.records:
                if o is s:
                    continue  # same thread: P3 would prove it anyway
                pairs_left -= 1
                if pairs_left < 0:
                    report.truncated = True
                    break
                if _pair_safe(
                    o, s, fact, has_locks, facts, traces_by_tid, memory_value
                ):
                    continue
                report.safe_sites.discard(s.access.ip)
                race_type = _classify(o, s, has_locks, traces_by_tid)
                key = (s.access.ip, race_type)
                if key not in seen_findings:
                    seen_findings.add(key)
                    report.findings.append(
                        Finding(
                            ip=s.access.ip,
                            race_type=race_type,
                            granule=fact.granule,
                            address=s.access.address,
                            access=s.access.kind.value,
                            other_ip=o.access.ip,
                            other_access=o.access.kind.value,
                            same_block=(
                                o.access.location.block_id
                                == s.access.location.block_id
                            ),
                            same_warp=(
                                o.access.location.warp_id
                                == s.access.location.warp_id
                            ),
                            fix_hint=_FIX_HINTS[race_type],
                        )
                    )
            if report.truncated:
                break
        if report.truncated:
            break
    if report.truncated:
        # Budget exhausted mid-quantification: only a *complete* pass can
        # prove safety, so the blanket answer is "nothing is safe".
        report.safe_sites = set()
    report.findings.sort(key=lambda f: (f.ip, f.race_type))
    return report
