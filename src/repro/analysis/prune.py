"""Pruning hints: the static analyzer's contract with the detector.

:func:`compute_prune_hints` turns one live launch into the set of
instruction sites the analyzer proved race-free.  The detector consults
the set in ``on_memory``: accesses at a safe site take a record-only
path (metadata writeback, no Table 2 checks).  Everything about the
contract is arranged so that enabling it cannot change observable
output:

- **Cycle charges are untouched.**  The detector intercepts *after*
  instrumentation, UVM, contention and ``check_per_access`` charges, so
  the timing breakdown is byte-identical with pruning on or off.
- **Metadata is still written back.**  A pruned access updates sharing
  flags, last-accessor/last-writer words and lock-truth exactly as a
  checked access would (:meth:`~repro.core.engine.IGuardCore.record_memory`),
  so the *next* (unpruned) access checks against the same state.
- **Safety is per-site, launch-wide.**  A site is only in the hint set
  if *every* pairing of its accesses with every other access to the
  same granule is provably ordered or benign — so skipping its checks
  skips only checks that provably pass.
- **Unanalyzable means no hints.**  Extraction failure, mutated
  streams, replayed launches (no kernel source) all return ``None`` and
  the detector runs unpruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.checker import analyze_kernel
from repro.analysis.lint import extract_cached
from repro.instrument.nvbit import LaunchInfo

__all__ = ["PruneHints", "compute_prune_hints"]

#: Memoized pairwise-checker results, keyed by the identity of the
#: (extraction-cached) summary object.  The summary is pinned inside the
#: entry so its ``id`` cannot be recycled while the entry lives; the
#: ``is`` check on lookup makes an id collision after eviction harmless.
#: Each entry records every memory word the analysis probed (the
#: fence-publication chain rule reads spin-flag words) together with the
#: values it saw — the cached report is reused only when re-probing
#: yields the same values, because the checker is a deterministic
#: function of (summary, probed words).
_ANALYSIS_CACHE: Dict[int, Tuple[object, Dict[int, Optional[int]], object]] = {}


def _analyze_cached(summary, memory_value):
    """``analyze_kernel`` with probe-validated memoization per summary."""
    cached = _ANALYSIS_CACHE.get(id(summary))
    if cached is not None and cached[0] is summary:
        _pin, probes, report = cached
        if all(
            memory_value(address) == value
            for address, value in probes.items()
        ):
            return report
    probes: Dict[int, Optional[int]] = {}

    def probing(address: int) -> Optional[int]:
        value = memory_value(address)
        probes[address] = value
        return value

    report = analyze_kernel(summary, memory_value=probing)
    _ANALYSIS_CACHE[id(summary)] = (summary, probes, report)
    return report


@dataclass(frozen=True)
class PruneHints:
    """Statically proven facts about one launch, for the detector."""

    kernel_name: str
    #: Instruction sites whose accesses need no Table 2 checks.
    safe_sites: FrozenSet[str]
    #: Total sites the analyzer saw (for the bench's elision fraction).
    total_sites: int


def compute_prune_hints(launch: LaunchInfo) -> Optional[PruneHints]:
    """Analyze ``launch`` and return its safe-site set, or ``None``.

    ``None`` — rather than an empty set — signals "do not prune at
    all": the kernel source is unavailable (trace replay), a fault
    mutator is installed (the executed stream differs from the source),
    or the analyzer could not extract or fully check the kernel.
    """
    if launch.kernel_fn is None:
        return None
    device = launch.device
    if device is None or getattr(device, "mutator", None) is not None:
        return None
    try:
        summary = extract_cached(
            launch.kernel_fn,
            launch.grid_dim,
            launch.block_dim,
            launch.warp_size,
            launch.args,
        )
        memory = getattr(device, "memory", None)

        def memory_value(address: int) -> Optional[int]:
            if memory is None:
                return None
            try:
                return memory.host_read(address)
            except Exception:
                return None

        report = _analyze_cached(summary, memory_value)
    except Exception:
        return None
    if not report.analyzable or report.truncated:
        return None
    return PruneHints(
        kernel_name=summary.kernel_name,
        safe_sites=frozenset(report.safe_sites),
        total_sites=len(report.sites),
    )
