"""Static race analysis over the kernel DSL.

The dynamic detector (Table 2) pays a metadata check on every monitored
access.  This package implements the hybrid complement the static-analysis
literature suggests (Liew et al., *Provable GPU Data-Races in Static Race
Detection*; Joshi & Muduganti, *GPURepair*):

- :mod:`repro.analysis.extract` symbolically unrolls a kernel generator
  per thread into straight-line access traces annotated with barrier
  intervals and fence counters;
- :mod:`repro.analysis.phases` partitions those traces into
  barrier-interval phases and derives granule-level sharing facts;
- :mod:`repro.analysis.checker` runs the pairwise may-happen-in-parallel
  race check, classifies findings with the paper's race taxonomy and
  emits GPURepair-style fix hints;
- :mod:`repro.analysis.prune` turns proven-safe instruction sites into
  hints the dynamic detector consumes to skip metadata checks
  (``IGuardConfig.static_prune``);
- :mod:`repro.analysis.lint` is the ``iguard-experiments lint`` front end.

The load-bearing invariant, enforced by the fuzzer's soundness gate
(:mod:`repro.faults.fuzz`): a site the analyzer calls *safe* can never be
the current access of a dynamically reported race, under any schedule.
When in doubt the analyzer must answer *may race* — conservatism is
always gate-safe.
"""

from repro.analysis.checker import KernelReport, analyze_kernel
from repro.analysis.extract import ExtractionError, KernelSummary, extract_kernel
from repro.analysis.lint import analyze_workload

__all__ = [
    "ExtractionError",
    "KernelSummary",
    "KernelReport",
    "analyze_kernel",
    "analyze_workload",
    "extract_kernel",
]
