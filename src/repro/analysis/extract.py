"""Symbolic per-thread unrolling of kernel generators.

A kernel here is a Python generator; the only way to know which
instructions a thread executes is to run it.  The extractor drives one
:class:`~repro.gpu.kernel.KernelThread` per simulated thread — the same
wrapper the dynamic scheduler uses, so instruction pointers (``name:line``
strings) match the dynamic race reports exactly — but *without* a
scheduler, memory, or other threads.  Loads and atomics receive values
from a deterministic :class:`ValuePolicy` instead of from memory.

The policy is what makes spin loops terminate: every atomic site returns
an escalating counter (0, 1, 2, ...) per thread.  A CUDA-guidebook CAS
acquire (``while cas(lock,0,1) != 0``) observes 0 and exits immediately;
a flag wait (``while atomic_load(flag) < target``) observes 0, 1, ...
and exits after ``target`` polls.  A site that is polled more than once
consecutively is recorded as a *spin site* — the checker's
fence-publication chain rule builds on the fact that the first observed
value (0, the true initial value of a fresh flag) did **not** release the
spin, so a real execution can only pass it after another thread changed
the flag.

Value-dependent control flow outside that spin shape could desynchronize
the static trace from real executions, which would be *unsound* (a missed
site never enters the may-race set).  Guard: every kernel is extracted
twice under two value policies that disagree on every load; if any
thread's ``(ip, kind)`` footprint differs, the kernel is rejected as
unanalyzable (:class:`ExtractionError`) and the analysis falls back to
"every site may race".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.gpu.events import AccessKind
from repro.gpu.ids import ThreadLocation, locate
from repro.gpu.instructions import (
    Atomic,
    AtomicOp,
    Compute,
    Fence,
    Load,
    Scope,
    Store,
    Syncthreads,
    Syncwarp,
    scope_covers,
)
from repro.gpu.kernel import KernelThread, ThreadCtx

#: Instructions one thread may execute before extraction gives up.  Real
#: kernels in this repo run a few dozen instructions per thread; anything
#: past this budget is an unbounded loop the value policy failed to exit.
STEP_BUDGET = 4096

#: Metadata granularity the analysis mirrors (config.granularity_bytes
#: default): a "granule" here must mean the same thing as in the dynamic
#: detector's metadata table, or pruning hints would misalign.
GRANULARITY_BYTES = 4


class ExtractionError(Exception):
    """The kernel could not be soundly unrolled; treat all sites as racy."""


class ValuePolicy:
    """Deterministic results for loads/atomics during extraction.

    ``load_bias`` only shifts load results; atomics always see the
    escalating per-site counter so spin exits stay identical across the
    two differencing runs.
    """

    def __init__(self, load_bias: int = 0):
        self.load_bias = load_bias
        self._site_counts: Dict[str, int] = {}

    def load_result(self, ip: str) -> int:
        return self.load_bias

    def atomic_result(self, ip: str) -> int:
        count = self._site_counts.get(ip, 0)
        self._site_counts[ip] = count + 1
        return count


@dataclass
class StaticAccess:
    """One executed global-memory access in a thread's unrolled trace."""

    index: int  # program-order position within the thread's trace
    ip: str
    kind: AccessKind
    address: int
    granule: int
    scope: Scope  # effective scope (SYSTEM folded onto DEVICE)
    atomic_op: Optional[AtomicOp]
    value: Optional[int]  # stored/added value, None for loads
    location: ThreadLocation
    blk_interval: int  # syncthreads this thread completed before the access
    warp_interval: int  # syncwarps completed before the access
    dev_fences: int  # device-scope fences this thread executed before it
    blk_fences: int  # block-scope fences executed before it
    spin: bool = False  # part of a detected polling loop

    @property
    def is_write(self) -> bool:
        return self.kind is not AccessKind.LOAD

    @property
    def is_atomic(self) -> bool:
        return self.kind is AccessKind.ATOMIC

    @property
    def value_changing(self) -> bool:
        """Whether the access can change the stored word's value.

        The spin helpers read flags with ``atomicAdd(addr, 0)``; those are
        writes to the detector but can never change what another spin
        observes — the distinction the chain rule's single-writer
        condition needs.
        """
        if self.kind is AccessKind.LOAD:
            return False
        if self.kind is AccessKind.STORE:
            return True
        if self.atomic_op in (AtomicOp.ADD, AtomicOp.SUB) and self.value == 0:
            return False
        return True


@dataclass
class ThreadTrace:
    """Everything one thread did, in program order."""

    location: ThreadLocation
    accesses: List[StaticAccess] = field(default_factory=list)
    total_syncthreads: int = 0
    total_syncwarps: int = 0
    total_dev_fences: int = 0
    total_blk_fences: int = 0
    #: (kind-tag, position) markers for fences, used by the chain rule:
    #: each entry is (position-in-instruction-order, effective Scope).
    fences: List[Tuple[int, Scope]] = field(default_factory=list)
    has_cas: bool = False
    has_exch: bool = False


@dataclass
class KernelSummary:
    """The static unrolling of one kernel launch."""

    kernel_name: str
    grid_dim: int
    block_dim: int
    warp_size: int
    threads: List[ThreadTrace] = field(default_factory=list)
    analyzable: bool = True
    reason: Optional[str] = None

    @property
    def has_lock_ops(self) -> bool:
        """CAS/EXCH anywhere: lock tables fill, R5 (IL) can fire."""
        return any(t.has_cas or t.has_exch for t in self.threads)

    def all_sites(self) -> List[str]:
        """Every instruction site (ip) observed across all threads."""
        seen: Dict[str, None] = {}
        for trace in self.threads:
            for access in trace.accesses:
                seen.setdefault(access.ip, None)
        return list(seen)


def _unroll_thread(
    kernel_fn: Callable,
    ctx: ThreadCtx,
    args: Tuple[Any, ...],
    mutator,
    policy: ValuePolicy,
    step_budget: int,
) -> ThreadTrace:
    """Drive one KernelThread to completion under the value policy."""
    thread = KernelThread(kernel_fn, ctx, args, mutator=mutator)
    trace = ThreadTrace(location=ctx.location)
    blk_i = warp_i = dev_f = blk_f = 0
    steps = 0
    position = 0  # instruction-order position (accesses + fences share it)
    prev_atomic_ip: Optional[str] = None
    spin_ips: Dict[str, None] = {}
    while thread.live:
        steps += 1
        if steps > step_budget:
            raise ExtractionError(
                f"{thread.kernel_name}: thread {ctx.tid} exceeded the "
                f"{step_budget}-instruction extraction budget (unbounded "
                "loop the value policy could not exit)"
            )
        instr = thread.pending
        ip = thread.pending_ip
        result = None
        if isinstance(instr, Load):
            trace.accesses.append(
                StaticAccess(
                    index=position,
                    ip=ip,
                    kind=AccessKind.LOAD,
                    address=instr.address,
                    granule=instr.address // GRANULARITY_BYTES,
                    scope=Scope.DEVICE,
                    atomic_op=None,
                    value=None,
                    location=ctx.location,
                    blk_interval=blk_i,
                    warp_interval=warp_i,
                    dev_fences=dev_f,
                    blk_fences=blk_f,
                )
            )
            result = policy.load_result(ip)
            prev_atomic_ip = None
        elif isinstance(instr, Store):
            trace.accesses.append(
                StaticAccess(
                    index=position,
                    ip=ip,
                    kind=AccessKind.STORE,
                    address=instr.address,
                    granule=instr.address // GRANULARITY_BYTES,
                    scope=Scope.DEVICE,
                    atomic_op=None,
                    value=instr.value if isinstance(instr.value, int) else None,
                    location=ctx.location,
                    blk_interval=blk_i,
                    warp_interval=warp_i,
                    dev_fences=dev_f,
                    blk_fences=blk_f,
                )
            )
            prev_atomic_ip = None
        elif isinstance(instr, Atomic):
            if instr.op is AtomicOp.CAS:
                trace.has_cas = True
            if instr.op is AtomicOp.EXCH:
                trace.has_exch = True
            trace.accesses.append(
                StaticAccess(
                    index=position,
                    ip=ip,
                    kind=AccessKind.ATOMIC,
                    address=instr.address,
                    granule=instr.address // GRANULARITY_BYTES,
                    scope=instr.scope.effective,
                    atomic_op=instr.op,
                    value=instr.value if isinstance(instr.value, int) else None,
                    location=ctx.location,
                    blk_interval=blk_i,
                    warp_interval=warp_i,
                    dev_fences=dev_f,
                    blk_fences=blk_f,
                )
            )
            if prev_atomic_ip is ip or prev_atomic_ip == ip:
                spin_ips[ip] = None
            prev_atomic_ip = ip
            result = policy.atomic_result(ip)
        elif isinstance(instr, Syncthreads):
            blk_i += 1
            trace.total_syncthreads += 1
            prev_atomic_ip = None
        elif isinstance(instr, Syncwarp):
            warp_i += 1
            trace.total_syncwarps += 1
            prev_atomic_ip = None
        elif isinstance(instr, Fence):
            if scope_covers(instr.scope, Scope.DEVICE):
                dev_f += 1
                trace.total_dev_fences += 1
            else:
                blk_f += 1
                trace.total_blk_fences += 1
            trace.fences.append((position, instr.scope.effective))
            prev_atomic_ip = None
        elif isinstance(instr, Compute):
            prev_atomic_ip = None
        position += 1
        thread.complete(result)
    for access in trace.accesses:
        if access.ip in spin_ips:
            access.spin = True
    return trace


def _footprint(trace: ThreadTrace) -> Tuple[Tuple[str, AccessKind], ...]:
    return tuple((a.ip, a.kind) for a in trace.accesses)


def extract_kernel(
    kernel_fn: Callable,
    grid_dim: int,
    block_dim: int,
    warp_size: int,
    args: Tuple[Any, ...] = (),
    mutator_factory: Optional[Callable[[], Any]] = None,
    step_budget: int = STEP_BUDGET,
) -> KernelSummary:
    """Unroll every thread of a launch into a :class:`KernelSummary`.

    ``mutator_factory`` builds one fresh fault-injection mutator per
    extraction pass (never reuse the device's live mutator: extraction
    would pollute its ``applied`` counter and stashed-instruction state).
    Raises :class:`ExtractionError` when the kernel cannot be soundly
    unrolled; callers usually wrap this via :func:`extract_or_unanalyzable`.
    """
    summary = KernelSummary(
        kernel_name=getattr(kernel_fn, "__name__", "kernel"),
        grid_dim=grid_dim,
        block_dim=block_dim,
        warp_size=warp_size,
    )
    num_threads = grid_dim * block_dim
    # Pass 1 (load bias 0) produces the traces; pass 2 (bias 1) only
    # checks that no thread's footprint depends on loaded values.
    for load_bias in (0, 1):
        policy_traces: List[ThreadTrace] = []
        mutator = mutator_factory() if mutator_factory is not None else None
        for tid in range(num_threads):
            loc = locate(tid, block_dim, warp_size)
            ctx = ThreadCtx(loc, block_dim, grid_dim, warp_size)
            policy_traces.append(
                _unroll_thread(
                    kernel_fn,
                    ctx,
                    args,
                    mutator,
                    ValuePolicy(load_bias=load_bias),
                    step_budget,
                )
            )
        if load_bias == 0:
            summary.threads = policy_traces
        else:
            for base, probe in zip(summary.threads, policy_traces):
                if _footprint(base) != _footprint(probe):
                    raise ExtractionError(
                        f"{summary.kernel_name}: thread "
                        f"{base.location.global_tid} has value-dependent "
                        "control flow (footprint differs across load "
                        "value policies)"
                    )
    return summary


def extract_or_unanalyzable(
    kernel_fn: Callable,
    grid_dim: int,
    block_dim: int,
    warp_size: int,
    args: Tuple[Any, ...] = (),
    mutator_factory: Optional[Callable[[], Any]] = None,
) -> KernelSummary:
    """Like :func:`extract_kernel` but degrades to an unanalyzable summary.

    Any failure — extraction budget, value-dependent control flow, or an
    exception raised by the kernel body itself under the synthetic value
    policy — yields ``analyzable=False``, which downstream consumers must
    treat as "every site may race, nothing can be pruned".
    """
    try:
        return extract_kernel(
            kernel_fn, grid_dim, block_dim, warp_size, args, mutator_factory
        )
    except Exception as exc:  # noqa: BLE001 - any failure means "unknown"
        summary = KernelSummary(
            kernel_name=getattr(kernel_fn, "__name__", "kernel"),
            grid_dim=grid_dim,
            block_dim=block_dim,
            warp_size=warp_size,
            analyzable=False,
            reason=f"{type(exc).__name__}: {exc}",
        )
        return summary
