"""Cooperative-group objects and their synchronization generators.

Every ``sync`` method is a generator yielding DSL instructions, so kernels
compose them with ``yield from``.  The grid barrier follows the counter
pattern of the paper's Figure 10: a per-block leader fences, atomically
bumps an arrival counter, and spins until all blocks arrive, bracketed by
threadblock barriers.  The *correct* variant adds the device fence that
every (non-leader) thread needs so its writes are ordered across the
barrier — the fence whose absence iGUARD flagged in NVIDIA's own library.

The barrier is generation-counted, so it can be reused any number of times
(each thread tracks its own generation, which stays consistent because all
threads pass through every sync).
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_load,
    fence_device,
    syncthreads,
    syncwarp,
)
from repro.gpu.kernel import ThreadCtx
from repro.gpu.memory import GlobalArray


class ThreadBlock:
    """``cg::thread_block``: all threads of the calling threadblock."""

    def __init__(self, ctx: ThreadCtx):
        self.ctx = ctx

    @property
    def size(self) -> int:
        return self.ctx.block_dim

    def thread_rank(self) -> int:
        """The calling thread's index within the block."""
        return self.ctx.tid_in_block

    def sync(self):
        """``cg::sync(block)`` — a threadblock barrier."""
        yield syncthreads()


class CoalescedGroup:
    """``cg::coalesced_threads`` / a warp-sized tile of a block.

    ``sync`` maps to a warp barrier, which is how CUDA implements tile
    synchronization for tiles within one warp.
    """

    def __init__(self, ctx: ThreadCtx, size: Optional[int] = None):
        self.ctx = ctx
        self.size = size if size is not None else ctx.warp_size

    def thread_rank(self) -> int:
        return self.ctx.lane % self.size

    def sync(self):
        """``tile.sync()`` — a warp-level barrier."""
        yield syncwarp()


def this_thread_block(ctx: ThreadCtx) -> ThreadBlock:
    """``cg::this_thread_block()``."""
    return ThreadBlock(ctx)


def tiled_partition(block: ThreadBlock, size: int) -> CoalescedGroup:
    """``cg::tiled_partition<size>(block)`` for warp-sized tiles."""
    return CoalescedGroup(block.ctx, size)


class GridBarrier:
    """Host-side state for grid-wide synchronization.

    The CUDA runtime allocates this behind ``cudaLaunchCooperativeKernel``;
    here the host allocates it explicitly and passes it to the kernel.
    Layout: ``state[0]`` = arrival counter, ``state[1]`` = generation.
    """

    NUM_WORDS = 2

    def __init__(self, state: GlobalArray):
        self.state = state

    @classmethod
    def alloc(cls, device, name: str = "grid_barrier") -> "GridBarrier":
        """Allocate barrier state on a device."""
        return cls(device.alloc(name, cls.NUM_WORDS, init=0))


class GridGroup:
    """``cg::grid_group``: every thread of the grid."""

    def __init__(self, ctx: ThreadCtx, barrier: GridBarrier):
        self.ctx = ctx
        self.barrier = barrier
        self._generation = 0

    @property
    def size(self) -> int:
        return self.ctx.num_threads

    def thread_rank(self) -> int:
        """The calling thread's index within the grid."""
        return self.ctx.tid

    # ------------------------------------------------------------------

    def sync(self):
        """``grid.sync()`` — correct grid-wide barrier.

        Every thread executes a device-scope fence before arriving, so all
        pre-barrier writes are ordered with all post-barrier reads.
        """
        yield from self._sync(all_threads_fence=True)

    def sync_racy(self):
        """The buggy grid sync of Figure 10.

        Only the block leader fences (to publish the arrival counter), so
        writes by non-leader threads are *not* guaranteed visible after
        the barrier: a device-scope (DR) race on application data.
        """
        yield from self._sync(all_threads_fence=False)

    def _sync(self, all_threads_fence: bool):
        ctx = self.ctx
        state = self.barrier.state
        self._generation += 1
        target = self._generation
        if all_threads_fence:
            # The fence Figure 10 comments out: every thread publishes its
            # writes before the barrier.
            yield fence_device()
        yield syncthreads()
        if ctx.tid_in_block == 0:
            yield fence_device()
            arrived = (yield atomic_add(state, 0, 1)) + 1
            if arrived == ctx.grid_dim * target:
                # Last block to arrive opens the next generation.
                yield atomic_add(state, 1, 1)
            else:
                while (yield atomic_load(state, 1)) < target:
                    pass
            yield fence_device()
        yield syncthreads()


def this_grid(ctx: ThreadCtx, barrier: GridBarrier) -> GridGroup:
    """``cg::this_grid()`` (barrier state passed in by the launcher)."""
    return GridGroup(ctx, barrier)
