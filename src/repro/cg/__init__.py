"""Cooperative Groups: the software synchronization layer (section 2.1).

NVIDIA's Cooperative Groups (CG) is *not* hardware: it is a library built
from atomics, threadfences, and barriers that lets programmers synchronize
an (almost) arbitrary set of threads — a subset of a warp, a threadblock,
or a whole grid.  Because it is built from the primitives iGUARD already
instruments, iGUARD detects CG misuse with no CG-specific checks.

This package mirrors the CUDA CG API over the kernel DSL.  Group ``sync``
operations are generators, used from kernels with ``yield from``::

    block = cg.this_thread_block(ctx)
    grid = cg.this_grid(ctx, barrier)
    ...
    yield from block.sync()
    yield from grid.sync()

Two grid-synchronization implementations are provided:

- :class:`GridBarrier` + ``grid.sync()`` — the *correct* one (every thread
  fences before arriving);
- ``grid.sync_racy()`` — the buggy pattern of the paper's Figure 10, where
  only the block leader fences, so non-leader writes are not ordered
  across the barrier.  iGUARD reported exactly this bug in NVIDIA's CG
  library (acknowledged; tracked internally by NVIDIA).
"""

from repro.cg.groups import (
    CoalescedGroup,
    GridBarrier,
    GridGroup,
    ThreadBlock,
    this_grid,
    this_thread_block,
    tiled_partition,
)

__all__ = [
    "CoalescedGroup",
    "GridBarrier",
    "GridGroup",
    "ThreadBlock",
    "this_grid",
    "this_thread_block",
    "tiled_partition",
]
