"""Configuration knobs for the iGUARD detector.

Defaults follow the paper: 4-byte detection granularity, 16 bytes of memory
metadata per granule, ~2 MB of synchronization metadata, a 1 MB race-report
buffer, three lock-table entries per warp/thread, and both section 6.5
contention optimizations enabled.  The ablation experiments (Figure 12)
flip ``coalescing``/``dynamic_backoff``; the ScoRD baseline mode disables
``its_support`` and ``lockset``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError

MiB = 1024 * 1024


@dataclass(frozen=True)
class IGuardConfig:
    """All detector knobs in one immutable object."""

    #: Detection granularity: bytes of data covered by one metadata entry.
    granularity_bytes: int = 4
    #: Bytes of metadata per granule (Figure 4: a 16-byte entry).
    metadata_entry_bytes: int = 16
    #: Size of the race-report buffer shipped to the CPU when full.
    race_buffer_bytes: int = 1 * MiB
    #: Bytes of one race record in the buffer.
    race_record_bytes: int = 64
    #: Lock-table entries per warp (and per thread); Figure 7 shows 3.
    lock_table_entries: int = 3
    #: Opportunistic coalescing of same-warp metadata accesses (section 6.5).
    coalescing: bool = True
    #: Dynamically adjusted exponential backoff on metadata locks (6.5).
    dynamic_backoff: bool = True
    #: Detect missing-syncwarp races under ITS (unique to iGUARD).
    its_support: bool = True
    #: Use the lockset technique for lock-protected accesses (R5).
    lockset: bool = True
    #: Allocate metadata through (simulated) UVM instead of pinning it.
    use_uvm: bool = True
    #: Pre-fault metadata into free device memory at setup (section 6.1).
    prefault: bool = True
    #: Treat every atomicCAS as a potential lock acquire even if it failed.
    #: The paper infers locks from the instruction pair without consulting
    #: the CAS outcome; set False to require a successful CAS.
    infer_lock_on_failed_cas: bool = True
    #: Reset memory metadata at each kernel launch: the implicit barrier at
    #: kernel completion orders everything across kernels (section 2.1).
    reset_metadata_per_kernel: bool = True
    #: Same-epoch check elision (FastTrack-style fast path): when a thread
    #: re-accesses a granule with unchanged metadata words, sync epoch,
    #: access kind and scope, the Table 2 re-check is skipped — the paper's
    #: ``check_per_access`` cycles are still charged, so races, race types
    #: and cycle breakdowns are bit-identical with the knob on or off;
    #: only the reproduction's own wall-clock time changes.
    #:
    #: ``True`` forces elision on, ``False`` off.  ``"auto"`` (the
    #: default) samples the observed elision hit rate over the first
    #: ``fast_path_warmup`` checked accesses of each kernel and turns the
    #: signature bookkeeping off for the rest of the launch — and for
    #: every later launch of the same kernel — when the rate is below
    #: ``fast_path_break_even``.  Detection output is identical in all
    #: three modes; "auto" just refuses to pay for bookkeeping that
    #: cannot pay for itself.
    fast_path: "bool | str" = "auto"
    #: Checked accesses sampled per kernel before "auto" decides.  Kept
    #: small so even short kernels (a few hundred checks) reach a
    #: verdict instead of paying bookkeeping for their whole launch.
    fast_path_warmup: int = 128
    #: Minimum warm-up elision hit rate for "auto" to keep the fast path:
    #: one elision saves roughly one full Table 2 check but every miss
    #: costs a signature build + dict probe (~5% of a check), so the
    #: break-even sits near elided/checked = 0.05.
    fast_path_break_even: float = 0.05
    #: Cap on materialized metadata entries (None = unbounded, the
    #: paper's UVM-backed on-demand table).  A finite cap models memory
    #: pressure: the table evicts its oldest entry to admit a new granule.
    #: Eviction *resets* the granule — the next access re-runs the
    #: first-access path — so pressure can only cost recall (exactly like
    #: the paper's finite lock tables), never report a false race.
    metadata_max_entries: Optional[int] = None
    #: How many previous accessors to track per granule.  The paper's
    #: default (and pragmatic choice) is 1 — only the last accessor and
    #: last writer fit in the 16-byte entry.  Section 6.7's ablation
    #: tracked the last 2, 4 and 8 accessors and "did not find any new
    #: races for any of the programs"; setting this above 1 reproduces
    #: that experiment (metadata overhead grows linearly with it).
    accessor_history: int = 1
    #: Consume the static analyzer's pruning hints: accesses at
    #: instruction sites :mod:`repro.analysis` proved race-free take a
    #: record-only path (metadata writeback, no Table 2 checks).  Race
    #: reports and every simulated cycle charge are byte-identical with
    #: the flag on; only wall-clock time changes.  Live launches only —
    #: trace replay carries no kernel source to analyze — and only at the
    #: paper's default ``accessor_history`` of 1: the history ablation
    #: re-checks each access against *older* accessor views, whose flag
    #: state the pairwise static argument does not model.
    static_prune: bool = False

    def __post_init__(self) -> None:
        if self.granularity_bytes not in (4, 8, 16, 32):
            raise ConfigError("granularity_bytes must be 4, 8, 16, or 32")
        if self.lock_table_entries < 1:
            raise ConfigError("lock_table_entries must be >= 1")
        if self.race_buffer_bytes < self.race_record_bytes:
            raise ConfigError("race buffer smaller than one record")
        if self.accessor_history < 1:
            raise ConfigError("accessor_history must be >= 1")
        if self.fast_path not in (True, False, "auto"):
            raise ConfigError('fast_path must be True, False, or "auto"')
        if self.fast_path_warmup < 1:
            raise ConfigError("fast_path_warmup must be >= 1")
        if not 0.0 <= self.fast_path_break_even <= 1.0:
            raise ConfigError("fast_path_break_even must be in [0, 1]")
        if self.metadata_max_entries is not None and self.metadata_max_entries < 1:
            raise ConfigError("metadata_max_entries must be >= 1 (or None)")

    @property
    def race_buffer_capacity(self) -> int:
        """How many records fit in the buffer before a flush to the CPU."""
        return self.race_buffer_bytes // self.race_record_bytes

    def without_optimizations(self) -> "IGuardConfig":
        """The Figure 12 baseline: no coalescing, no dynamic backoff."""
        return replace(self, coalescing=False, dynamic_backoff=False)

    def scord_mode(self) -> "IGuardConfig":
        """ScoRD's detection feature set: scopes yes, ITS/lockset no."""
        return replace(self, its_support=False, lockset=False)

    def with_history(self, depth: int) -> "IGuardConfig":
        """The section 6.7 ablation: track the last ``depth`` accessors."""
        return replace(self, accessor_history=depth)


DEFAULT_CONFIG = IGuardConfig()
