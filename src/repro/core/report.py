"""Race records, classification, and the report buffer.

iGUARD reports "identities of instructions, the address of the data
participating in a race, and the cause"; records accumulate in a 1 MB
buffer that is shipped to the CPU when full or at program end (section 5).
Races are classified by the first matching Table 2 condition:

========  ==================================  =========
R check   meaning                             Table 4 tag
========  ==================================  =========
R1        insufficient atomic scope           AS
R2        intra-warp race under ITS           ITS
R3        intra-threadblock race              BR
R4        inter-threadblock (device) race     DR
R5        improper locking (lockset)          IL
========  ==================================  =========

Races caused by misuse of Cooperative Groups have no dedicated check — CG
is built from the primitives, so they surface as one of the above (the
paper's Table 4 lists them as "CG (DR)").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.obs.metrics import HOT


class RaceType(enum.Enum):
    """Race classification, tagged as in Table 4."""

    IMPROPER_LOCKING = "IL"
    ATOMIC_SCOPE = "AS"
    ITS = "ITS"
    INTRA_BLOCK = "BR"
    INTER_BLOCK = "DR"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class RaceRecord:
    """One detected race occurrence."""

    race_type: RaceType
    kernel: str
    ip: str
    access: str  # "load" / "store" / "atomic"
    address: int
    location: str  # human-readable "array[index]"
    warp_id: int
    lane: int
    block_id: int
    prev_warp_id: int
    prev_lane: int
    #: Provenance tags for shard merging: the 0-based kernel-launch index,
    #: the scheduler batch that produced the access, and the metadata
    #: granule it was keyed by.  -1 on records from paths that predate the
    #: sharded engine (the tags never affect site dedup or reporting).
    launch_index: int = -1
    batch: int = -1
    granule: int = -1

    def serial_sort_key(self):
        """The total order race records occur in under serial detection.

        Scheduler batches are numbered by one global per-launch counter and
        each batch executes one warp's active lanes in lane order, so
        ``(launch, batch, warp, lane)`` orders dynamic *events*; the granule
        and site break the (rare) tie of one lane touching several granules
        at distinct program sites within a batch.  A record never carries a
        thread's insertion position, so every component is an explicit
        field: ``sorted(..., key=serial_sort_key)`` on a shuffled record
        list reproduces the serial order exactly, with the *stable* sort
        preserving shard-local emission order for records from one event
        (e.g. accessor-history checks reporting the same site repeatedly).
        """
        return (
            self.launch_index,
            self.batch,
            self.warp_id,
            self.lane,
            self.granule,
            self.ip,
        )

    def describe(self) -> str:
        """One-line report in the spirit of the tool's CPU-side output."""
        return (
            f"[{self.race_type}] {self.access} at {self.ip} on "
            f"{self.location} (0x{self.address:x}) by thread "
            f"w{self.warp_id}.t{self.lane} (block {self.block_id}); "
            f"previous access by w{self.prev_warp_id}.t{self.prev_lane}"
        )


@dataclass
class RaceBuffer:
    """The fixed-size device-side buffer of race records.

    When the buffer fills, its contents are "sent to the CPU" — drained
    into :attr:`reported` — exactly as the real tool does without stopping
    execution.  ``flushes`` counts those CPU round-trips.

    ``max_records`` optionally bounds the *total* retained records
    (pending plus reported), modeling a host side that stops accepting
    flushes — e.g. a pathological workload producing millions of dynamic
    occurrences.  Overflowing pushes are counted in :attr:`dropped`
    instead of silently discarded; ``None`` (the default) keeps the
    historical unbounded behaviour.
    """

    capacity: int
    max_records: Optional[int] = None
    pending: List[RaceRecord] = field(default_factory=list)
    reported: List[RaceRecord] = field(default_factory=list)
    flushes: int = 0
    dropped: int = 0

    def push(self, record: RaceRecord) -> bool:
        """Append a record, flushing to the host if the buffer is full.

        Returns False (and counts the record as dropped) when the
        ``max_records`` cap is already reached.
        """
        if (
            self.max_records is not None
            and len(self.pending) + len(self.reported) >= self.max_records
        ):
            self.dropped += 1
            if HOT.enabled:
                HOT.races_dropped.inc()
            return False
        self.pending.append(record)
        if len(self.pending) >= self.capacity:
            self.flush()
        return True

    def flush(self) -> None:
        """Ship pending records to the host side."""
        if self.pending:
            self.reported.extend(self.pending)
            self.pending.clear()
            self.flushes += 1
            if HOT.enabled:
                HOT.race_flushes.inc()

    def all_records(self) -> List[RaceRecord]:
        """Reported plus still-buffered records."""
        return self.reported + self.pending


class RaceLog:
    """Host-side aggregation: dedup by racy program site.

    The paper counts *static* races ("57 races in 21 GPU programs"): one
    per racy instruction site, however many dynamic occurrences there are.
    The dedup key is the reporting instruction's source location.
    """

    def __init__(self, capacity: int, max_records: Optional[int] = None):
        self.buffer = RaceBuffer(capacity=capacity, max_records=max_records)
        self._seen_sites: Set[str] = set()
        self._site_types: dict = {}

    def report(self, record: RaceRecord) -> bool:
        """Add a dynamic race; returns True if the *site* is new.

        Site dedup is deliberately independent of whether the dynamic
        record fit in the buffer: a record dropped at the ``max_records``
        cap still registers its site and race type, so the paper's static
        race count (and the per-site type) never depends on buffer sizing.
        """
        self.buffer.push(record)
        if record.ip in self._seen_sites:
            return False
        self._seen_sites.add(record.ip)
        self._site_types[record.ip] = record.race_type
        return True

    @property
    def dropped(self) -> int:
        """Dynamic records dropped at the buffer's ``max_records`` cap."""
        return self.buffer.dropped

    @property
    def num_sites(self) -> int:
        """Number of unique racy sites (the paper's race count)."""
        return len(self._seen_sites)

    def sites(self) -> List[Tuple[str, RaceType]]:
        """Sorted (ip, type) pairs of unique racy sites."""
        return sorted(self._site_types.items())

    def types(self) -> Set[RaceType]:
        """The set of race types observed."""
        return set(self._site_types.values())

    def records(self) -> List[RaceRecord]:
        """Every dynamic race record seen so far."""
        return self.buffer.all_records()

    def flush(self) -> None:
        """Force the device buffer to the host (kernel end / timeout)."""
        self.buffer.flush()


def merge_race_records(
    record_lists, capacity: int, max_records: Optional[int] = None
) -> RaceLog:
    """Deterministically merge shard-local race records into one log.

    Re-sorts the concatenated records by :meth:`RaceRecord.serial_sort_key`
    — the exact order serial detection would have emitted them — then
    replays them through a fresh :class:`RaceLog`.  Replaying (rather than
    unioning site sets) matters because the log's per-site race type is
    first-record-wins: only the serial-order first occurrence may define a
    site's type, whichever shard happened to emit it.
    """
    merged = RaceLog(capacity=capacity, max_records=max_records)
    records: List[RaceRecord] = []
    for chunk in record_lists:
        records.extend(chunk)
    records.sort(key=RaceRecord.serial_sort_key)
    for record in records:
        merged.report(record)
    merged.flush()
    return merged
