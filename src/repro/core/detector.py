"""The iGUARD detector: an instrumentation tool running "on the GPU".

This is the paper's contribution assembled: on every load/store/atomic the
detector reads the access's metadata entry, updates the sharing flags, runs
the two-tier Table 2 checks, and writes the access back into the metadata;
on every synchronization operation it updates the live counters and the
lock tables.  Everything happens inline with (simulated) kernel execution
— there is no CPU-side pass — so detection work is charged as *parallel*
cycles, and only genuine metadata-lock contention is serialized.

Performance features from the paper, all modeled:

- NVBit-style one-time binary analysis cost per kernel (Figure 13 "NVBit");
- metadata pre-faulting through UVM (Figure 14, "Setup" in Figure 13);
- opportunistic coalescing of same-warp, same-address loads/atomics —
  one representative thread checks on behalf of the converged group;
- dynamic exponential backoff on the per-entry metadata locks.

One feature belongs to the *reproduction* rather than the paper: the
same-epoch check-elision fast path (``IGuardConfig.fast_path``).  When a
thread re-accesses a granule and nothing relevant has changed — same
access kind, scope and convergence mask, identical metadata words, and no
intervening synchronization or lock-table mutation (tracked by a single
``SyncMetadata.epoch`` counter) — the Table 2 re-check is provably a
replay of the previous one, so the detector reuses the recorded outcome
and the recorded post-writeback metadata words.  All simulated cycles
(UVM faults, contention stalls, ``check_per_access``) are still charged
before the elision decision, and race outcomes are never cached (race
records depend on the access's instruction pointer), so races, race types
and cycle breakdowns are bit-identical with the knob on or off; only the
reproduction's wall-clock time changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.checks import CurrentAccess, preliminary_checks, race_checks, select_md
from repro.core.metadata import AccessorView
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.core.contention import ContentionModel, ContentionParams
from repro.core.metadata import MetadataTable
from repro.core.report import RaceLog, RaceRecord
from repro.core.syncstate import SyncMetadata
from repro.core.uvm import ManagedMetadataSpace, UVMParams
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent, SyncKind
from repro.gpu.instructions import AtomicOp, Scope
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category
from repro.obs.metrics import HOT


@dataclass(frozen=True)
class DetectorCosts:
    """Cycle constants for the detector's own runtime (calibrated)."""

    #: Host-side costs (binary analysis, metadata setup, kernel loading)
    #: are constant per *application* on real hardware, where kernels run
    #: ~10^3x longer than this simulation's.  To keep their share of
    #: total runtime where Figure 13 puts it, they are charged as a
    #: fraction of each launch's native duration plus a small constant.
    nvbit_fixed: float = 20.0
    nvbit_fraction: float = 0.9
    nvbit_per_instruction: float = 0.1
    setup_fixed: float = 8.0
    setup_fraction: float = 0.25
    misc_fixed: float = 5.0
    misc_fraction: float = 0.1
    #: Trampoline cost of one injected instrumentation call.
    instrument_per_event: float = 4.0
    #: Metadata read + two-tier checks + writeback for one access.
    check_per_access: float = 14.0
    #: Handling one synchronization operation.
    sync_per_event: float = 6.0
    #: Cost of a coalesced (skipped) access: the warp intrinsics used to
    #: agree on a representative thread.
    coalesced_skip: float = 1.0


@dataclass
class LaunchStats:
    """Per-launch detector statistics, for tests and experiments."""

    kernel: str = ""
    accesses_checked: int = 0
    accesses_coalesced: int = 0
    #: Checked accesses whose Table 2 outcome was replayed from the
    #: same-epoch elision cache instead of re-derived (a subset of
    #: ``accesses_checked``; cycle charges are identical either way).
    accesses_elided: int = 0
    preliminary_pass: Dict[str, int] = field(default_factory=dict)
    races_reported: int = 0
    contention_cycles: float = 0.0
    uvm_faults: int = 0
    uvm_prefaulted_pages: int = 0
    metadata_entries: int = 0


class IGuard(Tool):
    """iGUARD attached to a simulated device.

    Typical use::

        device = Device()
        detector = device.add_tool(IGuard())
        ... allocate, launch kernels ...
        for race in detector.races.sites():
            print(race)
    """

    name = "iGUARD"

    def __init__(
        self,
        config: IGuardConfig = DEFAULT_CONFIG,
        costs: Optional[DetectorCosts] = None,
        contention_params: Optional[ContentionParams] = None,
        uvm_params: Optional[UVMParams] = None,
    ):
        # Per-instance factories, not def-time defaults: a default built
        # at function definition would be one shared instance across every
        # detector ever constructed.
        self.config = config
        self.costs = costs if costs is not None else DetectorCosts()
        self.contention_params = (
            contention_params
            if contention_params is not None
            else ContentionParams()
        )
        self.uvm_params = uvm_params if uvm_params is not None else UVMParams()
        self.device = None
        self.races = RaceLog(capacity=config.race_buffer_capacity)
        self.table = MetadataTable(
            config.granularity_bytes,
            config.metadata_entry_bytes,
            max_entries=config.metadata_max_entries,
        )
        self.sync = SyncMetadata(config.lock_table_entries)
        self.stats: List[LaunchStats] = []
        self._launch: Optional[LaunchInfo] = None
        self._contention: Optional[ContentionModel] = None
        self._uvm: Optional[ManagedMetadataSpace] = None
        self._current: Optional[LaunchStats] = None
        self._coalesce_key: Optional[Tuple[int, int]] = None
        #: Section 6.7 ablation state: per-granule history of the last N
        #: accessors (beyond the single packed metadata entry).
        self._history: Dict[int, Deque] = {}
        #: Same-epoch elision cache: granule -> (signature, preliminary
        #: label, post-writeback accessor word, post-writeback writer
        #: word).  Disabled under the accessor-history ablation, whose
        #: extra per-access history checks charge extra cycles that a
        #: replayed outcome could not reproduce.
        self._elide: Dict[int, Tuple] = {}
        self._fast_path = config.fast_path and config.accessor_history == 1
        #: Optional forensic probe (repro.obs.forensics.ForensicProbe).
        #: Hooks fire only when set: normal runs pay one ``is not None``
        #: test per event.
        self.probe = None
        #: Ground-truth lock hashes of the last writer per granule, kept
        #: only while metrics are enabled, to count 16-bit Bloom filter
        #: false positives (filters intersect, true lock sets disjoint).
        self._writer_lock_truth: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    # Tool lifecycle
    # ------------------------------------------------------------------

    def attach(self, device) -> None:
        self.device = device

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        self._launch = launch
        self._coalesce_key = None
        self._current = LaunchStats(kernel=launch.kernel_name)
        self.stats.append(self._current)

        # Fresh synchronization metadata per kernel: counters describe the
        # *running* kernel's threads.  Memory metadata is also reset — the
        # implicit barrier at kernel completion orders everything, so stale
        # entries could only cause false positives.
        self.sync = SyncMetadata(self.config.lock_table_entries)
        self._elide.clear()
        self._writer_lock_truth.clear()
        if self.config.reset_metadata_per_kernel:
            self.table.clear()
            self._history.clear()

        # NVBit binary analysis and injection (the duration-proportional
        # share is charged at launch end, once native time is known).
        launch.timing.charge(
            Category.NVBIT,
            self.costs.nvbit_fixed
            + self.costs.nvbit_per_instruction * launch.static_instruction_count,
            serial=True,
        )

        # Metadata allocation: managed (UVM) or nothing to pre-fault.
        memory = launch.device.memory
        app_bytes = memory.bytes_allocated
        metadata_needed = app_bytes * 4  # 16 bytes per 4-byte granule
        self._uvm = ManagedMetadataSpace(
            metadata_virtual_bytes=metadata_needed,
            device_free_bytes=max(0, memory.capacity_bytes - app_bytes),
            prefault=self.config.prefault and self.config.use_uvm,
            params=self.uvm_params,
        )
        self._current.uvm_prefaulted_pages = self._uvm.prefaulted_pages
        launch.timing.charge(
            Category.SETUP,
            self.costs.setup_fixed + self._uvm.setup_cycles,
            serial=True,
        )
        launch.timing.charge(Category.MISC, self.costs.misc_fixed, serial=True)

        # Contention accounting for this launch.
        concurrent_warps = max(
            1,
            min(
                launch.num_warps,
                launch.device.config.max_concurrent_lanes // launch.warp_size,
            ),
        )
        self._contention = ContentionModel(
            num_threads=launch.num_threads,
            concurrent_warps=concurrent_warps,
            dynamic_backoff=self.config.dynamic_backoff,
            params=self.contention_params,
        )

    def on_launch_end(self, launch: LaunchInfo) -> None:
        self._finish(launch)

    def on_timeout(self, launch: LaunchInfo) -> None:
        # The paper's timeout path: flush detected races to the CPU, then
        # terminate the kernel.
        self._finish(launch)

    def _finish(self, launch: LaunchInfo) -> None:
        self.races.flush()
        # Duration-proportional host-side shares (see DetectorCosts).
        native = launch.timing.native_time
        launch.timing.charge(
            Category.NVBIT, self.costs.nvbit_fraction * native, serial=True
        )
        launch.timing.charge(
            Category.SETUP, self.costs.setup_fraction * native, serial=True
        )
        launch.timing.charge(
            Category.MISC, self.costs.misc_fraction * native, serial=True
        )
        if self._current is not None:
            self._current.contention_cycles = (
                self._contention.serialized_cycles if self._contention else 0.0
            )
            self._current.uvm_faults = self._uvm.faults if self._uvm else 0
            self._current.metadata_entries = len(self.table)

    # ------------------------------------------------------------------
    # Synchronization operations
    # ------------------------------------------------------------------

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )
        launch.timing.charge(Category.DETECTION, self.costs.sync_per_event)
        where = event.where
        if event.kind is SyncKind.SYNCTHREADS:
            self.sync.on_syncthreads(where.block_id)
        elif event.kind is SyncKind.SYNCWARP:
            self.sync.on_syncwarp(where.warp_id)
        elif event.kind is SyncKind.FENCE:
            thread = where.thread_key
            self.sync.on_fence(thread, event.scope)
            # A fence completes pending lock acquires (activateLocks).
            table = self.sync.lock_table_for(where.warp_id, thread)
            activated = table.activate(event.scope)
            if activated:
                if HOT.enabled:
                    HOT.lock_activations.inc(activated)
                if self.probe is not None:
                    self.probe.on_lock(
                        "fence-activate", event,
                        f"{activated} lock(s), {event.scope.name.lower()} fence",
                    )
        if self.probe is not None:
            self.probe.on_sync(event)

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )

        # Lock inference precedes race checking (Figure 6's orange boxes).
        if event.kind is AccessKind.ATOMIC:
            self._infer_locks(event)

        # Opportunistic coalescing: active threads of one warp loading (or
        # atomically updating) the same location cannot race with each
        # other, so a single representative performs the metadata access
        # on behalf of the converged group (section 6.5).  The key rides
        # the same granule index that keys the elision cache: the real
        # implementation's warp match runs on the *metadata* address, so
        # converged lanes touching different bytes of one granule coalesce
        # into a single check of that granule's entry.
        granule = self.table.granule_of(event.address)
        if self.config.coalescing and event.kind in (
            AccessKind.LOAD,
            AccessKind.ATOMIC,
        ):
            key = (event.batch, granule)
            if key == self._coalesce_key:
                self._current.accesses_coalesced += 1
                if HOT.enabled:
                    HOT.detector_coalesced.inc()
                launch.timing.charge(
                    Category.DETECTION, self.costs.coalesced_skip
                )
                return
            self._coalesce_key = key
        else:
            self._coalesce_key = None

        self._check_and_update(event, granule, launch)

    # -- lock inference -----------------------------------------------------

    def _infer_locks(self, event: MemoryEvent) -> None:
        where = event.where
        thread = where.thread_key
        if event.atomic_op is AtomicOp.CAS:
            if not self.config.infer_lock_on_failed_cas and not event.cas_succeeded:
                return
            warp_table = self.sync.warp_lock_table(where.warp_id)
            # More than one thread of the warp CASing together means the
            # kernel uses per-thread locks; the isThread bit is sticky.
            if len(event.active_mask) > 1:
                if not warp_table.is_thread and self.probe is not None:
                    self.probe.on_lock(
                        "infer-per-thread", event,
                        f"{len(event.active_mask)} lanes CAS together",
                    )
                warp_table.is_thread = True
            table = self.sync.lock_table_for(where.warp_id, thread)
            inserted = table.insert(event.address, event.scope)
            if HOT.enabled:
                HOT.lock_inserts.inc()
                if not inserted:
                    HOT.lock_evictions.inc()
            if self.probe is not None:
                self.probe.on_lock(
                    "cas-acquire" if inserted else "cas-overflow", event,
                    f"lock 0x{event.address:x}, {event.scope.name.lower()} scope",
                )
            self.sync.epoch += 1
        elif event.atomic_op is AtomicOp.EXCH:
            table = self.sync.lock_table_for(where.warp_id, thread)
            released = table.release(event.address, event.scope)
            if HOT.enabled and released:
                HOT.lock_releases.inc()
            if self.probe is not None:
                self.probe.on_lock(
                    "exch-release" if released else "exch-unmatched", event,
                    f"lock 0x{event.address:x}",
                )
            self.sync.epoch += 1

    # -- race detection -------------------------------------------------------

    def _check_and_update(
        self, event: MemoryEvent, granule: int, launch: LaunchInfo
    ) -> None:
        config = self.config
        where = event.where
        thread = where.thread_key
        self._current.accesses_checked += 1
        if HOT.enabled:
            HOT.detector_checked.inc()

        # Metadata residency (UVM) and entry-lock contention, both serial.
        # These run before any elision decision: both models are stateful,
        # and their charges (like ``check_per_access`` below) must land
        # identically whether or not the Table 2 re-check is elided.
        if config.use_uvm and self._uvm is not None:
            fault_cost = self._uvm.access(granule * config.metadata_entry_bytes)
            if fault_cost:
                if HOT.enabled:
                    HOT.detector_uvm_faults.inc()
                launch.timing.charge(Category.DETECTION, fault_cost, serial=True)
        if self._contention is not None:
            stall = self._contention.on_metadata_access(
                granule, event.batch, where.warp_id
            )
            if stall:
                if HOT.enabled:
                    HOT.contention_stalls.inc()
                    HOT.contention_cycles.inc(stall)
                launch.timing.charge(Category.DETECTION, stall, serial=True)
        launch.timing.charge(Category.DETECTION, self.costs.check_per_access)

        entry = self.table.lookup_granule(granule)
        if self.probe is not None:
            self.probe.on_check(
                event, granule, entry.accessor_word, entry.writer_word
            )

        # Same-epoch fast path: if this thread already ran the full check
        # against exactly these metadata words with the same access kind,
        # scope and convergence mask, and no synchronization or lock-table
        # mutation has happened since (one epoch counter guards them all),
        # then every input to the Table 2 checks and to the writeback is
        # unchanged — replay the recorded outcome.  The signature stores
        # the *pre-check* words, so a granule rewritten by another thread
        # misses (its words differ) and re-checks.
        if self._fast_path:
            sig = (
                thread,
                event.kind,
                event.scope,
                event.active_mask,
                self.sync.epoch,
                entry.accessor_word,
                entry.writer_word,
            )
            cached = self._elide.get(granule)
            if cached is not None and cached[0] == sig:
                _, label, post_accessor, post_writer = cached
                entry.accessor_word = post_accessor
                entry.writer_word = post_writer
                self._current.accesses_elided += 1
                if HOT.enabled:
                    HOT.detector_elided.inc()
                if label is not None:
                    counts = self._current.preliminary_pass
                    counts[label] = counts.get(label, 0) + 1
                    if HOT.enabled:
                        HOT.detector_prelim_pass.inc()
                if self.probe is not None:
                    self.probe.on_outcome(
                        event, granule, label, None,
                        entry.accessor_word, entry.writer_word,
                    )
                return
        else:
            sig = None

        tag = self.table.tag_of_granule(granule)
        wpb = launch.warps_per_block

        locks_bloom = self.sync.lock_table_for(
            where.warp_id, thread
        ).locks_bloom_int()
        curr = CurrentAccess(
            kind=event.kind,
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            active_mask=event.active_mask,
            locks_bloom=locks_bloom,
        )

        # Update the sharing flags from the last accessor before checking
        # (section 6.2): they encode whether this granule has ever been
        # shared across warps or threadblocks.
        if entry.valid:
            last = entry.last_accessor
            if last.block_id(wpb) != curr.block_id:
                entry.set_flag("DevShared", True)
            elif last.warp_id != curr.warp_id:
                entry.set_flag("BlkShared", True)

        md = select_md(entry, curr)
        passed = preliminary_checks(
            curr, entry, md, self.sync, wpb, its_support=config.its_support
        )
        race_type = None
        if passed is not None:
            counts = self._current.preliminary_pass
            counts[passed] = counts.get(passed, 0) + 1
            if HOT.enabled:
                HOT.detector_prelim_pass.inc()
        else:
            if HOT.enabled:
                HOT.detector_race_tier.inc()
            race_type = race_checks(
                curr,
                entry,
                md,
                self.sync,
                wpb,
                its_support=config.its_support,
                lockset=config.lockset,
            )
            if race_type is not None:
                self._report(race_type, event, md, launch)
            elif (
                HOT.enabled
                and config.lockset
                and md.locks
                and (md.locks & locks_bloom)
            ):
                # R5 stayed quiet because the 16-bit Bloom summaries
                # intersect; if the underlying lock-hash sets are in fact
                # disjoint, that intersection is a filter false positive
                # (a missed R5 report, the aliasing cost of section 6.3).
                truth = self._writer_lock_truth.get(granule)
                if truth is not None and truth.isdisjoint(
                    self.sync.lock_table_for(
                        where.warp_id, thread
                    ).held_hashes()
                ):
                    HOT.detector_bloom_fp.inc()

        # Section 6.7 ablation: also compare against older accessors when
        # a history depth beyond the packed entry is configured.
        if config.accessor_history > 1:
            self._check_history(curr, entry, event, granule, launch, wpb)

        self._write_back(entry, tag, curr, event, thread, locks_bloom)
        if HOT.enabled and event.is_write:
            self._writer_lock_truth[granule] = frozenset(
                self.sync.lock_table_for(where.warp_id, thread).held_hashes()
            )
        if config.accessor_history > 1:
            self._record_history(granule, curr, event, thread, locks_bloom)

        # Remember this check for replay.  Racy outcomes are never cached:
        # race records carry the access's instruction pointer, so a repeat
        # access from a different program location must re-run the checks
        # to report its own site.
        if sig is not None:
            if race_type is None:
                self._elide[granule] = (
                    sig, passed, entry.accessor_word, entry.writer_word
                )
            else:
                self._elide.pop(granule, None)

        if self.probe is not None:
            self.probe.on_outcome(
                event, granule, passed, race_type,
                entry.accessor_word, entry.writer_word,
            )

    # -- accessor-history ablation (section 6.7) -----------------------------

    def _check_history(self, curr, entry, event, granule, launch, wpb) -> None:
        """Check the current access against every remembered accessor."""
        history = self._history.get(granule)
        if not history:
            return
        config = self.config
        for view, was_write in history:
            if not (event.is_write or was_write):
                continue  # two reads cannot race
            launch.timing.charge(
                Category.DETECTION, self.costs.check_per_access / 2
            )
            passed = preliminary_checks(
                curr, entry, view, self.sync, wpb,
                its_support=config.its_support,
            )
            if passed is not None:
                continue
            race_type = race_checks(
                curr, entry, view, self.sync, wpb,
                its_support=config.its_support, lockset=config.lockset,
            )
            if race_type is not None:
                self._report(race_type, event, view, launch)

    def _record_history(self, granule, curr, event, thread, locks_bloom) -> None:
        history = self._history.get(granule)
        if history is None:
            history = deque(maxlen=self.config.accessor_history)
            self._history[granule] = history
        view = AccessorView(
            warp_id=curr.warp_id,
            lane=curr.lane,
            dev_fence=self.sync.dev_fence(thread),
            blk_fence=self.sync.blk_fence(thread),
            blk_bar=self.sync.blk_bar(curr.block_id),
            warp_bar=self.sync.warp_bar(curr.warp_id),
            locks=locks_bloom,
        )
        history.append((view, event.is_write))

    def _write_back(
        self, entry, tag: int, curr: CurrentAccess, event: MemoryEvent,
        thread, locks_bloom: int,
    ) -> None:
        """Record the current access into the metadata entry (section 6.2)."""
        dev_fence = self.sync.dev_fence(thread)
        blk_fence = self.sync.blk_fence(thread)
        blk_bar = self.sync.blk_bar(curr.block_id)
        warp_bar = self.sync.warp_bar(curr.warp_id)

        entry.set_accessor(
            tag=tag,
            warp_id=curr.warp_id,
            lane=curr.lane,
            dev_fence=dev_fence,
            blk_fence=blk_fence,
            blk_bar=blk_bar,
            warp_bar=warp_bar,
        )
        if event.is_write:
            entry.set_writer(
                warp_id=curr.warp_id,
                lane=curr.lane,
                dev_fence=dev_fence,
                blk_fence=blk_fence,
                blk_bar=blk_bar,
                warp_bar=warp_bar,
                locks=locks_bloom,
            )
            entry.set_flag("Modified", True)
            if event.kind is AccessKind.ATOMIC:
                entry.set_flag("Atomic", True)
                entry.set_flag(
                    "Scope", event.scope.effective is Scope.BLOCK
                )
            else:
                entry.set_flag("Atomic", False)
                entry.set_flag("Scope", False)

    def _report(self, race_type, event: MemoryEvent, md, launch: LaunchInfo) -> None:
        where = event.where
        record = RaceRecord(
            race_type=race_type,
            kernel=launch.kernel_name,
            ip=event.ip,
            access=event.kind.value,
            address=event.address,
            location=launch.device.memory.describe(event.address),
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            prev_warp_id=md.warp_id,
            prev_lane=md.lane,
        )
        if HOT.enabled:
            HOT.detector_races.inc()
        if self.probe is not None:
            self.probe.on_race(record, md)
        if self.races.report(record):
            self._current.races_reported += 1

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        """Number of unique racy sites detected so far."""
        return self.races.num_sites

    def race_types(self):
        """The set of race types detected so far."""
        return self.races.types()

    def summary(self) -> str:
        """Multi-line human-readable report of all detected races."""
        lines = [f"iGUARD: {self.race_count} race site(s) detected"]
        for ip, race_type in self.races.sites():
            lines.append(f"  [{race_type}] at {ip}")
        return "\n".join(lines)
