"""The iGUARD detector: an instrumentation tool running "on the GPU".

This is the paper's contribution assembled: on every load/store/atomic the
detector reads the access's metadata entry, updates the sharing flags, runs
the two-tier Table 2 checks, and writes the access back into the metadata;
on every synchronization operation it updates the live counters and the
lock tables.  Everything happens inline with (simulated) kernel execution
— there is no CPU-side pass — so detection work is charged as *parallel*
cycles, and only genuine metadata-lock contention is serialized.

Since the engine extraction, this class is a thin **adapter**: the Table 2
state machine itself lives in :class:`repro.core.engine.IGuardCore`, and
``IGuard`` keeps only what is *not* detection state — cycle charging, UVM
residency, metadata-lock contention, coalescing, per-launch statistics,
and the Tool lifecycle.  The adapter drives one core per shard
(``shards=1`` by default): memory events route to the shard owning their
granule, synchronization events and lock-inferring atomics apply once to
the shared synchronization state every core reads.  Because the adapter
feeds shards inline, in serial event order, a sharded run is byte-for-byte
identical to a serial one — races, types, stats, and cycle breakdowns —
for any shard count (see :mod:`repro.core.sharding` for the router and
the batched/process-pool drivers built on the same cores).

Performance features from the paper, all modeled:

- NVBit-style one-time binary analysis cost per kernel (Figure 13 "NVBit");
- metadata pre-faulting through UVM (Figure 14, "Setup" in Figure 13);
- opportunistic coalescing of same-warp, same-address loads/atomics —
  one representative thread checks on behalf of the converged group;
- dynamic exponential backoff on the per-entry metadata locks.

One feature belongs to the *reproduction* rather than the paper: the
same-epoch check-elision fast path (``IGuardConfig.fast_path``).  When a
thread re-accesses a granule and nothing relevant has changed — same
access kind, scope and convergence mask, identical metadata words, and no
intervening synchronization or lock-table mutation (tracked by a single
``SyncMetadata.epoch`` counter) — the Table 2 re-check is provably a
replay of the previous one, so the detector reuses the recorded outcome
and the recorded post-writeback metadata words.  All simulated cycles
(UVM faults, contention stalls, ``check_per_access``) are still charged
before the elision decision, and race outcomes are never cached (race
records depend on the access's instruction pointer), so races, race types
and cycle breakdowns are bit-identical with the knob on or off; only the
reproduction's wall-clock time changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Re-exported for compatibility: these historically lived here and are
# imported by the baselines and experiment harnesses.
from repro.core.engine import DetectorCosts, IGuardCore, LaunchStats
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.core.contention import ContentionModel, ContentionParams
from repro.core.report import RaceLog
from repro.core.syncstate import SyncMetadata
from repro.core.uvm import ManagedMetadataSpace, UVMParams
from repro.common.budget import mem_budget
from repro.errors import ConfigError
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent
from repro.gpu.instructions import AtomicOp
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import HOT

__all__ = ["DetectorCosts", "LaunchStats", "IGuard"]


class IGuard(Tool):
    """iGUARD attached to a simulated device.

    Typical use::

        device = Device()
        detector = device.add_tool(IGuard())
        ... allocate, launch kernels ...
        for race in detector.races.sites():
            print(race)

    ``shards`` splits the per-granule detection state across N
    :class:`~repro.core.engine.IGuardCore` instances sharing one
    synchronization state; results are identical for every value.  The
    default consults :func:`repro.core.sharding.default_shards` (the
    ``IGUARD_SHARDS`` environment variable, else 1).
    """

    name = "iGUARD"

    #: Whether this driver's event path can honor ``config.static_prune``.
    #: The inline adapter can: every access flows through ``on_memory``,
    #: where the safe-site set is consulted after all cycle charges.  The
    #: batched sharded drivers (:mod:`repro.core.sharding`) bypass
    #: ``on_memory`` entirely and set this False — pruning silently stays
    #: off there rather than applying inconsistently.
    static_prune_supported = True

    def __init__(
        self,
        config: IGuardConfig = DEFAULT_CONFIG,
        costs: Optional[DetectorCosts] = None,
        contention_params: Optional[ContentionParams] = None,
        uvm_params: Optional[UVMParams] = None,
        shards: Optional[int] = None,
    ):
        # Per-instance factories, not def-time defaults: a default built
        # at function definition would be one shared instance across every
        # detector ever constructed.
        self.config = config
        self.costs = costs if costs is not None else DetectorCosts()
        self.contention_params = (
            contention_params
            if contention_params is not None
            else ContentionParams()
        )
        self.uvm_params = uvm_params if uvm_params is not None else UVMParams()
        if shards is None:
            from repro.core.sharding import default_shards

            shards = default_shards()
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shards > 1 and config.metadata_max_entries is not None:
            raise ConfigError(
                "sharding partitions the metadata table; a global "
                "metadata_max_entries eviction cap cannot be enforced "
                "coherently across shards (use shards=1)"
            )
        self.shards = shards
        self.device = None
        self.races = RaceLog(capacity=config.race_buffer_capacity)
        self.sync = SyncMetadata(config.lock_table_entries)
        self.cores: List[IGuardCore] = [
            IGuardCore(config, self.costs, sync=self.sync, shard_id=i)
            for i in range(shards)
        ]
        for core in self.cores:
            core.report_sink = self._report_sink
        # IGUARD_MEM_BUDGET: bound total metadata growth by FIFO-evicting
        # tables, the budget split evenly across shards.  Same degradation
        # contract as metadata_max_entries — bounded recall loss, never a
        # false positive — but unlike the config knob it composes with
        # sharding: the operator asked for a memory ceiling, accepting
        # that per-shard eviction order may hide different races than a
        # serial run's would.
        budget = mem_budget()
        if budget is not None and config.metadata_max_entries is None:
            per_core = max(
                1, budget // config.metadata_entry_bytes // shards
            )
            for core in self.cores:
                core.table.max_entries = per_core
        self.stats: List[LaunchStats] = []
        self._launch: Optional[LaunchInfo] = None
        self._contention: Optional[ContentionModel] = None
        self._uvm: Optional[ManagedMetadataSpace] = None
        self._current: Optional[LaunchStats] = None
        #: Safe-site frozenset from the static analyzer for the current
        #: launch, or None when pruning is off / unavailable.
        self._prune_safe = None
        self._coalesce_key: Optional[Tuple[int, int]] = None
        self._probe = None
        #: Per-shard routed-event counts for the current launch (HOT
        #: imbalance accounting; reset each launch).
        self._shard_routed: List[int] = [0] * shards
        #: Per-shard routed-event totals across the tool's whole life —
        #: the bench's shard-imbalance forensics read this directly, so
        #: it accumulates whether or not the HOT recorder is on.
        self.shard_routed_total: List[int] = [0] * shards

    # ------------------------------------------------------------------
    # Delegation: the detection state lives on the cores
    # ------------------------------------------------------------------

    @property
    def table(self):
        """The metadata table (of shard 0 when sharded)."""
        return self.cores[0].table

    @property
    def probe(self):
        """Forensic probe, forwarded to every core."""
        return self._probe

    @probe.setter
    def probe(self, probe) -> None:
        self._probe = probe
        for core in self.cores:
            core.probe = probe

    def _report_sink(self, record, md) -> bool:
        """Shared race log across all shards, preserving serial order.

        Cores run inline in event order, so records arrive here exactly
        when serial detection would have produced them.
        """
        if self.races.report(record):
            if self._current is not None:
                self._current.races_reported += 1
            return True
        return False

    def _shard_of(self, granule: int) -> int:
        if self.shards == 1:
            return 0
        from repro.core.sharding import shard_of

        return shard_of(granule, self.shards)

    # ------------------------------------------------------------------
    # Tool lifecycle
    # ------------------------------------------------------------------

    def attach(self, device) -> None:
        self.device = device

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        self._launch = launch
        self._coalesce_key = None
        self._current = LaunchStats(kernel=launch.kernel_name)
        self.stats.append(self._current)
        self._shard_routed = [0] * self.shards

        # Static check pruning (repro.analysis): compute the safe-site
        # set for this launch.  Gated on the paper-default accessor
        # history — deeper histories re-check accesses against *older*
        # accessor views the pairwise static argument does not model.
        self._prune_safe = None
        if (
            self.config.static_prune
            and self.static_prune_supported
            and self.config.accessor_history == 1
        ):
            from repro.analysis.prune import compute_prune_hints

            hints = compute_prune_hints(launch)
            if hints is not None and hints.safe_sites:
                self._prune_safe = hints.safe_sites

        # Fresh synchronization metadata per kernel: counters describe the
        # *running* kernel's threads.  The adapter owns the (shared) sync
        # state; every core is rebound to the new instance.  Memory
        # metadata resets inside each core — the implicit barrier at kernel
        # completion orders everything, so stale entries could only cause
        # false positives.
        self.sync = SyncMetadata(self.config.lock_table_entries)
        for core in self.cores:
            core.rebind_sync(self.sync)
            core.begin_launch(launch)

        # NVBit binary analysis and injection (the duration-proportional
        # share is charged at launch end, once native time is known).
        launch.timing.charge(
            Category.NVBIT,
            self.costs.nvbit_fixed
            + self.costs.nvbit_per_instruction * launch.static_instruction_count,
            serial=True,
        )

        # Metadata allocation: managed (UVM) or nothing to pre-fault.
        memory = launch.device.memory
        app_bytes = memory.bytes_allocated
        metadata_needed = app_bytes * 4  # 16 bytes per 4-byte granule
        self._uvm = ManagedMetadataSpace(
            metadata_virtual_bytes=metadata_needed,
            device_free_bytes=max(0, memory.capacity_bytes - app_bytes),
            prefault=self.config.prefault and self.config.use_uvm,
            params=self.uvm_params,
        )
        self._current.uvm_prefaulted_pages = self._uvm.prefaulted_pages
        launch.timing.charge(
            Category.SETUP,
            self.costs.setup_fixed + self._uvm.setup_cycles,
            serial=True,
        )
        launch.timing.charge(Category.MISC, self.costs.misc_fixed, serial=True)

        # Contention accounting for this launch.
        concurrent_warps = max(
            1,
            min(
                launch.num_warps,
                launch.device.config.max_concurrent_lanes // launch.warp_size,
            ),
        )
        self._contention = ContentionModel(
            num_threads=launch.num_threads,
            concurrent_warps=concurrent_warps,
            dynamic_backoff=self.config.dynamic_backoff,
            params=self.contention_params,
        )

    def on_launch_end(self, launch: LaunchInfo) -> None:
        self._finish(launch)

    def on_timeout(self, launch: LaunchInfo) -> None:
        # The paper's timeout path: flush detected races to the CPU, then
        # terminate the kernel.
        self._finish(launch)

    def _finish(self, launch: LaunchInfo) -> None:
        for core in self.cores:
            core.finish_launch(launch)
        self.races.flush()
        # Duration-proportional host-side shares (see DetectorCosts).
        native = launch.timing.native_time
        launch.timing.charge(
            Category.NVBIT, self.costs.nvbit_fraction * native, serial=True
        )
        launch.timing.charge(
            Category.SETUP, self.costs.setup_fraction * native, serial=True
        )
        launch.timing.charge(
            Category.MISC, self.costs.misc_fraction * native, serial=True
        )
        if self._current is not None:
            self._current.contention_cycles = (
                self._contention.serialized_cycles if self._contention else 0.0
            )
            self._current.uvm_faults = self._uvm.faults if self._uvm else 0
            self._current.metadata_entries = sum(
                len(core.table) for core in self.cores
            )
        if self.shards > 1:
            routed = self._shard_routed
            for shard, count in enumerate(routed):
                self.shard_routed_total[shard] += count
            if HOT.enabled:
                total = sum(routed)
                registry = obs_metrics.get_registry()
                for shard, depth in enumerate(routed):
                    HOT.shard_queue_depth.observe(depth)
                    if depth:
                        # Per-shard labelled series for the telemetry
                        # pipeline (iguard_shard_events_total{shard="i"}
                        # after OpenMetrics label folding).
                        registry.counter(f"shard.{shard}.events").inc(depth)
                if total:
                    # Imbalance: the hottest shard's load relative to
                    # perfect balance (1.0 = perfectly even).
                    HOT.shard_imbalance.set(
                        max(routed) * self.shards / total
                    )

    # ------------------------------------------------------------------
    # Synchronization operations
    # ------------------------------------------------------------------

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )
        launch.timing.charge(Category.DETECTION, self.costs.sync_per_event)
        self._sync_barrier()
        # One application mutates the shared sync state every core reads.
        if HOT.enabled and self.shards > 1:
            HOT.shard_broadcast.inc()
        self.cores[0].apply_sync(event, launch)

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )

        # Lock inference precedes race checking (Figure 6's orange boxes).
        # CAS/EXCH mutate the shared lock tables (and bump the epoch), so
        # in batched modes all shard queues must drain first.
        if event.kind is AccessKind.ATOMIC:
            if event.atomic_op in (AtomicOp.CAS, AtomicOp.EXCH):
                self._sync_barrier()
                if HOT.enabled and self.shards > 1:
                    HOT.shard_broadcast.inc()
            self.cores[0].infer_locks(event)

        # Opportunistic coalescing: active threads of one warp loading (or
        # atomically updating) the same location cannot race with each
        # other, so a single representative performs the metadata access
        # on behalf of the converged group (section 6.5).  The key rides
        # the same granule index that keys the elision cache: the real
        # implementation's warp match runs on the *metadata* address, so
        # converged lanes touching different bytes of one granule coalesce
        # into a single check of that granule's entry.
        granule = self.cores[0].table.granule_of(event.address)
        if self.config.coalescing and event.kind in (
            AccessKind.LOAD,
            AccessKind.ATOMIC,
        ):
            key = (event.batch, granule)
            if key == self._coalesce_key:
                self._current.accesses_coalesced += 1
                if HOT.enabled:
                    HOT.detector_coalesced.inc()
                launch.timing.charge(
                    Category.DETECTION, self.costs.coalesced_skip
                )
                return
            self._coalesce_key = key
        else:
            self._coalesce_key = None

        # Metadata residency (UVM) and entry-lock contention, both serial.
        # These run before any elision decision: both models are stateful,
        # and their charges (like ``check_per_access`` below) must land
        # identically whether or not the Table 2 re-check is elided.
        if self.config.use_uvm and self._uvm is not None:
            fault_cost = self._uvm.access(
                granule * self.config.metadata_entry_bytes
            )
            if fault_cost:
                if HOT.enabled:
                    HOT.detector_uvm_faults.inc()
                launch.timing.charge(
                    Category.DETECTION, fault_cost, serial=True
                )
        if self._contention is not None:
            stall = self._contention.on_metadata_access(
                granule, event.batch, event.where.warp_id
            )
            if stall:
                if HOT.enabled:
                    HOT.contention_stalls.inc()
                    HOT.contention_cycles.inc(stall)
                launch.timing.charge(Category.DETECTION, stall, serial=True)
        launch.timing.charge(Category.DETECTION, self.costs.check_per_access)

        shard = self._shard_of(granule)
        self._shard_routed[shard] += 1
        if HOT.enabled and self.shards > 1:
            HOT.shard_routed.inc()
        # Static check pruning: a statically-proven-safe site takes the
        # record-only path — metadata writeback, no Table 2 checks.  The
        # intercept sits AFTER every cycle charge above, so the timing
        # breakdown is byte-identical with pruning on or off.
        if self._prune_safe is not None and event.ip in self._prune_safe:
            self.cores[shard].record_memory(
                event, granule, launch, self._current
            )
            return
        self._dispatch(shard, event, granule, launch)

    def _dispatch(
        self, shard: int, event: MemoryEvent, granule: int, launch: LaunchInfo
    ) -> None:
        """Run the routed check now.  Batched drivers override to queue.

        Dispatching through :meth:`DetectorCore.handle` quarantines a
        poison event (one whose check raises) instead of aborting — the
        same absorption the batched drains apply, so all modes stay
        byte-identical on every non-quarantined record.
        """
        self.cores[shard].handle(event, granule, launch, self._current)

    def _sync_barrier(self) -> None:
        """Quiesce shard queues before a sync-state mutation.

        The inline adapter checks every event immediately, so there is
        nothing to drain; batched drivers (:mod:`repro.core.sharding`)
        override this to flush their per-shard run queues.
        """

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        """Number of unique racy sites detected so far."""
        return self.races.num_sites

    def race_types(self):
        """The set of race types detected so far."""
        return self.races.types()

    def summary(self) -> str:
        """Multi-line human-readable report of all detected races."""
        lines = [f"iGUARD: {self.race_count} race site(s) detected"]
        for ip, race_type in self.races.sites():
            lines.append(f"  [{race_type}] at {ip}")
        return "\n".join(lines)
