"""Synchronization metadata: the live counters of section 6.1.

iGUARD tracks the *active synchronization status* of every thread, warp,
and threadblock with small counters:

- a **threadblock barrier counter** per block, bumped on ``syncthreads``;
- a **warp barrier counter** per warp, bumped on ``syncwarp``;
- **two threadfence counters per thread** (block scope and device scope) —
  per *thread*, because CUDA defines fence semantics per thread, and under
  ITS each thread of a warp may have executed different fences.

All counters wrap at exactly the bit widths of the metadata fields they
are snapshotted into, so a stale snapshot can alias a live counter after a
wrap — the false positive/negative window the paper accepts in 6.7.

The lock tables (Figure 7) also live here, since the paper counts them as
part of the ~2 MB synchronization metadata.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.locktable import LockTable
from repro.core.metadata import (
    BLK_BAR_BITS,
    BLK_FENCE_BITS,
    DEV_FENCE_BITS,
    WARP_BAR_BITS,
)
from repro.gpu.instructions import Scope, scope_covers

ThreadKey = Tuple[int, int]  # (global warp id, lane)


class SyncMetadata:
    """Live synchronization counters plus lock tables for one kernel."""

    def __init__(self, lock_table_entries: int = 3):
        self.lock_table_entries = lock_table_entries
        self._blk_bar: Dict[int, int] = {}
        self._warp_bar: Dict[int, int] = {}
        self._dev_fence: Dict[ThreadKey, int] = {}
        self._blk_fence: Dict[ThreadKey, int] = {}
        self._warp_locks: Dict[int, LockTable] = {}
        self._thread_locks: Dict[ThreadKey, LockTable] = {}
        #: Monotonic change counter over *all* synchronization state —
        #: barrier/fence counters and (via the detector's lock-inference
        #: hooks) the lock tables.  The detector's same-epoch elision
        #: cache compares this single integer instead of re-reading four
        #: counters and a lock summary; any bump conservatively
        #: invalidates every cached check outcome.
        self.epoch = 0

    # -- counters ---------------------------------------------------------

    def blk_bar(self, block_id: int) -> int:
        """Current threadblock barrier counter (8-bit, wrapping)."""
        return self._blk_bar.get(block_id, 0)

    def warp_bar(self, warp_id: int) -> int:
        """Current warp barrier counter (6-bit, wrapping)."""
        return self._warp_bar.get(warp_id, 0)

    def dev_fence(self, thread: ThreadKey) -> int:
        """Current device-scope fence counter of a thread (6-bit)."""
        return self._dev_fence.get(thread, 0)

    def blk_fence(self, thread: ThreadKey) -> int:
        """Current block-scope fence counter of a thread (6-bit)."""
        return self._blk_fence.get(thread, 0)

    def on_syncthreads(self, block_id: int) -> None:
        """A threadblock barrier completed: bump the block's counter."""
        self._blk_bar[block_id] = (self.blk_bar(block_id) + 1) % (1 << BLK_BAR_BITS)
        self.epoch += 1

    def on_syncwarp(self, warp_id: int) -> None:
        """A warp barrier completed: bump the warp's counter."""
        self._warp_bar[warp_id] = (self.warp_bar(warp_id) + 1) % (
            1 << WARP_BAR_BITS
        )
        self.epoch += 1

    def on_fence(self, thread: ThreadKey, scope: Scope) -> None:
        """A thread executed a scoped threadfence: bump its counter."""
        if scope_covers(scope, Scope.DEVICE):
            self._dev_fence[thread] = (self.dev_fence(thread) + 1) % (
                1 << DEV_FENCE_BITS
            )
        else:
            self._blk_fence[thread] = (self.blk_fence(thread) + 1) % (
                1 << BLK_FENCE_BITS
            )
        self.epoch += 1

    # -- lock tables --------------------------------------------------------

    def warp_lock_table(self, warp_id: int) -> LockTable:
        """The per-warp lock table (created on first use)."""
        table = self._warp_locks.get(warp_id)
        if table is None:
            table = LockTable(self.lock_table_entries)
            self._warp_locks[warp_id] = table
        return table

    def thread_lock_table(self, thread: ThreadKey) -> LockTable:
        """The per-thread lock table (created on first use)."""
        table = self._thread_locks.get(thread)
        if table is None:
            table = LockTable(self.lock_table_entries)
            self._thread_locks[thread] = table
        return table

    def lock_table_for(self, warp_id: int, thread: ThreadKey) -> LockTable:
        """The table the detector should consult for this thread.

        The per-warp table is checked first; if its ``isThread`` bit is set
        (per-thread locking was inferred for this warp), the per-thread
        table is used instead (section 6.3).
        """
        warp_table = self.warp_lock_table(warp_id)
        if warp_table.is_thread:
            return self.thread_lock_table(thread)
        return warp_table

    # -- footprint ------------------------------------------------------------

    def approximate_bytes(self) -> int:
        """Rough footprint, for the paper's "~2 MB" accounting."""
        counters = (
            len(self._blk_bar)
            + len(self._warp_bar)
            + len(self._dev_fence)
            + len(self._blk_fence)
        )
        tables = len(self._warp_locks) + len(self._thread_locks)
        return counters + tables * self.lock_table_entries * 8
