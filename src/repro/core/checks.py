"""The two-tier race detection logic of Table 2.

Most accesses do not participate in a race, so iGUARD (like ScoRD) first
runs cheap *preliminary checks* (P1-P6) that prove an access trivially
race-free; only if **all** of them fail are the *race conditions* (R1-R5)
evaluated, in order, and the first one that holds classifies the race.

Notation, exactly as in the paper's Table 2:

- ``mm``   — the memory metadata entry for the accessed granule;
- ``md``   — ``mm.LastAccessor`` for stores/atomics, ``mm.LastWriter`` for
  loads (a load can only race with the last write; a write races with any
  last access);
- ``sm``   — the *live* synchronization metadata: for barrier IDs, the
  current counter of the relevant block/warp; for fence IDs, the current
  counters of ``md``'s thread (equality means that thread has executed no
  fence since its access); for locks, the current accessor's summary;
- ``curr`` — the current access.

The checks:

====  =====================================================================
P1    first access to the granule (``!mm.Valid``)
P2    granule never written and the access is a load
P3    program order: same thread (warp + lane) as the previous access
P4    same warp, separated by a ``syncwarp`` **or** still converged (the
      previous accessor's lane is in the current active mask) — the
      ITS-aware condition unique to iGUARD
P5    same block, separated by a ``syncthreads``
P6    atomic-atomic with sufficient scope
R1    insufficiently scoped atomic (AS)
R2    intra-warp, no intervening fence by the previous thread (ITS)
R3    intra-block, no intervening fence (BR)
R4    inter-block, no intervening device-scope fence (DR)
R5    lockset: locks in use but intersection empty (IL)
====  =====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.metadata import AccessorView, MetadataEntry
from repro.core.report import RaceType
from repro.core.syncstate import SyncMetadata
from repro.gpu.events import AccessKind


@dataclass(frozen=True)
class CurrentAccess:
    """Everything Table 2 needs to know about the access being checked."""

    kind: AccessKind
    warp_id: int
    lane: int
    block_id: int
    active_mask: FrozenSet[int]
    locks_bloom: int = 0  # sm.Locks: the current accessor's lock summary

    @property
    def thread_key(self):
        return (self.warp_id, self.lane)

    @property
    def is_load(self) -> bool:
        return self.kind is AccessKind.LOAD

    @property
    def is_atomic(self) -> bool:
        return self.kind is AccessKind.ATOMIC


def select_md(entry: MetadataEntry, curr: CurrentAccess) -> AccessorView:
    """Table 2's *Definitions* block: pick last accessor vs last writer."""
    if curr.kind in (AccessKind.STORE, AccessKind.ATOMIC):
        return entry.last_accessor
    return entry.last_writer


def preliminary_checks(
    curr: CurrentAccess,
    entry: MetadataEntry,
    md: AccessorView,
    sync: SyncMetadata,
    warps_per_block: int,
    its_support: bool = True,
) -> Optional[str]:
    """Run P1-P6; return the name of the first condition that proves the
    access race-free, or None if all fail (detailed checks needed)."""

    # P1: the first access to a memory location cannot be a race.
    if not entry.valid:
        return "P1"

    # P2: an unmodified location read again is race-free.
    if not entry.modified and curr.is_load:
        return "P2"

    md_block = md.block_id(warps_per_block)

    # P3: two accesses from the same thread in program order cannot race.
    # Table 2 prints this as "!DevShared AND !BlkShared AND curr.ThreadID
    # == md.ThreadID": with an unshared granule the 5-bit lane alone
    # identifies the thread.  Taken literally, though, that formulation
    # would flag every same-thread read-modify-write to a location that
    # was *ever* shared (the sharing flags are sticky) — the most common
    # memory idiom there is — and the real tool reports no such false
    # positives.  We therefore check full thread identity (warp AND
    # lane), which subsumes the printed condition and is exactly "same
    # thread in program order".
    if curr.warp_id == md.warp_id and curr.lane == md.lane:
        return "P3"

    # P4: same warp, and either a syncwarp intervened (the warp's live
    # warp-barrier counter moved on) or the threads are still converged
    # (the previous accessor's lane is in the current active mask, so
    # batch-lockstep execution orders the accesses).  Unique to iGUARD.
    # Like P3, Table 2 prints this with a "!DevShared AND !BlkShared"
    # precondition; the full 15-bit WarpID makes it unnecessary, and
    # keeping it would flag warp-synchronized exchanges on any buffer
    # that was *ever* shared across warps (sticky flags).
    if curr.warp_id == md.warp_id:
        if its_support:
            if md.warp_bar != sync.warp_bar(curr.warp_id):
                return "P4"
            if md.lane in curr.active_mask:
                return "P4"
        else:
            # ScoRD mode: pre-ITS hardware assumption — threads of a warp
            # execute in lockstep, so same-warp accesses never race.
            return "P4"

    # P5: same block, separated by an intervening threadblock barrier.
    if (
        not entry.dev_shared
        and md_block == curr.block_id
        and md.blk_bar != sync.blk_bar(curr.block_id)
    ):
        return "P5"

    # P6: atomics of sufficient scope cannot race with each other.
    if entry.atomic and curr.is_atomic:
        if md_block == curr.block_id or not entry.scope_is_block:
            return "P6"

    return None


def race_checks(
    curr: CurrentAccess,
    entry: MetadataEntry,
    md: AccessorView,
    sync: SyncMetadata,
    warps_per_block: int,
    its_support: bool = True,
    lockset: bool = True,
) -> Optional[RaceType]:
    """Run R1-R5 in order; return the type of the first race found."""

    md_block = md.block_id(warps_per_block)
    md_thread = (md.warp_id, md.lane)
    writer = entry.last_writer
    writer_block = writer.block_id(warps_per_block)

    # sm fence counters: the previous accessor's *current* counters.  If
    # they equal the snapshot in the metadata, that thread has executed no
    # fence since the access.
    no_dev_fence = md.dev_fence == sync.dev_fence(md_thread)
    no_blk_fence = md.blk_fence == sync.blk_fence(md_thread)

    # R1: scoped-atomic race — the granule is touched by block-scope
    # atomics, but the last writer and the current accessor live in
    # different threadblocks.
    if (
        entry.atomic
        and entry.scope_is_block
        and writer_block != curr.block_id
    ):
        return RaceType.ATOMIC_SCOPE

    # R2: intra-warp (ITS) race — same warp, no intervening fences, and
    # the granule was never shared beyond the warp.  (Convergence was
    # already ruled out by P4 failing.)
    if (
        its_support
        and md.warp_id == curr.warp_id
        and no_dev_fence
        and no_blk_fence
        and not entry.dev_shared
        and not entry.blk_shared
    ):
        return RaceType.ITS

    # R3: intra-block race — same block, no intervening fences, granule
    # never shared across blocks.
    if (
        md_block == curr.block_id
        and no_dev_fence
        and no_blk_fence
        and not entry.dev_shared
    ):
        return RaceType.INTRA_BLOCK

    # R4: inter-block race — different blocks and no intervening
    # device-scope fence (a block-scope fence cannot order accesses from
    # different threadblocks).
    if md_block != curr.block_id and no_dev_fence:
        return RaceType.INTER_BLOCK

    # R5: missing/mismatched locks — locks are in use for this granule,
    # but the previous and current lock sets do not intersect.
    if lockset:
        mm_locks = md.locks
        sm_locks = curr.locks_bloom
        if (mm_locks != 0 or sm_locks != 0) and (mm_locks & sm_locks) == 0:
            return RaceType.IMPROPER_LOCKING

    return None
