"""Metadata-access serialization and the section 6.5 optimizations.

Race detection must serialize accesses to a granule's metadata entry: the
non-existence of a race cannot be affirmed until the check completes, so
iGUARD keeps a fine-grain lock per entry.  Thousands of threads hammering
one shared variable therefore convoy on one metadata lock — the unique
cost of *in-GPU* software detection (Barracuda never touches metadata on
the GPU; ScoRD has dedicated hardware).

This module models that serialization.  Executions are divided into
*windows* of scheduler batches approximating one round of all concurrently
resident warps; the k-th metadata access to the same granule within a
window pays a serialized penalty:

- **no backoff** (Figure 12 baseline): ``retry_cost * (k-1)`` — each
  contender re-spins behind every earlier one, a quadratic convoy in k;
- **dynamic exponential backoff**: ``backoff_cost * log2(k)`` — contenders
  spread out, and the backoff cap adapts to the number of threads the
  kernel launched, so huge launches (conjugGMB's 73k spinning threads)
  do not overshoot the cap and small launches do not over-wait.

The *coalescing* optimization is implemented in the detector itself (it
skips whole metadata accesses); this model only prices the accesses that
actually happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ContentionParams:
    """Cost constants for metadata-lock contention."""

    #: Cycles one failed lock attempt costs without backoff: every
    #: contender re-spins behind every earlier one (quadratic convoys).
    retry_cost: float = 10.0
    #: Cycles per backoff round with dynamic exponential backoff enabled:
    #: contenders sleep instead of spinning, so the k-th arrival pays only
    #: ~log2(k) rounds.
    backoff_cost: float = 2.0


class ContentionModel:
    """Per-launch accounting of serialized metadata-lock cycles."""

    def __init__(
        self,
        num_threads: int,
        concurrent_warps: int,
        dynamic_backoff: bool = True,
        params: Optional[ContentionParams] = None,
    ):
        # A fresh instance per model, not a def-time default shared by all.
        if params is None:
            params = ContentionParams()
        self.params = params
        self.dynamic_backoff = dynamic_backoff
        self.num_threads = max(1, num_threads)
        #: Batches per contention window: roughly one scheduling round of
        #: the concurrently resident warps.
        self.window = max(1, concurrent_warps)
        #: granule -> (window id, access count, first warp, multi-warp?)
        self._counts: Dict[int, Tuple[int, int, int, bool]] = {}
        self.serialized_cycles = 0.0
        self.contended_accesses = 0

    def on_metadata_access(self, granule: int, batch: int, warp_id: int = -1) -> float:
        """Account one metadata access; returns its serialized penalty.

        A granule only convoys when threads of *different* warps hit its
        metadata lock in the same window — a lone thread spinning on a
        flag re-acquires an uncontended lock for free.
        """
        window_id = batch // self.window
        prev = self._counts.get(granule)
        if prev is None or prev[0] != window_id:
            self._counts[granule] = (window_id, 1, warp_id, False)
            return 0.0
        _, count, first_warp, shared = prev
        k = count + 1
        shared = shared or warp_id != first_warp
        self._counts[granule] = (window_id, k, first_warp, shared)
        if not shared:
            return 0.0
        self.contended_accesses += 1
        if self.dynamic_backoff:
            penalty = self.params.backoff_cost * log2(k)
        else:
            penalty = self.params.retry_cost * (k - 1)
        self.serialized_cycles += penalty
        return penalty
