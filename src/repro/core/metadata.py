"""Memory metadata: the 16-byte per-granule entry of Figure 4.

Each 4-byte granule of global memory is shadowed by two packed 64-bit
words:

``accessor`` word (the *last accessor* — reader or writer)::

    [63-54] [53-48] [47-46] [45-31] [30-26]    [25-20]    [19-14]    [13-6]   [5-0]
    Tag     Flags   Unused  WarpID  ThreadID   DevFenceID BlkFenceID BlkBarID WarpBarID

    Flags = Valid | Modified | Atomic | Scope | DevShared | BlkShared

``writer`` word (the *last writer*)::

    [63-48] [47-46] [45-31] [30-26]    [25-20]    [19-14]    [13-6]   [5-0]
    Locks   Unused  WarpID  ThreadID   DevFenceID BlkFenceID BlkBarID WarpBarID

Field meanings (section 6.2): ``WarpID`` is the global warp index and
``ThreadID`` the 5-bit lane; the block ID is *derived* by dividing WarpID
by the kernel's warps-per-block.  The fence/barrier IDs snapshot the
accessor's synchronization counters at access time.  ``Locks`` is the
16-bit 2-way Bloom filter of locks held by the writer.  Counters are
narrow on purpose — they wrap exactly as the paper's do (section 6.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.bitfield import BitField, BitStruct
from repro.gpu.ids import block_of_warp

#: The last-accessor word (Figure 4, top row).
ACCESSOR_WORD = BitStruct(
    "accessor",
    [
        BitField("Tag", 63, 54),
        BitField("BlkShared", 53, 53),
        BitField("DevShared", 52, 52),
        BitField("Scope", 51, 51),
        BitField("Atomic", 50, 50),
        BitField("Modified", 49, 49),
        BitField("Valid", 48, 48),
        BitField("Unused", 47, 46),
        BitField("WarpID", 45, 31),
        BitField("ThreadID", 30, 26),
        BitField("DevFenceID", 25, 20),
        BitField("BlkFenceID", 19, 14),
        BitField("BlkBarID", 13, 6),
        BitField("WarpBarID", 5, 0),
    ],
)

#: The last-writer word (Figure 4, bottom row).
WRITER_WORD = BitStruct(
    "writer",
    [
        BitField("Locks", 63, 48),
        BitField("Unused", 47, 46),
        BitField("WarpID", 45, 31),
        BitField("ThreadID", 30, 26),
        BitField("DevFenceID", 25, 20),
        BitField("BlkFenceID", 19, 14),
        BitField("BlkBarID", 13, 6),
        BitField("WarpBarID", 5, 0),
    ],
)

#: Bit widths of the synchronization counters, shared with syncstate so the
#: live counters wrap at exactly the same width as the stored snapshots.
DEV_FENCE_BITS = ACCESSOR_WORD.field("DevFenceID").width  # 6
BLK_FENCE_BITS = ACCESSOR_WORD.field("BlkFenceID").width  # 6
BLK_BAR_BITS = ACCESSOR_WORD.field("BlkBarID").width  # 8
WARP_BAR_BITS = ACCESSOR_WORD.field("WarpBarID").width  # 6
TAG_BITS = ACCESSOR_WORD.field("Tag").width  # 10


@dataclass(frozen=True)
class AccessorView:
    """Unpacked identity + sync snapshot of one metadata word."""

    warp_id: int
    lane: int
    dev_fence: int
    blk_fence: int
    blk_bar: int
    warp_bar: int
    locks: int = 0

    def block_id(self, warps_per_block: int) -> int:
        """The accessor's threadblock, derived from its warp ID."""
        return block_of_warp(self.warp_id, warps_per_block)


class MetadataEntry:
    """One 16-byte metadata entry, stored as two packed 64-bit words."""

    __slots__ = ("accessor_word", "writer_word")

    def __init__(self, accessor_word: int = 0, writer_word: int = 0):
        self.accessor_word = accessor_word
        self.writer_word = writer_word

    # -- flags ---------------------------------------------------------

    @property
    def valid(self) -> bool:
        return bool(ACCESSOR_WORD.get(self.accessor_word, "Valid"))

    @property
    def modified(self) -> bool:
        return bool(ACCESSOR_WORD.get(self.accessor_word, "Modified"))

    @property
    def atomic(self) -> bool:
        return bool(ACCESSOR_WORD.get(self.accessor_word, "Atomic"))

    @property
    def scope_is_block(self) -> bool:
        """Scope flag: 1 if the last atomic used threadblock scope."""
        return bool(ACCESSOR_WORD.get(self.accessor_word, "Scope"))

    @property
    def dev_shared(self) -> bool:
        return bool(ACCESSOR_WORD.get(self.accessor_word, "DevShared"))

    @property
    def blk_shared(self) -> bool:
        return bool(ACCESSOR_WORD.get(self.accessor_word, "BlkShared"))

    @property
    def tag(self) -> int:
        return ACCESSOR_WORD.get(self.accessor_word, "Tag")

    def set_flag(self, name: str, value: bool) -> None:
        self.accessor_word = ACCESSOR_WORD.set(self.accessor_word, name, int(value))

    # -- views -----------------------------------------------------------

    @property
    def last_accessor(self) -> AccessorView:
        word = self.accessor_word
        return AccessorView(
            warp_id=ACCESSOR_WORD.get(word, "WarpID"),
            lane=ACCESSOR_WORD.get(word, "ThreadID"),
            dev_fence=ACCESSOR_WORD.get(word, "DevFenceID"),
            blk_fence=ACCESSOR_WORD.get(word, "BlkFenceID"),
            blk_bar=ACCESSOR_WORD.get(word, "BlkBarID"),
            warp_bar=ACCESSOR_WORD.get(word, "WarpBarID"),
            locks=WRITER_WORD.get(self.writer_word, "Locks"),
        )

    @property
    def last_writer(self) -> AccessorView:
        word = self.writer_word
        return AccessorView(
            warp_id=WRITER_WORD.get(word, "WarpID"),
            lane=WRITER_WORD.get(word, "ThreadID"),
            dev_fence=WRITER_WORD.get(word, "DevFenceID"),
            blk_fence=WRITER_WORD.get(word, "BlkFenceID"),
            blk_bar=WRITER_WORD.get(word, "BlkBarID"),
            warp_bar=WRITER_WORD.get(word, "WarpBarID"),
            locks=WRITER_WORD.get(word, "Locks"),
        )

    # -- updates ---------------------------------------------------------

    def set_accessor(
        self,
        tag: int,
        warp_id: int,
        lane: int,
        dev_fence: int,
        blk_fence: int,
        blk_bar: int,
        warp_bar: int,
    ) -> None:
        """Record the current access in the last-accessor word."""
        word = self.accessor_word
        word = ACCESSOR_WORD.set(word, "Tag", tag)
        word = ACCESSOR_WORD.set(word, "Valid", 1)
        word = ACCESSOR_WORD.set(word, "WarpID", warp_id)
        word = ACCESSOR_WORD.set(word, "ThreadID", lane)
        word = ACCESSOR_WORD.set(word, "DevFenceID", dev_fence)
        word = ACCESSOR_WORD.set(word, "BlkFenceID", blk_fence)
        word = ACCESSOR_WORD.set(word, "BlkBarID", blk_bar)
        word = ACCESSOR_WORD.set(word, "WarpBarID", warp_bar)
        self.accessor_word = word

    def set_writer(
        self,
        warp_id: int,
        lane: int,
        dev_fence: int,
        blk_fence: int,
        blk_bar: int,
        warp_bar: int,
        locks: int,
    ) -> None:
        """Record the current write in the last-writer word."""
        word = self.writer_word
        word = WRITER_WORD.set(word, "Locks", locks)
        word = WRITER_WORD.set(word, "WarpID", warp_id)
        word = WRITER_WORD.set(word, "ThreadID", lane)
        word = WRITER_WORD.set(word, "DevFenceID", dev_fence)
        word = WRITER_WORD.set(word, "BlkFenceID", blk_fence)
        word = WRITER_WORD.set(word, "BlkBarID", blk_bar)
        word = WRITER_WORD.set(word, "WarpBarID", warp_bar)
        self.writer_word = word


class MetadataTable:
    """The full shadow table: one entry per accessed granule.

    Entries are created lazily (the Valid bit plays the role of
    initialization, matching the paper's UVM-backed on-demand metadata).
    """

    def __init__(self, granularity_bytes: int = 4, entry_bytes: int = 16):
        self.granularity_bytes = granularity_bytes
        self.entry_bytes = entry_bytes
        self._entries: Dict[int, MetadataEntry] = {}

    def granule_of(self, address: int) -> int:
        """Index of the granule shadowing ``address``."""
        return address // self.granularity_bytes

    def tag_of(self, address: int) -> int:
        """The address tag stored to disambiguate granules (Figure 4)."""
        return self.granule_of(address) & ((1 << TAG_BITS) - 1)

    def lookup(self, address: int) -> MetadataEntry:
        """Fetch (creating if absent) the entry shadowing ``address``."""
        granule = self.granule_of(address)
        entry = self._entries.get(granule)
        if entry is None:
            entry = MetadataEntry()
            self._entries[granule] = entry
        return entry

    def peek(self, address: int) -> Optional[MetadataEntry]:
        """Fetch the entry without creating it."""
        return self._entries.get(self.granule_of(address))

    def clear(self) -> None:
        """Drop all entries (kernel boundary: implicit global barrier)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def shadow_bytes(self) -> int:
        """Bytes of metadata materialized so far."""
        return len(self._entries) * self.entry_bytes
