"""Memory metadata: the 16-byte per-granule entry of Figure 4.

Each 4-byte granule of global memory is shadowed by two packed 64-bit
words:

``accessor`` word (the *last accessor* — reader or writer)::

    [63-54] [53-48] [47-46] [45-31] [30-26]    [25-20]    [19-14]    [13-6]   [5-0]
    Tag     Flags   Unused  WarpID  ThreadID   DevFenceID BlkFenceID BlkBarID WarpBarID

    Flags = Valid | Modified | Atomic | Scope | DevShared | BlkShared

``writer`` word (the *last writer*)::

    [63-48] [47-46] [45-31] [30-26]    [25-20]    [19-14]    [13-6]   [5-0]
    Locks   Unused  WarpID  ThreadID   DevFenceID BlkFenceID BlkBarID WarpBarID

Field meanings (section 6.2): ``WarpID`` is the global warp index and
``ThreadID`` the 5-bit lane; the block ID is *derived* by dividing WarpID
by the kernel's warps-per-block.  The fence/barrier IDs snapshot the
accessor's synchronization counters at access time.  ``Locks`` is the
16-bit 2-way Bloom filter of locks held by the writer.  Counters are
narrow on purpose — they wrap exactly as the paper's do (section 6.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from repro.common.bitfield import BitField, BitStruct
from repro.gpu.ids import block_of_warp
from repro.obs.metrics import HOT

#: The last-accessor word (Figure 4, top row).
ACCESSOR_WORD = BitStruct(
    "accessor",
    [
        BitField("Tag", 63, 54),
        BitField("BlkShared", 53, 53),
        BitField("DevShared", 52, 52),
        BitField("Scope", 51, 51),
        BitField("Atomic", 50, 50),
        BitField("Modified", 49, 49),
        BitField("Valid", 48, 48),
        BitField("Unused", 47, 46),
        BitField("WarpID", 45, 31),
        BitField("ThreadID", 30, 26),
        BitField("DevFenceID", 25, 20),
        BitField("BlkFenceID", 19, 14),
        BitField("BlkBarID", 13, 6),
        BitField("WarpBarID", 5, 0),
    ],
)

#: The last-writer word (Figure 4, bottom row).
WRITER_WORD = BitStruct(
    "writer",
    [
        BitField("Locks", 63, 48),
        BitField("Unused", 47, 46),
        BitField("WarpID", 45, 31),
        BitField("ThreadID", 30, 26),
        BitField("DevFenceID", 25, 20),
        BitField("BlkFenceID", 19, 14),
        BitField("BlkBarID", 13, 6),
        BitField("WarpBarID", 5, 0),
    ],
)

#: Bit widths of the synchronization counters, shared with syncstate so the
#: live counters wrap at exactly the same width as the stored snapshots.
DEV_FENCE_BITS = ACCESSOR_WORD.field("DevFenceID").width  # 6
BLK_FENCE_BITS = ACCESSOR_WORD.field("BlkFenceID").width  # 6
BLK_BAR_BITS = ACCESSOR_WORD.field("BlkBarID").width  # 8
WARP_BAR_BITS = ACCESSOR_WORD.field("WarpBarID").width  # 6
TAG_BITS = ACCESSOR_WORD.field("Tag").width  # 10

# ---------------------------------------------------------------------------
# Compiled fast codec: every mask/shift baked into one closure per touch.
# The reference field-by-field path (BitStruct.get/set) stays the ground
# truth; the property tests assert both paths agree bit for bit.
# ---------------------------------------------------------------------------

#: Flag masks for single-bit tests without field lookups.
_VALID_MASK = ACCESSOR_WORD.field("Valid").mask
_MODIFIED_MASK = ACCESSOR_WORD.field("Modified").mask
_ATOMIC_MASK = ACCESSOR_WORD.field("Atomic").mask
_SCOPE_MASK = ACCESSOR_WORD.field("Scope").mask
_DEV_SHARED_MASK = ACCESSOR_WORD.field("DevShared").mask
_BLK_SHARED_MASK = ACCESSOR_WORD.field("BlkShared").mask
_FLAG_MASKS = {
    name: ACCESSOR_WORD.field(name).mask
    for name in ("Valid", "Modified", "Atomic", "Scope", "DevShared", "BlkShared")
}

_GET_TAG = ACCESSOR_WORD.compile_getter("Tag")
_GET_WRITER_LOCKS = WRITER_WORD.compile_getter("Locks")

#: Identity + sync snapshot, in AccessorView field order (sans locks).
_VIEW_FIELDS = (
    "WarpID", "ThreadID", "DevFenceID", "BlkFenceID", "BlkBarID", "WarpBarID"
)
_DECODE_ACCESSOR = ACCESSOR_WORD.compile_decoder(*_VIEW_FIELDS)
_DECODE_WRITER = WRITER_WORD.compile_decoder(*_VIEW_FIELDS, "Locks")

_SET_ACCESSOR = ACCESSOR_WORD.compile_setter(
    "Tag", "Valid", "WarpID", "ThreadID",
    "DevFenceID", "BlkFenceID", "BlkBarID", "WarpBarID",
)
_SET_WRITER = WRITER_WORD.compile_setter(
    "Locks", "WarpID", "ThreadID",
    "DevFenceID", "BlkFenceID", "BlkBarID", "WarpBarID",
)


@dataclass(frozen=True, slots=True)
class AccessorView:
    """Unpacked identity + sync snapshot of one metadata word."""

    warp_id: int
    lane: int
    dev_fence: int
    blk_fence: int
    blk_bar: int
    warp_bar: int
    locks: int = 0

    def block_id(self, warps_per_block: int) -> int:
        """The accessor's threadblock, derived from its warp ID."""
        return block_of_warp(self.warp_id, warps_per_block)


@lru_cache(maxsize=8192)
def _accessor_view(word: int, locks: int) -> AccessorView:
    """Decode-memo for last-accessor words.

    Hot loops touch the same few granules over and over; the (word, locks)
    pair fully determines the immutable view, so repeated touches share
    one decoded instance instead of re-extracting seven fields.
    """
    return AccessorView(*_DECODE_ACCESSOR(word), locks)


@lru_cache(maxsize=8192)
def _writer_view(word: int) -> AccessorView:
    """Decode-memo for last-writer words (locks live in the same word)."""
    return AccessorView(*_DECODE_WRITER(word))


class MetadataEntry:
    """One 16-byte metadata entry, stored as two packed 64-bit words."""

    __slots__ = ("accessor_word", "writer_word")

    def __init__(self, accessor_word: int = 0, writer_word: int = 0):
        self.accessor_word = accessor_word
        self.writer_word = writer_word

    # -- flags ---------------------------------------------------------

    @property
    def valid(self) -> bool:
        return bool(self.accessor_word & _VALID_MASK)

    @property
    def modified(self) -> bool:
        return bool(self.accessor_word & _MODIFIED_MASK)

    @property
    def atomic(self) -> bool:
        return bool(self.accessor_word & _ATOMIC_MASK)

    @property
    def scope_is_block(self) -> bool:
        """Scope flag: 1 if the last atomic used threadblock scope."""
        return bool(self.accessor_word & _SCOPE_MASK)

    @property
    def dev_shared(self) -> bool:
        return bool(self.accessor_word & _DEV_SHARED_MASK)

    @property
    def blk_shared(self) -> bool:
        return bool(self.accessor_word & _BLK_SHARED_MASK)

    @property
    def tag(self) -> int:
        return _GET_TAG(self.accessor_word)

    def set_flag(self, name: str, value: bool) -> None:
        mask = _FLAG_MASKS[name]
        if value:
            self.accessor_word |= mask
        else:
            self.accessor_word &= ~mask

    # -- views -----------------------------------------------------------

    @property
    def last_accessor(self) -> AccessorView:
        return _accessor_view(
            self.accessor_word, _GET_WRITER_LOCKS(self.writer_word)
        )

    @property
    def last_writer(self) -> AccessorView:
        return _writer_view(self.writer_word)

    # -- updates ---------------------------------------------------------

    def set_accessor(
        self,
        tag: int,
        warp_id: int,
        lane: int,
        dev_fence: int,
        blk_fence: int,
        blk_bar: int,
        warp_bar: int,
    ) -> None:
        """Record the current access in the last-accessor word."""
        self.accessor_word = _SET_ACCESSOR(
            self.accessor_word,
            tag, 1, warp_id, lane, dev_fence, blk_fence, blk_bar, warp_bar,
        )

    def set_writer(
        self,
        warp_id: int,
        lane: int,
        dev_fence: int,
        blk_fence: int,
        blk_bar: int,
        warp_bar: int,
        locks: int,
    ) -> None:
        """Record the current write in the last-writer word."""
        self.writer_word = _SET_WRITER(
            self.writer_word,
            locks, warp_id, lane, dev_fence, blk_fence, blk_bar, warp_bar,
        )


class MetadataTable:
    """The full shadow table: one entry per accessed granule.

    Entries are created lazily (the Valid bit plays the role of
    initialization, matching the paper's UVM-backed on-demand metadata).
    """

    def __init__(
        self,
        granularity_bytes: int = 4,
        entry_bytes: int = 16,
        max_entries: Optional[int] = None,
    ):
        self.granularity_bytes = granularity_bytes
        self.entry_bytes = entry_bytes
        #: Pressure cap (``IGuardConfig.metadata_max_entries``): admitting
        #: a granule past the cap evicts the oldest entry.  Eviction
        #: forgets history, so it can hide a race (bounded recall loss,
        #: like the paper's finite lock tables) but never invent one —
        #: the evicted granule simply looks like a first access again.
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: Dict[int, MetadataEntry] = {}
        #: Power-of-two granularities (all the config allows) divide by a
        #: shift on the hot path; anything else falls back to division.
        self._granule_shift: Optional[int] = (
            granularity_bytes.bit_length() - 1
            if granularity_bytes & (granularity_bytes - 1) == 0
            else None
        )

    def granule_of(self, address: int) -> int:
        """Index of the granule shadowing ``address``."""
        if self._granule_shift is not None:
            return address >> self._granule_shift
        return address // self.granularity_bytes

    def tag_of(self, address: int) -> int:
        """The address tag stored to disambiguate granules (Figure 4)."""
        return self.granule_of(address) & ((1 << TAG_BITS) - 1)

    def tag_of_granule(self, granule: int) -> int:
        """``tag_of`` for callers that already hold the granule index."""
        return granule & ((1 << TAG_BITS) - 1)

    def lookup(self, address: int) -> MetadataEntry:
        """Fetch (creating if absent) the entry shadowing ``address``."""
        return self.lookup_granule(self.granule_of(address))

    def lookup_granule(self, granule: int) -> MetadataEntry:
        """``lookup`` for callers that already hold the granule index."""
        entry = self._entries.get(granule)
        if entry is None:
            if (
                self.max_entries is not None
                and len(self._entries) >= self.max_entries
            ):
                # FIFO eviction: dicts preserve insertion order, so the
                # first key is the longest-resident granule.
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
                if HOT.enabled:
                    HOT.metadata_evictions.inc()
            entry = MetadataEntry()
            self._entries[granule] = entry
        return entry

    def peek(self, address: int) -> Optional[MetadataEntry]:
        """Fetch the entry without creating it."""
        return self._entries.get(self.granule_of(address))

    def clear(self) -> None:
        """Drop all entries (kernel boundary: implicit global barrier)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def shadow_bytes(self) -> int:
        """Bytes of metadata materialized so far."""
        return len(self._entries) * self.entry_bytes
