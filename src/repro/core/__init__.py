"""iGUARD itself: the in-GPU race detector (the paper's contribution).

The subpackage mirrors the paper's section 6 structure:

- :mod:`repro.core.metadata` — the 16-byte memory-metadata entry (Fig. 4),
- :mod:`repro.core.syncstate` — synchronization metadata counters (6.1),
- :mod:`repro.core.locktable` — lock tables and protocol inference (6.3, Fig. 7),
- :mod:`repro.core.checks` — the Table 2 preliminary and race checks (6.4),
- :mod:`repro.core.contention` — coalescing + dynamic backoff (6.5),
- :mod:`repro.core.uvm` — UVM-backed metadata allocation (6.1),
- :mod:`repro.core.report` — race records and the 1 MB report buffer (5),
- :mod:`repro.core.detector` — the instrumentation tool tying it together.
"""

from repro.core.config import IGuardConfig
from repro.core.detector import IGuard
from repro.core.diagnose import Diagnosis, diagnose, diagnose_all
from repro.core.report import RaceRecord, RaceType

__all__ = [
    "IGuard",
    "IGuardConfig",
    "RaceRecord",
    "RaceType",
    "Diagnosis",
    "diagnose",
    "diagnose_all",
]
