"""Backend-agnostic detection cores: the check engines behind the tools.

Historically each detector was one monolithic ``Tool``: the iGUARD
instrumentation callbacks and the Table 2 check state machine lived in a
single class, and every baseline re-implemented its own lifecycle and
report plumbing.  This module decouples the two layers:

- a :class:`DetectorCore` is a *pure* check engine.  It consumes typed
  events and owns exactly the detection state — metadata words, lock
  tables, vector clocks, synchronization counters — and produces race
  records.  It charges no overhead cycles, enforces no tool-specific
  limits, and never touches a device; those concerns stay in the ``Tool``
  adapters (:class:`repro.core.detector.IGuard`,
  :class:`repro.baselines.barracuda.Barracuda`, ...), which feed their
  core(s) from the instrumentation callbacks.
- the shared plumbing every backend needs — launch lifecycle, the race
  log, report emission, and the *routing contract* that says which events
  are keyed by a memory location and which mutate cross-location
  synchronization state — lives once in the :class:`DetectorCore` base.

The routing contract is what makes cores shardable
(:mod:`repro.core.sharding`): per-granule state partitions cleanly by
address hash, while sync mutations (barriers, fences, lock-inferring
atomics, HB release/acquire) must be applied to shared (or replicated)
synchronization state so every shard observes coherent epochs.

Two core families are provided:

- :class:`IGuardCore` — the paper's Table 2 two-tier state machine
  (metadata entries, lock inference, scoped checks, the same-epoch
  elision cache).  ``IGuard`` and ``ScoRD`` ride it.
- :class:`HBCore` — the FastTrack-style happens-before engine (per-thread
  vector clocks, per-address access histories, release/acquire through
  atomic locations).  ``Barracuda``, ``CURD`` and the pure
  ``FastTrack`` oracle ride it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.baselines.vectorclock import AccessHistory, VectorClock
from repro.core.checks import CurrentAccess, preliminary_checks, race_checks, select_md
from repro.core.config import IGuardConfig
from repro.core.metadata import AccessorView, MetadataTable
from repro.core.report import RaceLog, RaceRecord, RaceType
from repro.core.syncstate import SyncMetadata
from repro.faults.quarantine import poison as _poison
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent, SyncKind
from repro.gpu.instructions import AtomicOp, Scope, scope_covers
from repro.instrument.timing import Category
from repro.obs.metrics import HOT


@dataclass(frozen=True)
class DetectorCosts:
    """Cycle constants for the detector's own runtime (calibrated)."""

    #: Host-side costs (binary analysis, metadata setup, kernel loading)
    #: are constant per *application* on real hardware, where kernels run
    #: ~10^3x longer than this simulation's.  To keep their share of
    #: total runtime where Figure 13 puts it, they are charged as a
    #: fraction of each launch's native duration plus a small constant.
    nvbit_fixed: float = 20.0
    nvbit_fraction: float = 0.9
    nvbit_per_instruction: float = 0.1
    setup_fixed: float = 8.0
    setup_fraction: float = 0.25
    misc_fixed: float = 5.0
    misc_fraction: float = 0.1
    #: Trampoline cost of one injected instrumentation call.
    instrument_per_event: float = 4.0
    #: Metadata read + two-tier checks + writeback for one access.
    check_per_access: float = 14.0
    #: Handling one synchronization operation.
    sync_per_event: float = 6.0
    #: Cost of a coalesced (skipped) access: the warp intrinsics used to
    #: agree on a representative thread.
    coalesced_skip: float = 1.0


@dataclass
class LaunchStats:
    """Per-launch detector statistics, for tests and experiments."""

    kernel: str = ""
    accesses_checked: int = 0
    accesses_coalesced: int = 0
    #: Checked accesses whose Table 2 outcome was replayed from the
    #: same-epoch elision cache instead of re-derived (a subset of
    #: ``accesses_checked``; cycle charges are identical either way).
    accesses_elided: int = 0
    #: Accesses that took the record-only path because the static
    #: analyzer proved their instruction site race-free
    #: (``IGuardConfig.static_prune``).  Disjoint from
    #: ``accesses_checked``: a pruned access still pays every cycle
    #: charge and still writes metadata back, but runs no Table 2 checks.
    accesses_pruned: int = 0
    preliminary_pass: Dict[str, int] = field(default_factory=dict)
    races_reported: int = 0
    contention_cycles: float = 0.0
    uvm_faults: int = 0
    uvm_prefaulted_pages: int = 0
    metadata_entries: int = 0


#: A report sink: receives ``(record, md_view)`` and returns whether the
#: record's *site* was new.  Adapters install one so every core of a shard
#: group reports through the shared race log / forensic probe / stats.
ReportSink = Callable[[RaceRecord, object], bool]


class DetectorCore:
    """Base class of the pure check engines.

    Owns the plumbing every backend shares — the race log, the launch
    lifecycle, report emission — plus the *routing contract* used by
    :mod:`repro.core.sharding`:

    - :meth:`routing_key` maps a memory event to the integer its
      per-location state is keyed by (granule index or byte address);
    - :meth:`is_sync_mutation` says whether an event mutates cross-location
      synchronization state (and therefore must be broadcast / applied to
      the shared sync state rather than routed to one shard).

    Subclasses implement the check logic in :meth:`check_memory` (full
    detection for the routed owner) and :meth:`absorb_memory` (the
    sync-state side effects only, for non-owner shards replaying a
    broadcast event against their replicated sync state).
    """

    name = "core"

    def __init__(self, capacity: int, max_records: Optional[int] = None):
        self.races = RaceLog(capacity=capacity, max_records=max_records)
        #: Index of the current launch (0-based), tagged into race
        #: records so shard-merged reports re-sort into serial order.
        self.launch_index = -1
        #: Shard ordinal when this core is one of a sharded group.
        self.shard_id = 0
        #: Optional replacement for the default report path (install to
        #: share one race log across a shard group, or to collect raw
        #: records from a worker process).
        self.report_sink: Optional[ReportSink] = None

    # -- lifecycle ---------------------------------------------------------

    def begin_launch(self, launch) -> None:
        """A kernel launch starts: advance the index, reset per-launch state."""
        self.launch_index += 1
        self._reset_for_launch(launch)

    def _reset_for_launch(self, launch) -> None:  # pragma: no cover - hook
        pass

    def finish_launch(self, launch) -> None:
        """A kernel launch ended (or timed out): flush buffered races."""
        self.races.flush()

    # -- routing contract --------------------------------------------------

    def routing_key(self, event: MemoryEvent) -> int:
        """The integer key this event's per-location state is sharded by."""
        raise NotImplementedError

    def is_sync_mutation(self, event) -> bool:
        """Whether the event mutates cross-location synchronization state."""
        raise NotImplementedError

    # -- event application -------------------------------------------------

    def apply_sync(self, event: SyncEvent, launch) -> None:
        """Apply a synchronization event to the sync state."""
        raise NotImplementedError

    def absorb_memory(self, event: MemoryEvent, launch) -> None:
        """Apply only a memory event's sync-state side effects.

        Used by non-owner shards of a process-pool group replaying a
        broadcast event to keep their replicated sync state coherent.
        """

    def check_memory(
        self, event: MemoryEvent, key: int, launch, stats=None
    ) -> None:
        """Run full detection for a memory event this core owns."""
        raise NotImplementedError

    def handle(self, event, key, launch, stats=None) -> None:
        """:meth:`check_memory` with poison-event quarantine around it.

        The inline adapters dispatch through this so one raising event
        is absorbed (:mod:`repro.faults.quarantine`) instead of aborting
        the run; the batched drains get the same semantics from
        :meth:`check_run`'s resume path, so a poison event quarantines
        identically — same counter, same skipped check — in serial,
        sharded, and columnar replays.
        """
        try:
            self.check_memory(event, key, launch, stats)
        except Exception as exc:
            _poison(event, exc, "core")

    def check_run(self, run, launch, stats=None) -> None:
        """Check a queued run of routed ``(event, key)`` pairs in order."""
        check = self.check_memory
        event = None
        try:
            for event, key in run:
                check(event, key, launch, stats)
        except Exception as exc:
            self._quarantine_resume(run, event, exc, launch, stats)

    def _quarantine_resume(self, run, culprit, exc, launch, stats) -> None:
        """Absorb a poison event mid-drain, then check the rest of the run.

        ``culprit`` is the loop variable at raise time.  The recursion
        depth is bounded by the quarantine's absorption budget —
        :func:`repro.faults.quarantine.poison` re-raises once it is
        spent (and immediately for exempt policy exceptions).
        """
        _poison(culprit, exc, "core")
        for index, pair in enumerate(run):
            if pair[0] is culprit:
                rest = run[index + 1:]
                if rest:
                    self.check_run(list(rest), launch, stats)
                return

    def drain_batch(self, run, launch, stats=None) -> None:
        """Batched drain entry point for the sharded queue drivers.

        One call per queued chunk: the adapter-level per-event dispatch
        (Tool callback, bus publish, cost charging) is paid once per
        batch and the backend's tightest ``check_run`` loop does the
        rest.  Subclasses that can exploit batch structure (column
        slices, signature runs) override this; the default just guards
        the empty case and delegates.
        """
        if run:
            self.check_run(run, launch, stats)

    # -- report plumbing ---------------------------------------------------

    def emit(self, record: RaceRecord, md=None) -> bool:
        """Report a race record; returns whether its site was new."""
        if self.report_sink is not None:
            return self.report_sink(record, md)
        return self.races.report(record)


# ---------------------------------------------------------------------------
# The iGUARD Table 2 engine
# ---------------------------------------------------------------------------


class IGuardCore(DetectorCore):
    """The paper's check state machine, decoupled from the Tool adapter.

    Owns the per-granule metadata table, the synchronization metadata
    (counters + lock tables), the same-epoch elision cache, and the
    section 6.7 accessor-history ablation.  The adapter keeps everything
    that is *not* detection state: overhead charging, UVM residency,
    contention stalls, and coalescing (all of which depend on the serial
    event order, not on per-granule state).

    ``sync`` may be supplied to share one :class:`SyncMetadata` across a
    shard group (in-process sharding); otherwise the core owns its own
    and resets it per launch (standalone / process-pool replica).
    """

    name = "iGUARD"

    def __init__(
        self,
        config: IGuardConfig,
        costs: Optional[DetectorCosts] = None,
        sync: Optional[SyncMetadata] = None,
        shard_id: int = 0,
    ):
        super().__init__(capacity=config.race_buffer_capacity)
        self.config = config
        self.costs = costs if costs is not None else DetectorCosts()
        self.table = MetadataTable(
            config.granularity_bytes,
            config.metadata_entry_bytes,
            max_entries=config.metadata_max_entries,
        )
        self._owns_sync = sync is None
        self.sync = sync if sync is not None else SyncMetadata(
            config.lock_table_entries
        )
        self.shard_id = shard_id
        #: Optional forensic probe (repro.obs.forensics.ForensicProbe).
        self.probe = None
        #: Section 6.7 ablation state: per-granule history of the last N
        #: accessors (beyond the single packed metadata entry).
        self._history: Dict[int, Deque] = {}
        #: Same-epoch elision cache: granule -> (signature, preliminary
        #: label, post-writeback accessor word, post-writeback writer
        #: word).  Disabled under the accessor-history ablation, whose
        #: extra per-access history checks charge extra cycles that a
        #: replayed outcome could not reproduce.
        self._elide: Dict[int, Tuple] = {}
        # Fast-path mode: "on" / "off" are forced; "auto" samples each
        # kernel's elision hit rate over a warm-up window and disables
        # the bookkeeping below break-even (the signature build + dict
        # probe costs real time; an elision must repay it).  Disabled
        # outright under the accessor-history ablation, whose extra
        # per-access history checks charge extra cycles that a replayed
        # outcome could not reproduce.
        if config.accessor_history != 1 or config.fast_path is False:
            self._fast_mode = "off"
        elif config.fast_path == "auto":
            self._fast_mode = "auto"
        else:
            self._fast_mode = "on"
        self._fast_path = self._fast_mode != "off"
        #: Sticky per-kernel "auto" verdicts (kernel name -> keep?);
        #: later launches of a decided kernel skip the warm-up.
        self.fast_decisions: Dict[str, bool] = {}
        self._warmup_left = 0
        self._warmup_hits = 0
        #: Ground-truth lock hashes of the last writer per granule, kept
        #: only while metrics are enabled, to count 16-bit Bloom filter
        #: false positives (filters intersect, true lock sets disjoint).
        self._writer_lock_truth: Dict[int, frozenset] = {}

    # -- lifecycle ---------------------------------------------------------

    def _reset_for_launch(self, launch) -> None:
        # Fresh synchronization metadata per kernel: counters describe the
        # *running* kernel's threads.  Memory metadata is also reset — the
        # implicit barrier at kernel completion orders everything, so stale
        # entries could only cause false positives.  When the sync state is
        # shared across a shard group, the adapter resets it once and
        # rebinds every core through :meth:`rebind_sync`.
        if self._owns_sync:
            self.sync = SyncMetadata(self.config.lock_table_entries)
        self._elide.clear()
        self._writer_lock_truth.clear()
        if self._fast_mode == "auto":
            decision = self.fast_decisions.get(launch.kernel_name)
            if decision is None:
                # Undecided kernel: run the fast path through a warm-up
                # window, counting elision hits.
                self._fast_path = True
                self._warmup_left = self.config.fast_path_warmup
                self._warmup_hits = 0
            else:
                self._fast_path = decision
                self._warmup_left = 0
        if self.config.reset_metadata_per_kernel:
            self.table.clear()
            self._history.clear()

    def rebind_sync(self, sync: SyncMetadata) -> None:
        """Point this core at a (shared) sync state the adapter owns."""
        self.sync = sync
        self._owns_sync = False

    # -- routing contract --------------------------------------------------

    def routing_key(self, event: MemoryEvent) -> int:
        return self.table.granule_of(event.address)

    def is_sync_mutation(self, event) -> bool:
        # CAS/EXCH atomics mutate the lock tables (and bump the epoch);
        # other atomics only run the ordinary per-granule check.
        if isinstance(event, SyncEvent):
            return True
        return event.kind is AccessKind.ATOMIC and event.atomic_op in (
            AtomicOp.CAS,
            AtomicOp.EXCH,
        )

    # -- synchronization ---------------------------------------------------

    def apply_sync(self, event: SyncEvent, launch) -> None:
        where = event.where
        if event.kind is SyncKind.SYNCTHREADS:
            self.sync.on_syncthreads(where.block_id)
        elif event.kind is SyncKind.SYNCWARP:
            self.sync.on_syncwarp(where.warp_id)
        elif event.kind is SyncKind.FENCE:
            thread = where.thread_key
            self.sync.on_fence(thread, event.scope)
            # A fence completes pending lock acquires (activateLocks).
            table = self.sync.lock_table_for(where.warp_id, thread)
            activated = table.activate(event.scope)
            if activated:
                if HOT.enabled:
                    HOT.lock_activations.inc(activated)
                if self.probe is not None:
                    self.probe.on_lock(
                        "fence-activate", event,
                        f"{activated} lock(s), {event.scope.name.lower()} fence",
                    )
        if self.probe is not None:
            self.probe.on_sync(event)

    def absorb_memory(self, event: MemoryEvent, launch) -> None:
        if event.kind is AccessKind.ATOMIC:
            self.infer_locks(event)

    # -- lock inference ----------------------------------------------------

    def infer_locks(self, event: MemoryEvent) -> None:
        """Lock inference precedes race checking (Figure 6's orange boxes)."""
        where = event.where
        thread = where.thread_key
        if event.atomic_op is AtomicOp.CAS:
            if not self.config.infer_lock_on_failed_cas and not event.cas_succeeded:
                return
            warp_table = self.sync.warp_lock_table(where.warp_id)
            # More than one thread of the warp CASing together means the
            # kernel uses per-thread locks; the isThread bit is sticky.
            if len(event.active_mask) > 1:
                if not warp_table.is_thread and self.probe is not None:
                    self.probe.on_lock(
                        "infer-per-thread", event,
                        f"{len(event.active_mask)} lanes CAS together",
                    )
                warp_table.is_thread = True
            table = self.sync.lock_table_for(where.warp_id, thread)
            inserted = table.insert(event.address, event.scope)
            if HOT.enabled:
                HOT.lock_inserts.inc()
                if not inserted:
                    HOT.lock_evictions.inc()
            if self.probe is not None:
                self.probe.on_lock(
                    "cas-acquire" if inserted else "cas-overflow", event,
                    f"lock 0x{event.address:x}, {event.scope.name.lower()} scope",
                )
            self.sync.epoch += 1
        elif event.atomic_op is AtomicOp.EXCH:
            table = self.sync.lock_table_for(where.warp_id, thread)
            released = table.release(event.address, event.scope)
            if HOT.enabled and released:
                HOT.lock_releases.inc()
            if self.probe is not None:
                self.probe.on_lock(
                    "exch-release" if released else "exch-unmatched", event,
                    f"lock 0x{event.address:x}",
                )
            self.sync.epoch += 1

    # -- race detection ----------------------------------------------------

    def check_memory(
        self, event: MemoryEvent, granule: int, launch, stats=None
    ) -> None:
        """The Table 2 two-tier check + metadata writeback for one access.

        The adapter has already paid the access's overhead cycles (UVM
        residency, contention stalls, ``check_per_access``); this method
        is pure detection state.
        """
        config = self.config
        where = event.where
        thread = where.thread_key
        if stats is not None:
            stats.accesses_checked += 1
        if HOT.enabled:
            HOT.detector_checked.inc()

        entry = self.table.lookup_granule(granule)
        if self.probe is not None:
            self.probe.on_check(
                event, granule, entry.accessor_word, entry.writer_word
            )

        # Same-epoch fast path: if this thread already ran the full check
        # against exactly these metadata words with the same access kind,
        # scope and convergence mask, and no synchronization or lock-table
        # mutation has happened since (one epoch counter guards them all),
        # then every input to the Table 2 checks and to the writeback is
        # unchanged — replay the recorded outcome.  The signature stores
        # the *pre-check* words, so a granule rewritten by another thread
        # misses (its words differ) and re-checks.
        if self._fast_path:
            sig = (
                thread,
                event.kind,
                event.scope,
                event.active_mask,
                self.sync.epoch,
                entry.accessor_word,
                entry.writer_word,
            )
            cached = self._elide.get(granule)
            hit = cached is not None and cached[0] == sig
            if self._warmup_left:
                # "auto" warm-up: sample the hit rate, then decide.
                self._warmup_left -= 1
                if hit:
                    self._warmup_hits += 1
                if not self._warmup_left:
                    self._decide_fast_path(launch)
                    if not self._fast_path:
                        sig = None  # decision just disabled caching
            if hit:
                _, label, post_accessor, post_writer = cached
                entry.accessor_word = post_accessor
                entry.writer_word = post_writer
                if stats is not None:
                    stats.accesses_elided += 1
                if HOT.enabled:
                    HOT.detector_elided.inc()
                if label is not None:
                    if stats is not None:
                        counts = stats.preliminary_pass
                        counts[label] = counts.get(label, 0) + 1
                    if HOT.enabled:
                        HOT.detector_prelim_pass.inc()
                if self.probe is not None:
                    self.probe.on_outcome(
                        event, granule, label, None,
                        entry.accessor_word, entry.writer_word,
                    )
                return
        else:
            sig = None

        tag = self.table.tag_of_granule(granule)
        wpb = launch.warps_per_block

        locks_bloom = self.sync.lock_table_for(
            where.warp_id, thread
        ).locks_bloom_int()
        curr = CurrentAccess(
            kind=event.kind,
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            active_mask=event.active_mask,
            locks_bloom=locks_bloom,
        )

        # Update the sharing flags from the last accessor before checking
        # (section 6.2): they encode whether this granule has ever been
        # shared across warps or threadblocks.
        if entry.valid:
            last = entry.last_accessor
            if last.block_id(wpb) != curr.block_id:
                entry.set_flag("DevShared", True)
            elif last.warp_id != curr.warp_id:
                entry.set_flag("BlkShared", True)

        md = select_md(entry, curr)
        passed = preliminary_checks(
            curr, entry, md, self.sync, wpb, its_support=config.its_support
        )
        race_type = None
        if passed is not None:
            if stats is not None:
                counts = stats.preliminary_pass
                counts[passed] = counts.get(passed, 0) + 1
            if HOT.enabled:
                HOT.detector_prelim_pass.inc()
        else:
            if HOT.enabled:
                HOT.detector_race_tier.inc()
            race_type = race_checks(
                curr,
                entry,
                md,
                self.sync,
                wpb,
                its_support=config.its_support,
                lockset=config.lockset,
            )
            if race_type is not None:
                self.report_race(race_type, event, md, launch, granule)
            elif (
                HOT.enabled
                and config.lockset
                and md.locks
                and (md.locks & locks_bloom)
            ):
                # R5 stayed quiet because the 16-bit Bloom summaries
                # intersect; if the underlying lock-hash sets are in fact
                # disjoint, that intersection is a filter false positive
                # (a missed R5 report, the aliasing cost of section 6.3).
                truth = self._writer_lock_truth.get(granule)
                if truth is not None and truth.isdisjoint(
                    self.sync.lock_table_for(
                        where.warp_id, thread
                    ).held_hashes()
                ):
                    HOT.detector_bloom_fp.inc()

        # Section 6.7 ablation: also compare against older accessors when
        # a history depth beyond the packed entry is configured.
        if config.accessor_history > 1:
            self._check_history(curr, entry, event, granule, launch, wpb)

        self._write_back(entry, tag, curr, event, thread, locks_bloom)
        if HOT.enabled and event.is_write:
            self._writer_lock_truth[granule] = frozenset(
                self.sync.lock_table_for(where.warp_id, thread).held_hashes()
            )
        if config.accessor_history > 1:
            self._record_history(granule, curr, event, thread, locks_bloom)

        # Remember this check for replay.  Racy outcomes are never cached:
        # race records carry the access's instruction pointer, so a repeat
        # access from a different program location must re-run the checks
        # to report its own site.
        if sig is not None:
            if race_type is None:
                self._elide[granule] = (
                    sig, passed, entry.accessor_word, entry.writer_word
                )
            else:
                self._elide.pop(granule, None)

        if self.probe is not None:
            self.probe.on_outcome(
                event, granule, passed, race_type,
                entry.accessor_word, entry.writer_word,
            )

    def record_memory(
        self, event: MemoryEvent, granule: int, launch, stats=None
    ) -> None:
        """Metadata bookkeeping for a statically pruned access.

        The pruning contract (``IGuardConfig.static_prune``) lets the
        adapter skip the Table 2 checks for accesses whose instruction
        site the static analyzer proved race-free — but it may NOT skip
        the *writeback*: the 16-byte entry holds only the last accessor
        and writer, so dropping a pruned access's snapshot would leave a
        stale earlier access in the entry and change what the next
        *unpruned* access is checked against (unmasking or masking races
        and breaking byte-identity of reports).  This method is
        :meth:`check_memory` minus the checks: sharing-flag update from
        the last accessor, full writeback, and the HOT lock-truth shadow.
        The elision cache is left alone — a stale cached signature can
        only miss afterwards (the entry words changed), never replay a
        wrong outcome.
        """
        where = event.where
        thread = where.thread_key
        if stats is not None:
            stats.accesses_pruned += 1
        if HOT.enabled:
            HOT.detector_pruned.inc()

        entry = self.table.lookup_granule(granule)
        tag = self.table.tag_of_granule(granule)
        wpb = launch.warps_per_block
        locks_bloom = self.sync.lock_table_for(
            where.warp_id, thread
        ).locks_bloom_int()
        curr = CurrentAccess(
            kind=event.kind,
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            active_mask=event.active_mask,
            locks_bloom=locks_bloom,
        )
        if entry.valid:
            last = entry.last_accessor
            if last.block_id(wpb) != curr.block_id:
                entry.set_flag("DevShared", True)
            elif last.warp_id != curr.warp_id:
                entry.set_flag("BlkShared", True)
        self._write_back(entry, tag, curr, event, thread, locks_bloom)
        if HOT.enabled and event.is_write:
            self._writer_lock_truth[granule] = frozenset(
                self.sync.lock_table_for(where.warp_id, thread).held_hashes()
            )

    def _decide_fast_path(self, launch) -> None:
        """End of an "auto" warm-up window: keep or drop the fast path.

        The verdict sticks for every later launch of the same kernel (on
        this core).  Elision is outcome-neutral by construction — a hit
        replays the recorded check verbatim — so the decision changes
        wall-clock time only, never detection output.
        """
        config = self.config
        keep = (
            self._warmup_hits
            >= config.fast_path_break_even * config.fast_path_warmup
        )
        self.fast_decisions[launch.kernel_name] = keep
        if not keep:
            self._fast_path = False
            self._elide.clear()
        if HOT.enabled:
            if keep:
                HOT.fastpath_auto_kept.inc()
            else:
                HOT.fastpath_auto_disabled.inc()

    def check_run(self, run, launch, stats=None) -> None:
        """Check a queued run of routed ``(event, granule)`` pairs in order.

        Semantically identical to calling :meth:`check_memory` once per
        pair — batched drivers use it to drain a shard's queue between
        sync-state mutations.  The loop hoists lookups and inlines the
        same-epoch elision *hit* (the hot case in steady-state kernels):
        within a run the sync state is frozen (runs end at every barrier,
        fence, and lock-mutating atomic), so the epoch is a loop constant.
        Misses and probe-attached runs fall back to ``check_memory``.
        """
        if not self._fast_path or self.probe is not None or self._warmup_left:
            # The per-event path also carries the "auto" warm-up
            # accounting, so an undecided kernel drains through it until
            # the window closes.
            check = self.check_memory
            event = None
            try:
                for event, granule in run:
                    check(event, granule, launch, stats)
            except Exception as exc:
                self._quarantine_resume(run, event, exc, launch, stats)
            return
        lookup = self.table.lookup_granule
        elide = self._elide
        epoch = self.sync.epoch
        check = self.check_memory
        hits = 0
        prelim = 0
        labels: Dict[str, int] = {}
        event = None
        try:
            for event, granule in run:
                cached = elide.get(granule)
                if cached is None:
                    check(event, granule, launch, stats)
                    continue
                sig = cached[0]
                where = event.where
                entry = lookup(granule)
                if (
                    sig[4] == epoch
                    and sig[5] == entry.accessor_word
                    and sig[6] == entry.writer_word
                    and sig[1] is event.kind
                    and sig[0] == (where.warp_id, where.lane)
                    and sig[3] == event.active_mask
                    and sig[2] is event.scope
                ):
                    entry.accessor_word = cached[2]
                    entry.writer_word = cached[3]
                    hits += 1
                    label = cached[1]
                    if label is not None:
                        prelim += 1
                        labels[label] = labels.get(label, 0) + 1
                else:
                    check(event, granule, launch, stats)
        except Exception as exc:
            # Flush the elision accounting accrued so far *before* the
            # resume recursion, so totals match the per-event path.
            self._flush_elision(hits, prelim, labels, stats)
            self._quarantine_resume(run, event, exc, launch, stats)
            return
        self._flush_elision(hits, prelim, labels, stats)

    def _flush_elision(self, hits, prelim, labels, stats) -> None:
        """Credit a drain's accumulated elision-hit accounting."""
        if not hits:
            return
        if stats is not None:
            stats.accesses_checked += hits
            stats.accesses_elided += hits
            counts = stats.preliminary_pass
            for label, n in labels.items():
                counts[label] = counts.get(label, 0) + n
        if HOT.enabled:
            HOT.detector_checked.inc(hits)
            HOT.detector_elided.inc(hits)
            if prelim:
                HOT.detector_prelim_pass.inc(prelim)

    # -- accessor-history ablation (section 6.7) ---------------------------

    def _check_history(self, curr, entry, event, granule, launch, wpb) -> None:
        """Check the current access against every remembered accessor."""
        history = self._history.get(granule)
        if not history:
            return
        config = self.config
        for view, was_write in history:
            if not (event.is_write or was_write):
                continue  # two reads cannot race
            launch.timing.charge(
                Category.DETECTION, self.costs.check_per_access / 2
            )
            passed = preliminary_checks(
                curr, entry, view, self.sync, wpb,
                its_support=config.its_support,
            )
            if passed is not None:
                continue
            race_type = race_checks(
                curr, entry, view, self.sync, wpb,
                its_support=config.its_support, lockset=config.lockset,
            )
            if race_type is not None:
                self.report_race(race_type, event, view, launch, granule)

    def _record_history(self, granule, curr, event, thread, locks_bloom) -> None:
        history = self._history.get(granule)
        if history is None:
            history = deque(maxlen=self.config.accessor_history)
            self._history[granule] = history
        view = AccessorView(
            warp_id=curr.warp_id,
            lane=curr.lane,
            dev_fence=self.sync.dev_fence(thread),
            blk_fence=self.sync.blk_fence(thread),
            blk_bar=self.sync.blk_bar(curr.block_id),
            warp_bar=self.sync.warp_bar(curr.warp_id),
            locks=locks_bloom,
        )
        history.append((view, event.is_write))

    def _write_back(
        self, entry, tag: int, curr: CurrentAccess, event: MemoryEvent,
        thread, locks_bloom: int,
    ) -> None:
        """Record the current access into the metadata entry (section 6.2)."""
        dev_fence = self.sync.dev_fence(thread)
        blk_fence = self.sync.blk_fence(thread)
        blk_bar = self.sync.blk_bar(curr.block_id)
        warp_bar = self.sync.warp_bar(curr.warp_id)

        entry.set_accessor(
            tag=tag,
            warp_id=curr.warp_id,
            lane=curr.lane,
            dev_fence=dev_fence,
            blk_fence=blk_fence,
            blk_bar=blk_bar,
            warp_bar=warp_bar,
        )
        if event.is_write:
            entry.set_writer(
                warp_id=curr.warp_id,
                lane=curr.lane,
                dev_fence=dev_fence,
                blk_fence=blk_fence,
                blk_bar=blk_bar,
                warp_bar=warp_bar,
                locks=locks_bloom,
            )
            entry.set_flag("Modified", True)
            if event.kind is AccessKind.ATOMIC:
                entry.set_flag("Atomic", True)
                entry.set_flag(
                    "Scope", not scope_covers(event.scope, Scope.DEVICE)
                )
            else:
                entry.set_flag("Atomic", False)
                entry.set_flag("Scope", False)

    def report_race(
        self, race_type, event: MemoryEvent, md, launch, granule: int
    ) -> None:
        where = event.where
        record = RaceRecord(
            race_type=race_type,
            kernel=launch.kernel_name,
            ip=event.ip,
            access=event.kind.value,
            address=event.address,
            location=launch.device.memory.describe(event.address),
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            prev_warp_id=md.warp_id,
            prev_lane=md.lane,
            launch_index=self.launch_index,
            batch=event.batch,
            granule=granule,
        )
        if HOT.enabled:
            HOT.detector_races.inc()
        if self.probe is not None:
            self.probe.on_race(record, md)
        self.emit(record, md)


# ---------------------------------------------------------------------------
# The happens-before (FastTrack) engine
# ---------------------------------------------------------------------------


@dataclass
class ThreadState:
    """Per-thread vector clock plus pending release snapshots."""

    vc: VectorClock = field(default_factory=VectorClock)
    release_dev: Optional[VectorClock] = None
    release_blk: Optional[VectorClock] = None


@dataclass
class LocationSync:
    """Release clocks carried by an atomic location."""

    dev: VectorClock = field(default_factory=VectorClock)
    blk: Dict[int, VectorClock] = field(default_factory=dict)


class HBSyncState:
    """Cross-address happens-before state: thread VCs + atomic locations.

    The analogue of :class:`~repro.core.syncstate.SyncMetadata` for the
    vector-clock family — everything a memory *check* reads but only
    synchronization events (barriers, fences, atomics) mutate.  Shared
    across an in-process shard group, replicated per shard in a
    process-pool group.
    """

    def __init__(self):
        self.threads: Dict[int, ThreadState] = {}
        self.locations: Dict[int, LocationSync] = {}

    def thread(self, tid: int) -> ThreadState:
        state = self.threads.get(tid)
        if state is None:
            state = ThreadState()
            state.vc.bump(tid)
            self.threads[tid] = state
        return state

    def location(self, address: int) -> LocationSync:
        location = self.locations.get(address)
        if location is None:
            location = LocationSync()
            self.locations[address] = location
        return location


class HBCore(DetectorCore):
    """The FastTrack-style happens-before engine behind the HB baselines.

    Configuration knobs map the three backends onto one state machine:

    - ``its`` — model ``syncwarp`` as a warp barrier join (Volta ITS
      awareness).  Barracuda assumes pre-Volta lockstep warps and ignores
      ``syncwarp``; the pure FastTrack oracle honors it.
    - ``same_warp_ordered`` — treat same-warp accesses as lockstep-ordered
      (Barracuda's assumption, which hides ITS races).  The oracle turns
      it off.
    - ``race_type`` — the tag reported for every race (HB detectors do
      not classify by GPU-specific cause).
    """

    name = "happens-before"

    def __init__(
        self,
        its: bool = False,
        same_warp_ordered: bool = True,
        race_type: RaceType = RaceType.INTER_BLOCK,
        capacity: int = 16_384,
        sync: Optional[HBSyncState] = None,
        shard_id: int = 0,
    ):
        super().__init__(capacity=capacity)
        self.its = its
        self.same_warp_ordered = same_warp_ordered
        self.race_type = race_type
        self._owns_sync = sync is None
        self.sync = sync if sync is not None else HBSyncState()
        self.shard_id = shard_id
        self._histories: Dict[int, AccessHistory] = {}

    # -- lifecycle ---------------------------------------------------------

    def _reset_for_launch(self, launch) -> None:
        if self._owns_sync:
            self.sync = HBSyncState()
        self._histories = {}

    def rebind_sync(self, sync: HBSyncState) -> None:
        """Point this core at a (shared) sync state the adapter owns."""
        self.sync = sync
        self._owns_sync = False

    # -- routing contract --------------------------------------------------

    def routing_key(self, event: MemoryEvent) -> int:
        return event.address

    def is_sync_mutation(self, event) -> bool:
        # Every atomic is synchronization here: release/acquire edges
        # through the location mutate thread VCs and location clocks.
        if isinstance(event, SyncEvent):
            return True
        return event.kind is AccessKind.ATOMIC

    # -- synchronization ---------------------------------------------------

    def apply_sync(self, event: SyncEvent, launch) -> None:
        if event.kind is SyncKind.SYNCTHREADS:
            self._barrier_join(event.where.block_id, launch)
        elif event.kind is SyncKind.SYNCWARP:
            if self.its:
                self._warp_join(event.where.warp_id, launch)
            # Without ITS support warp barriers are not modeled (lockstep
            # is assumed for whole warps instead).
        elif event.kind is SyncKind.FENCE:
            # CUDA fence semantics are per-thread: "the effect of a
            # threadfence is limited to writes of the calling thread only"
            # (section 7.1) — a fence does NOT transitively publish writes
            # the thread merely observed through a barrier.  The release
            # snapshot therefore carries only the calling thread's own
            # epoch, which is how Barracuda catches the leader-only-fence
            # grid-barrier bug.
            tid = event.where.global_tid
            state = self.sync.thread(tid)
            snapshot = VectorClock({tid: state.vc.get(tid)})
            if scope_covers(event.scope, Scope.DEVICE):
                state.release_dev = snapshot
                state.release_blk = snapshot
            else:
                state.release_blk = snapshot
            state.vc.bump(tid)

    def _barrier_join(self, block_id: int, launch) -> None:
        """syncthreads: join the clocks of every thread in the block."""
        base = block_id * launch.block_dim
        tids = range(base, base + launch.block_dim)
        joined = VectorClock()
        for tid in tids:
            joined.join(self.sync.thread(tid).vc)
        for tid in tids:
            state = self.sync.thread(tid)
            state.vc = joined.copy()
            state.vc.bump(tid)

    def _warp_join(self, warp_id: int, launch) -> None:
        """syncwarp under ITS: join the clocks of the warp's threads."""
        base = warp_id * launch.warp_size
        tids = range(base, base + launch.warp_size)
        joined = VectorClock()
        for tid in tids:
            joined.join(self.sync.thread(tid).vc)
        for tid in tids:
            state = self.sync.thread(tid)
            state.vc = joined.copy()
            state.vc.bump(tid)

    def absorb_memory(self, event: MemoryEvent, launch) -> None:
        if event.kind is AccessKind.ATOMIC:
            self.atomic_sync(event)

    def atomic_sync(self, event: MemoryEvent) -> None:
        """Atomics are synchronization: release-acquire through the location."""
        where = event.where
        state = self.sync.thread(where.global_tid)
        location = self.sync.location(event.address)
        block_scoped = not scope_covers(event.scope, Scope.DEVICE)
        # Acquire: the atomic reads the location, picking up releases.
        if not block_scoped:
            state.vc.join(location.dev)
        blk = location.blk.get(where.block_id)
        if blk is not None:
            state.vc.join(blk)
        # Release: a fence executed earlier publishes writes through this
        # atomic.  Without a prior fence nothing is released — which is
        # how the HB family catches missing-threadfence races.
        if state.release_dev is not None and not block_scoped:
            location.dev.join(state.release_dev)
        if state.release_blk is not None:
            location.blk.setdefault(where.block_id, VectorClock()).join(
                state.release_blk
            )

    # -- race detection ----------------------------------------------------

    def check_memory(
        self, event: MemoryEvent, address: int, launch, stats=None
    ) -> None:
        where = event.where
        tid = where.global_tid
        state = self.sync.thread(tid)
        if stats is not None:
            stats.accesses_checked += 1

        history = self._histories.get(address)
        if history is None:
            history = AccessHistory()
            self._histories[address] = history

        clock = state.vc.get(tid)
        if event.kind is AccessKind.LOAD:
            self._check_read(event, state, history, launch)
            history.record_read(tid, clock, where.warp_id, state.vc)
        else:
            self._check_write(event, state, history, launch)
            history.record_write(tid, clock, where.warp_id)

    def _check_read(self, event, state, history: AccessHistory, launch) -> None:
        w = history.write_epoch
        if w is None:
            return
        if self.same_warp_ordered and history.write_warp == event.where.warp_id:
            return  # lockstep assumption: same-warp accesses are ordered
        if not state.vc.dominates_epoch(w):
            self.report_race(event, launch)

    def _check_write(self, event, state, history: AccessHistory, launch) -> None:
        warp = event.where.warp_id
        w = history.write_epoch
        if (
            w is not None
            and not (self.same_warp_ordered and history.write_warp == warp)
            and not state.vc.dominates_epoch(w)
        ):
            self.report_race(event, launch)
            return
        for _tid, _clock, read_warp in history.concurrent_readers(state.vc):
            if not (self.same_warp_ordered and read_warp == warp):
                self.report_race(event, launch)
                return

    # check_run: the base implementation (with its quarantine resume
    # path) already checks pairs in order; no HB-specific batching.

    def report_race(self, event: MemoryEvent, launch) -> None:
        where = event.where
        # HB detectors do not classify races by GPU-specific cause;
        # records are tagged with the configured generic race type.
        record = RaceRecord(
            race_type=self.race_type,
            kernel=launch.kernel_name,
            ip=event.ip,
            access=event.kind.value,
            address=event.address,
            location=launch.device.memory.describe(event.address),
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            prev_warp_id=-1,
            prev_lane=-1,
            launch_index=self.launch_index,
            batch=event.batch,
            granule=event.address,
        )
        if HOT.enabled:
            HOT.detector_races.inc()
        self.emit(record, None)
