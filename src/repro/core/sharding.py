"""Sharded detection: partition one trace's checks across detector cores.

iGUARD keys essentially all detector state by address granule — metadata
words, lock summaries, and the Table 2 checks are per-granule — so the
check engine partitions cleanly by a hash of each event's *routing key*
(granule index for :class:`~repro.core.engine.IGuardCore`, byte address
for :class:`~repro.core.engine.HBCore`).  Only synchronization cuts
across the partition: barriers, fences, and lock-mutating / release-
acquire atomics touch state every check reads, so those events are
**broadcast** — applied once to the synchronization state all shards
share (in-process) or absorbed by every replica (process pool).

Event routing table (what broadcasts vs routes):

=====================  ==================  ==========================
event                  IGuardCore          HBCore
=====================  ==================  ==========================
load / store           route by granule    route by address
atomic CAS/EXCH        broadcast + route   broadcast (release/acquire)
other atomics          route by granule    broadcast (release/acquire)
syncthreads/syncwarp   broadcast           broadcast
fence                  broadcast           broadcast
launch begin/end       broadcast           broadcast
=====================  ==================  ==========================

Three execution modes, all producing byte-identical race reports:

- **inline** (the default ``--shards N`` path): the Tool adapters route
  each event to its owning core *immediately*, in serial event order.
  Identical to serial detection in every observable — races, stats, and
  cycle breakdowns bit-for-bit — for any shard count.
- **batched** (:class:`BatchShardedIGuard`): routed events queue per
  shard and drain through the cores' tight ``check_run`` loops at every
  sync-mutation boundary; shard-local race records are re-sorted into
  serial order (:func:`repro.core.report.merge_race_records`) at launch
  end.  Used by :func:`replay_trace_sharded`, the fast replay driver
  behind the bench's shard-scaling measurement.
- **process pool** (``mode="processpool"`` of
  :func:`replay_workload_sharded`): one replica per shard replays the
  whole trace in a worker process, absorbing broadcasts against its own
  replicated sync state and checking only its shard's events; records
  merge deterministically in the parent.  Composes with the suite
  runner's ``--workers`` cell parallelism — inside an already-parallel
  (daemonic) worker the pool falls back to inline execution, same
  results.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.fasttrack import FastTrack
from repro.common.budget import queue_cap
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.core.detector import IGuard
from repro.core.report import RaceRecord, merge_race_records
from repro.errors import OutOfMemoryError, TimeoutError_, UnsupportedFeatureError
from repro.faults.quarantine import poison as _poison
from repro.gpu.events import (
    AccessKind,
    AllocEvent,
    KernelEndEvent,
    LaunchEvent,
    MemoryEvent,
    SyncEvent,
)
from repro.gpu.device import KernelRun
from repro.gpu.instructions import AtomicOp
from repro.instrument.nvbit import LaunchInfo
from repro.instrument.timing import Category, TimingBreakdown
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import HOT


def _observe_shard_drain(shard: int, depth: int) -> None:
    """Per-shard sampled series for the telemetry pipeline.

    Named ``shard.<i>.*`` so the OpenMetrics exposition folds them into
    one labelled family (``iguard_shard_drain_depth{shard="i"}``); the
    gauge is last-value — the depth this shard drained at.  (Distinct
    from the unlabelled ``shard.queue_depth`` HOT *histogram*, which
    aggregates across shards.)  Called at sync-barrier drains only —
    never per event — and only behind ``HOT.enabled``.  The per-shard
    routed *counter* lives in the detector's launch-end accounting,
    which both the inline and batched modes share.
    """
    obs_metrics.get_registry().gauge(f"shard.{shard}.drain_depth").set(depth)

#: Process-wide default shard count, consulted by every detector adapter
#: whose ``shards`` argument is None.  The experiment CLIs arm it so one
#: ``--shards`` flag reaches detectors constructed deep inside workers
#: (the same pattern the chaos and cell-timeout knobs use).
ENV_VAR = "IGUARD_SHARDS"

#: Odd 64-bit multiplier (golden-ratio) for the router's hash mix.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def default_shards() -> int:
    """The shard count adapters use when none is passed explicitly."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        shards = int(raw)
    except ValueError:
        return 1
    return max(1, shards)


def shard_of(key: int, shards: int) -> int:
    """Deterministic granule/address router: ``key -> [0, shards)``.

    A multiplicative mix rather than ``key % shards``: granule indices
    arrive in arithmetic progressions (arrays walked with strides), and a
    bare modulus would send entire strided sweeps to one shard whenever
    the stride shares a factor with the shard count.
    """
    if shards <= 1:
        return 0
    return (((key * _MIX) & _MASK) >> 17) % shards


# ---------------------------------------------------------------------------
# Batched in-process driver
# ---------------------------------------------------------------------------


class BatchShardedIGuard(IGuard):
    """iGUARD with per-shard queues drained at sync-mutation boundaries.

    Between two synchronization mutations every routed check depends only
    on its own granule's state plus the (frozen) sync state, so queueing
    routed events and draining each shard's queue as one tight
    ``check_run`` is order-equivalent to interleaved serial checking.
    Race records surface out of serial order during a drain, so the
    report sink defers them; the launch-end merge re-sorts into exact
    serial order before feeding the shared race log (first-record-wins
    site types depend on it).

    Stats and races are byte-identical to serial; timing breakdowns are
    identical too (front-end charges stay per-event in stream order).
    """

    #: Static pruning stays off here: a pruned access would write its
    #: metadata back *immediately* while earlier queued checks to the
    #: same granule are still waiting in the shard queue, reordering
    #: metadata updates relative to checks.
    static_prune_supported = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues: List[list] = [[] for _ in range(self.shards)]
        self._deferred: List[RaceRecord] = []
        #: Deepest single-shard queue ever drained — the bench's
        #: shard-scaling forensics read this (deep queues at low shard
        #: counts mean drains serialize on one hot shard).
        self.queue_depth_max = 0
        #: Queued events since the last drain; at ``queue_cap()`` the
        #: producer forces an early drain (blocking backpressure), so an
        #: adversarial barrier-free stream cannot grow queues unboundedly.
        #: Output-identical: drains between sync mutations are
        #: order-equivalent, and deferred records re-sort at launch end.
        self._pending = 0

    def _report_sink(self, record, md) -> bool:
        self._deferred.append(record)
        return True

    def _dispatch(self, shard, event, granule, launch) -> None:
        self._queues[shard].append((event, granule))
        self._pending += 1
        if self._pending >= queue_cap():
            self._sync_barrier()
            if HOT.enabled:
                HOT.backpressure_drains.inc()

    def _sync_barrier(self) -> None:
        self._pending = 0
        launch = self._launch
        if launch is None:
            return
        drained = False
        stats = self._current
        for shard, queue in enumerate(self._queues):
            if queue:
                drained = True
                depth = len(queue)
                if depth > self.queue_depth_max:
                    self.queue_depth_max = depth
                if HOT.enabled:
                    HOT.shard_queue_depth.observe(depth)
                    _observe_shard_drain(shard, depth)
                self.cores[shard].drain_batch(queue, launch, stats)
                queue.clear()
        if drained and HOT.enabled:
            HOT.shard_flushes.inc()

    def on_launch_begin(self, launch) -> None:
        super().on_launch_begin(launch)
        self._queues = [[] for _ in range(self.shards)]

    def _finish(self, launch) -> None:
        self._sync_barrier()
        self._merge_deferred()
        super()._finish(launch)

    def _merge_deferred(self) -> None:
        """Feed deferred records to the shared log in serial order."""
        records = self._deferred
        if not records:
            return
        records.sort(key=RaceRecord.serial_sort_key)
        current = self._current
        for record in records:
            if self.races.report(record) and current is not None:
                current.races_reported += 1
        self._deferred = []


class BatchShardedFastTrack(FastTrack):
    """FastTrack with per-shard queues drained at sync boundaries.

    The HB engine's cross-location state (thread/location vector clocks)
    only mutates at barriers, fences, and atomics — exactly the events
    :class:`~repro.core.engine.HBCore` broadcasts — so queueing routed
    loads/stores between two sync mutations and draining each shard's
    queue as one :meth:`~repro.core.engine.DetectorCore.drain_batch` is
    order-equivalent to interleaved serial checking (per-address history
    order is preserved inside a queue; distinct addresses share no
    state).  Race records surface out of serial order, so the sink
    defers and the launch-end merge re-sorts before the shared log.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues: List[list] = [[] for _ in range(self.shards)]
        self._deferred: List[RaceRecord] = []
        self._launch = None
        self.queue_depth_max = 0
        #: See BatchShardedIGuard._pending — bounded-queue backpressure.
        self._pending = 0

    def _report_sink(self, record, md) -> bool:
        self._deferred.append(record)
        return True

    def on_launch_begin(self, launch) -> None:
        super().on_launch_begin(launch)
        self._launch = launch
        self._queues = [[] for _ in range(self.shards)]

    def _dispatch(self, shard, event, launch) -> None:
        self._queues[shard].append((event, event.address))
        self._pending += 1
        if self._pending >= queue_cap():
            self._sync_barrier()
            if HOT.enabled:
                HOT.backpressure_drains.inc()

    def _sync_barrier(self) -> None:
        self._pending = 0
        launch = self._launch
        if launch is None:
            return
        drained = False
        for shard, queue in enumerate(self._queues):
            if queue:
                drained = True
                depth = len(queue)
                if depth > self.queue_depth_max:
                    self.queue_depth_max = depth
                if HOT.enabled:
                    HOT.shard_queue_depth.observe(depth)
                    _observe_shard_drain(shard, depth)
                self.cores[shard].drain_batch(queue, launch)
                queue.clear()
        if drained and HOT.enabled:
            HOT.shard_flushes.inc()

    def on_launch_end(self, launch) -> None:
        self._sync_barrier()
        self._merge_deferred()
        self._launch = None
        super().on_launch_end(launch)

    def _merge_deferred(self) -> None:
        """Feed deferred records to the shared log in serial order."""
        records = self._deferred
        if not records:
            return
        records.sort(key=RaceRecord.serial_sort_key)
        for record in records:
            self.races.report(record)
        self._deferred = []


# ---------------------------------------------------------------------------
# Fast batched replay: the shard-scaling measurement path
# ---------------------------------------------------------------------------


@dataclass
class ShardedReplayResult:
    """Outcome of one :func:`replay_trace_sharded` pass."""

    tool: BatchShardedIGuard
    events: int  # accesses checked + coalesced (the bench throughput base)
    seconds: float  # wall-clock spent inside the replay loop


class _ShardedDrain:
    """The batched sharded replay loop, feedable one chunk at a time.

    A purpose-built drain loop, not the event bus: per-event dispatch
    overhead (bus publish, Tool callback, one ``timing.charge`` per cost
    category per event) is hoisted out of the hot path and the fixed
    per-event costs are charged in bulk per launch.  Detection semantics
    are untouched — the same coalescing filter, lock inference, UVM and
    contention models run in serial stream order, and every check runs
    through the same cores — so race reports and stats match the serial
    pipeline exactly; only the *association order* of float cycle charges
    differs (bulk sums vs running sums).

    :meth:`feed` consumes any slice of the stream and leaves all
    per-launch state (hoisted closures, bulk-charge counters, the open
    launch) on the instance, so a launch may span chunk boundaries —
    this is what lets the columnar driver replay chunk by chunk without
    ever materializing the whole trace.  An optional ``routes`` iterator
    supplies precomputed ``(granule, shard)`` pairs for the chunk's
    memory events in row order (the columnar container hashes the whole
    address column vectorized), replacing the per-event granule shift
    and hash mix.
    """

    def __init__(self, tool: "BatchShardedIGuard", device, config: IGuardConfig):
        self.tool = tool
        self.device = device
        self.config = config
        self.launch: Optional[LaunchInfo] = None
        self.checked_events = 0
        self.seconds = 0.0
        # Per-launch hoisted state (bound while self.launch is not None).
        self._stats = None
        self._shard_appends: List = []
        self._coalescing = True
        self._co_batch = self._co_granule = -1
        self._uvm_active = False
        self._uvm_access = None
        self._contention_access = None
        self._n_checked = self._n_coalesced = self._n_sync = 0
        self._uvm_cycles = self._stall_cycles = 0.0
        self._routed: List[int] = []
        #: Events queued since the last drain (backpressure counter).
        self._pending = 0

    def feed(self, events, routes=None) -> None:
        """Replay one slice of the stream (a chunk, or the whole trace)."""
        tool = self.tool
        device = self.device
        config = self.config
        shards = tool.shards
        instrument = tool.costs.instrument_per_event
        check_cost = tool.costs.check_per_access
        sync_cost = tool.costs.sync_per_event
        coal_cost = tool.costs.coalesced_skip

        # Loop-invariant bindings: every global/attribute the per-event
        # hot path touches is a local, so the loop body is pure LOAD_FAST.
        mem_cls, sync_cls = MemoryEvent, SyncEvent
        launch_cls, end_cls, alloc_cls = LaunchEvent, KernelEndEvent, AllocEvent
        atomic_kind, load_kind = AccessKind.ATOMIC, AccessKind.LOAD
        cas_op, exch_op = AtomicOp.CAS, AtomicOp.EXCH
        multi = shards > 1
        route_next = routes.__next__ if routes is not None else None

        # Cross-chunk state in from the instance.
        launch = self.launch
        checked_events = 0
        stats = self._stats
        shard_appends = self._shard_appends
        coalescing = self._coalescing
        co_batch, co_granule = self._co_batch, self._co_granule
        uvm_active = self._uvm_active
        uvm_access = self._uvm_access
        contention_access = self._contention_access
        n_checked, n_coalesced = self._n_checked, self._n_coalesced
        n_sync = self._n_sync
        uvm_cycles, stall_cycles = self._uvm_cycles, self._stall_cycles
        routed = self._routed
        entry_bytes = config.metadata_entry_bytes
        if launch is not None:
            sync_barrier = tool._sync_barrier
            infer_locks = tool.cores[0].infer_locks
            apply_sync = tool.cores[0].apply_sync
            granule_of = tool.cores[0].table.granule_of

        q_cap = queue_cap()
        pending = self._pending
        started = time.perf_counter()
        for event in events:
          kind = type(event)
          # Poison-event quarantine around one record's dispatch: a
          # raising event is absorbed (bounded, repro.faults.quarantine)
          # and the drain continues; policy exceptions re-raise.
          try:
            if kind is mem_cls:
                # Inlined fast front-end of IGuard.on_memory: bulk-charged
                # fixed costs, stateful models in stream order.  Routing
                # is consumed first (pure lookup): a poison event raising
                # below must not desynchronize the precomputed route
                # iterator from the remaining memory events.
                if route_next is not None:
                    granule, shard = route_next()
                else:
                    granule = granule_of(event.address)
                    shard = (
                        ((granule * 0x9E3779B97F4A7C15 & _MASK) >> 17) % shards
                        if multi
                        else 0
                    )
                access = event.kind
                if access is atomic_kind:
                    if event.atomic_op is cas_op or event.atomic_op is exch_op:
                        sync_barrier()
                        pending = 0
                    infer_locks(event)
                if coalescing and (access is load_kind or access is atomic_kind):
                    batch = event.batch
                    if batch == co_batch and granule == co_granule:
                        n_coalesced += 1
                        continue
                    co_batch, co_granule = batch, granule
                else:
                    co_batch = -1
                if uvm_active:
                    fault_cost = uvm_access(granule * entry_bytes)
                    if fault_cost:
                        uvm_cycles += fault_cost
                stall = contention_access(
                    granule, event.batch, event.where.warp_id
                )
                if stall:
                    stall_cycles += stall
                n_checked += 1
                routed[shard] += 1
                shard_appends[shard]((event, granule))
                pending += 1
                if pending >= q_cap:
                    # Backpressure: bounded queues, the producer pays for
                    # the early drain.  Output-identical — runs between
                    # sync mutations are order-equivalent and deferred
                    # records re-sort at launch end.
                    sync_barrier()
                    pending = 0
                    if HOT.enabled:
                        HOT.backpressure_drains.inc()
            elif kind is sync_cls:
                sync_barrier()
                pending = 0
                apply_sync(event, launch)
                n_sync += 1
            elif kind is launch_cls:
                launch = LaunchInfo(
                    kernel_name=event.kernel_name,
                    grid_dim=event.grid_dim,
                    block_dim=event.block_dim,
                    warp_size=event.warp_size,
                    warps_per_block=event.warps_per_block,
                    num_threads=event.num_threads,
                    timing=TimingBreakdown(parallelism=event.parallelism),
                    device=device,
                    seed=event.seed,
                    static_instruction_count=event.static_instruction_count,
                )
                tool.on_launch_begin(launch)
                # Hoisted loop state for this launch.
                stats = tool._current
                shard_appends = [q.append for q in tool._queues]
                sync_barrier = tool._sync_barrier
                infer_locks = tool.cores[0].infer_locks
                apply_sync = tool.cores[0].apply_sync
                granule_of = tool.cores[0].table.granule_of
                coalescing = config.coalescing
                co_batch = co_granule = -1
                uvm_active = (
                    config.use_uvm
                    and tool._uvm is not None
                    # Resident prefaulted pages cost nothing and never
                    # evict: the per-access residency walk is skippable
                    # wholesale.
                    and not (config.prefault and tool._uvm.fits_entirely)
                )
                uvm_access = tool._uvm.access if tool._uvm is not None else None
                contention_access = tool._contention.on_metadata_access
                n_checked = n_coalesced = n_sync = 0
                uvm_cycles = stall_cycles = 0.0
                routed = [0] * shards
            elif kind is end_cls:
                # Bulk charges for the launch's per-event fixed costs, then
                # the ordinary end-of-launch path (final drain, merge,
                # duration-proportional host charges).
                if n_coalesced:
                    stats.accesses_coalesced += n_coalesced
                    if HOT.enabled:
                        HOT.detector_coalesced.inc(n_coalesced)
                timing = launch.timing
                n_events = n_checked + n_coalesced + n_sync
                if n_events:
                    timing.charge(
                        Category.INSTRUMENTATION, instrument * n_events
                    )
                if n_checked:
                    timing.charge(Category.DETECTION, check_cost * n_checked)
                if n_coalesced:
                    timing.charge(Category.DETECTION, coal_cost * n_coalesced)
                if n_sync:
                    timing.charge(Category.DETECTION, sync_cost * n_sync)
                if uvm_cycles:
                    timing.charge(Category.DETECTION, uvm_cycles, serial=True)
                if stall_cycles:
                    timing.charge(
                        Category.DETECTION, stall_cycles, serial=True
                    )
                timing.charge(Category.NATIVE, event.native_parallel)
                timing.charge(Category.NATIVE, event.native_serial, serial=True)
                # Hand the per-launch routing census to the tool so its
                # _finish accumulates shard_routed_total exactly as the
                # bus path does (on_memory is bypassed here).
                tool._shard_routed = routed
                if event.timed_out:
                    tool.on_timeout(launch)
                else:
                    tool.on_launch_end(launch)
                # After the end-of-launch drain, so queued checks count.
                checked_events += (
                    stats.accesses_checked + stats.accesses_coalesced
                )
                device.runs.append(
                    KernelRun(
                        kernel_name=event.kernel_name,
                        grid_dim=launch.grid_dim,
                        block_dim=launch.block_dim,
                        num_threads=launch.num_threads,
                        batches=event.batches,
                        instructions=event.instructions,
                        timed_out=event.timed_out,
                        timing=launch.timing,
                    )
                )
                launch = None
                pending = 0
            elif kind is alloc_cls:
                device.memory.restore(event)
            # GPUConfig headers / RunMarkers carry no detector work.
          except Exception as exc:
            _poison(event, exc, "drain")
        self.seconds += time.perf_counter() - started

        # Cross-chunk state back out.
        self.launch = launch
        self.checked_events += checked_events
        self._stats = stats
        self._shard_appends = shard_appends
        self._coalescing = coalescing
        self._co_batch, self._co_granule = co_batch, co_granule
        self._uvm_active = uvm_active
        self._uvm_access = uvm_access
        self._contention_access = contention_access
        self._n_checked, self._n_coalesced = n_checked, n_coalesced
        self._n_sync = n_sync
        self._uvm_cycles, self._stall_cycles = uvm_cycles, stall_cycles
        self._routed = routed
        self._pending = pending

    def result(self) -> ShardedReplayResult:
        return ShardedReplayResult(
            tool=self.tool, events=self.checked_events, seconds=self.seconds
        )


def _drain_for(config: IGuardConfig, shards: int, costs, gpu_config):
    from repro.engine.replay import ReplayDevice

    device = ReplayDevice(gpu_config)
    tool = BatchShardedIGuard(config, costs=costs, shards=shards)
    tool.attach(device)
    return _ShardedDrain(tool, device, config)


def replay_trace_sharded(
    events,
    config: IGuardConfig = DEFAULT_CONFIG,
    shards: int = 4,
    costs=None,
) -> ShardedReplayResult:
    """Replay a captured event stream through the batched sharded engine.

    ``events`` may be any iterable; lazy streams (a JSONL line reader, a
    columnar chunk generator) are consumed without being materialized —
    the loop peeks just past the header preamble to find the recorded
    :class:`~repro.gpu.arch.GPUConfig`.  See :class:`_ShardedDrain` for
    the exactness contract.

    Returns the tool plus the wall-clock seconds of the replay loop, the
    basis of the bench's events/sec-at-N-shards measurement.
    """
    import itertools

    from repro.engine.trace import RunMarker, Trace
    from repro.gpu.arch import GPUConfig, TITAN_RTX

    gpu_config = None
    if isinstance(events, (list, Trace)):
        gpu_config = next(
            (e for e in events if isinstance(e, GPUConfig)), TITAN_RTX
        )
    else:
        iterator = iter(events)
        buffered: List = []
        for event in iterator:
            buffered.append(event)
            if isinstance(event, GPUConfig):
                gpu_config = event
                break
            if not isinstance(event, RunMarker):
                break
        if gpu_config is None:
            gpu_config = TITAN_RTX
        events = itertools.chain(buffered, iterator)

    drain = _drain_for(config, shards, costs, gpu_config)
    drain.feed(events)
    return drain.result()


def replay_columnar_sharded(
    source,
    config: IGuardConfig = DEFAULT_CONFIG,
    shards: int = 4,
    costs=None,
) -> ShardedReplayResult:
    """Replay a columnar trace chunk by chunk through the batched engine.

    ``source`` is a ``.ctr`` / ``.ctr.gz`` path (or an iterable of
    :class:`~repro.engine.coltrace.Chunk`).  Each chunk's granule/shard
    routing is computed vectorized over its address column before any
    event object exists, and events materialize one chunk at a time —
    peak memory is one chunk, not one trace.  Output is identical to
    :func:`replay_trace_sharded` over the same events.
    """
    from repro.engine.coltrace import iter_chunks
    from repro.gpu.arch import GPUConfig, TITAN_RTX

    chunks = (
        iter(source)
        if not isinstance(source, (str, bytes))
        and not hasattr(source, "__fspath__")
        else iter_chunks(source)
    )
    granularity = config.granularity_bytes
    drain: Optional[_ShardedDrain] = None
    for chunk in chunks:
        events = chunk.events()
        if drain is None:
            gpu_config = next(
                (e for e in events if isinstance(e, GPUConfig)), TITAN_RTX
            )
            drain = _drain_for(config, shards, costs, gpu_config)
        granules, shard_ids = chunk.mem_routes(granularity, shards)
        drain.feed(events, routes=zip(granules, shard_ids))
    if drain is None:
        drain = _drain_for(config, shards, costs, TITAN_RTX)
    return drain.result()


# ---------------------------------------------------------------------------
# Process-pool mode: one replica per shard over the whole trace
# ---------------------------------------------------------------------------


class _ShardReplicaIGuard(IGuard):
    """One shard's view of the trace: full sync replica, filtered checks."""

    #: Replicas replay serialized traces — no kernel source to analyze,
    #: and the parent merge assumes every replica checked its full slice.
    static_prune_supported = False

    def __init__(self, shard_index: int, num_shards: int, config, costs=None):
        super().__init__(config, costs=costs, shards=1)
        self._shard_index = shard_index
        self.shards = num_shards  # routing width; still one local core
        self.shard_routed_total = [0] * num_shards  # match routing width
        #: Raw records for the parent's deterministic merge.
        self.collected: List[RaceRecord] = []

    def _report_sink(self, record, md) -> bool:
        self.collected.append(record)
        return True

    def _dispatch(self, shard, event, granule, launch) -> None:
        if shard == self._shard_index:
            self.cores[0].handle(event, granule, launch, self._current)


@dataclass
class _ShardTask:
    """Picklable unit of process-pool work: one shard over one seed's run."""

    events: list
    config: IGuardConfig
    shard_index: int
    num_shards: int


def _run_shard_task(task: _ShardTask):
    """Worker trampoline: replay the stream through one shard replica.

    Returns ``(status, detail, records)`` where ``records`` are the
    shard's raw race records (re-sorted and merged by the parent).
    """
    from repro.engine.replay import replay

    tool = _ShardReplicaIGuard(
        task.shard_index, task.num_shards, task.config
    )
    status, detail = "ok", ""
    try:
        replay(task.events, tools=[tool])
    except UnsupportedFeatureError as exc:
        status, detail = "unsupported", str(exc)
    except OutOfMemoryError as exc:
        status, detail = "oom", str(exc)
    except TimeoutError_ as exc:
        status, detail = "timeout", str(exc)
    return status, detail, tool.collected


def _in_daemon_worker() -> bool:
    """Whether nested pools are unavailable (inside a daemonic worker)."""
    import multiprocessing

    return multiprocessing.current_process().daemon


def pool_shard_records(
    events,
    config: IGuardConfig = DEFAULT_CONFIG,
    shards: int = 4,
    workers: Optional[int] = None,
) -> Tuple[str, str, List[RaceRecord]]:
    """Run all shards of one recorded stream, one replica per process.

    Each replica replays the *whole* stream — broadcast events keep its
    replicated sync state coherent — and checks only the events whose
    routing key hashes to its shard.  Composes with the suite runner's
    cell parallelism: inside a daemonic pool worker (where nested pools
    are impossible) the replicas run inline, bit-identical results.

    Returns the merged ``(status, detail, records)`` in serial order.
    """
    from repro.engine.parallel import parallel_map

    tasks = [
        _ShardTask(
            events=list(events),
            config=config,
            shard_index=index,
            num_shards=shards,
        )
        for index in range(shards)
    ]
    if workers is None:
        workers = shards
    if _in_daemon_worker():
        workers = 1
    results = parallel_map(
        _run_shard_task,
        tasks,
        workers=workers,
        label=lambda task: f"shard-{task.shard_index}/{task.num_shards}",
    )
    status, detail = "ok", ""
    records: List[RaceRecord] = []
    for result in results:
        if result is None:
            continue
        shard_status, shard_detail, shard_records = result
        # A failing tool policy (budget timeout, OOM) trips identically in
        # every replica — the front-end sees the full stream — so any
        # shard's failure is the run's failure.
        if shard_status != "ok" and status == "ok":
            status, detail = shard_status, shard_detail
        records.extend(shard_records)
    records.sort(key=RaceRecord.serial_sort_key)
    return status, detail, records


def replay_workload_sharded(
    trace,
    config: IGuardConfig = DEFAULT_CONFIG,
    shards: int = 4,
    mode: str = "processpool",
    workers: Optional[int] = None,
):
    """Replay a captured workload trace under process-pool sharding.

    Mirrors :func:`repro.engine.replay.replay_workload`'s per-seed
    semantics, but fans each seed's stream across shard replicas and
    merges their records into one :class:`~repro.core.report.RaceLog`
    per seed (so per-site race types match serial first-record-wins).
    Returns ``{"status", "detail", "sites"}`` — the timing-free report
    surface the byte-identity contract covers.
    """
    if mode not in ("processpool", "inline"):
        raise ValueError(f"unknown shard mode {mode!r}")
    sites = {}
    status, detail = "ok", ""
    for _seed, events in trace.runs():
        run_status, run_detail, records = pool_shard_records(
            events,
            config=config,
            shards=shards,
            workers=1 if mode == "inline" else workers,
        )
        merged = merge_race_records(
            [records], capacity=config.race_buffer_capacity
        )
        for ip, race_type in merged.sites():
            sites.setdefault(ip, str(race_type))
        if run_status in ("unsupported", "oom"):
            return {"status": run_status, "detail": run_detail, "sites": {}}
        if run_status == "timeout":
            status, detail = run_status, run_detail
            break
    return {"status": status, "detail": detail, "sites": dict(sorted(sites.items()))}
