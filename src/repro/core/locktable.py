"""Lock tables and lock-protocol inference (section 6.3, Figure 7).

CUDA has no lock instructions, but the CUDA guidebook pattern is::

    while (atomicCAS(&lock, 0, 1) != 0);   // acquire: CAS ...
    __threadfence();                       //          ... then fence
    /* critical section */
    __threadfence();                       // release: fence ...
    atomicExch(&lock, 0);                  //          ... then exchange

iGUARD infers these instruction pairs as lock/unlock.  Each lock-table
entry is 21 bits of a 64-bit structure: Valid, Active, Scope, and an
18-bit hash of the lock variable's address; a table holds up to 3 entries.
An ``atomicCAS`` inserts an entry (Valid, not yet Active); a following
threadfence of matching-or-narrower scope *activates* entries — an active
entry is a lock currently held.  An ``atomicExch`` invalidates the
matching entry (even without the release fence: the fence's absence is
caught by the fence-counter race checks instead).

Protocol inference: a warp-level table is used by default; if more than
one thread of a warp executes ``atomicCAS`` simultaneously (visible in the
active mask), per-thread locking is inferred, the warp table's sticky
``isThread`` bit is set, and per-thread tables take over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.bloom import BloomFilter16
from repro.common.hashing import address_hash18
from repro.gpu.instructions import Scope


@dataclass
class LockEntry:
    """One Figure 7 entry: Valid | Active | Scope | 18-bit address hash."""

    valid: bool = False
    active: bool = False
    scope: Scope = Scope.DEVICE
    addr_hash: int = 0

    def matches(self, addr_hash: int, scope: Optional[Scope] = None) -> bool:
        """Whether this entry refers to the given lock (and scope, if set)."""
        if not self.valid or self.addr_hash != addr_hash:
            return False
        return scope is None or self.scope.effective is scope.effective


class LockTable:
    """A bounded table of inferred locks for one warp or one thread."""

    def __init__(self, max_entries: int = 3):
        self.max_entries = max_entries
        self.entries: List[LockEntry] = [LockEntry() for _ in range(max_entries)]
        #: Sticky bit: per-thread locking inferred for the owning warp.
        #: Meaningful on per-warp tables only; never unset (section 6.3).
        self.is_thread = False
        #: How many inserts were dropped because the table was full; the
        #: paper sizes the table at 3 and found it sufficient in practice.
        self.overflows = 0
        #: Packed Bloom summary of held locks, rebuilt lazily after any
        #: mutation.  The detector reads the summary once per checked
        #: access, while the table changes only on acquire/fence/release —
        #: the cache turns the common read into one attribute load.
        self._bloom_int: Optional[int] = None

    # ------------------------------------------------------------------

    def insert(self, lock_address: int, scope: Scope) -> bool:
        """Record an ``atomicCAS`` on a lock variable (acquire attempt).

        Returns True if an entry exists after the call (inserted or
        refreshed); False if the table was full.
        """
        addr_hash = address_hash18(lock_address)
        for entry in self.entries:
            if entry.matches(addr_hash, scope):
                return True  # re-acquire attempt of a known lock
        for entry in self.entries:
            if not entry.valid:
                entry.valid = True
                entry.active = False
                entry.scope = scope.effective
                entry.addr_hash = addr_hash
                self._bloom_int = None
                return True
        self.overflows += 1
        return False

    def activate(self, fence_scope: Scope) -> int:
        """A threadfence completes pending acquires.

        Sets the Active bit "for all entries with matching or narrower
        scope": a device fence activates device- and block-scope locks, a
        block fence only block-scope locks.  Returns how many entries were
        newly activated.
        """
        activated = 0
        for entry in self.entries:
            if entry.valid and not entry.active:
                if fence_scope.effective.covers(entry.scope):
                    entry.active = True
                    activated += 1
        if activated:
            self._bloom_int = None
        return activated

    def release(self, lock_address: int, scope: Scope) -> bool:
        """An ``atomicExch`` releases the matching lock (unsets Valid)."""
        addr_hash = address_hash18(lock_address)
        for entry in self.entries:
            if entry.matches(addr_hash, scope):
                entry.valid = False
                entry.active = False
                self._bloom_int = None
                return True
        return False

    # ------------------------------------------------------------------

    def held_hashes(self) -> List[int]:
        """18-bit hashes of locks currently held (valid and active)."""
        return [e.addr_hash for e in self.entries if e.valid and e.active]

    def locks_bloom(self) -> BloomFilter16:
        """The 16-bit 2-way Bloom summary of held locks (metadata field)."""
        return BloomFilter16.of(self.held_hashes())

    def locks_bloom_int(self) -> int:
        """``int(locks_bloom())`` served from the post-mutation cache."""
        value = self._bloom_int
        if value is None:
            value = self._bloom_int = int(BloomFilter16.of(self.held_hashes()))
        return value

    def holds_any(self) -> bool:
        """Whether any lock is currently held."""
        return any(e.valid and e.active for e in self.entries)
