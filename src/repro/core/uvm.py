"""UVM-backed metadata allocation (section 6.1).

iGUARD needs 16 bytes of metadata per 4 bytes of data — a 4x overhead that
would swallow most of the GPU if pinned (Barracuda reserves 50% of device
memory for its buffers).  Instead, iGUARD ``cudaMallocManaged``s the whole
metadata space: only virtual addresses are allocated; physical pages
materialize on first touch, and the driver migrates pages between CPU and
GPU on demand.

Two refinements from the paper are modeled:

- **Pre-faulting**: iGUARD tracks the application's ``cudaMalloc`` usage;
  whatever device memory remains free after the application's needs is
  pre-faulted with metadata (via ``cudaMemset``), so page faults are paid
  only when application footprint + metadata genuinely exceed capacity.
- **Graceful degradation**: beyond that point, metadata accesses fault and
  evict (migrate) pages, adding cost but never failing — this is Figure 14,
  where Barracuda runs out of memory past 8 GB while iGUARD keeps going.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

MiB = 1024 * 1024


@dataclass(frozen=True)
class UVMParams:
    """Cost constants for the managed-memory model."""

    page_bytes: int = 2 * MiB
    #: Serialized cycles charged for a GPU page fault handled by the
    #: driver.  Scaled consistently with the detector's host-side costs:
    #: real faults cost ~20-45us but are heavily batched and prefetched by
    #: the UVM driver, and our simulated kernels are ~10^3x shorter.
    fault_cycles: float = 60.0
    #: Additional cycles to migrate an evicted page over the interconnect.
    migration_cycles: float = 30.0
    #: Cycles per page of setup-time pre-faulting (cudaMemset is cheap,
    #: bandwidth-bound, and fully parallel).
    prefault_cycles_per_page: float = 0.05


class ManagedMetadataSpace:
    """The metadata's managed virtual address space and residency state."""

    def __init__(
        self,
        metadata_virtual_bytes: int,
        device_free_bytes: int,
        prefault: bool = True,
        params: Optional[UVMParams] = None,
    ):
        # A fresh instance per space, not a def-time default shared by all.
        if params is None:
            params = UVMParams()
        self.params = params
        self.metadata_virtual_bytes = metadata_virtual_bytes
        #: Device pages available to metadata after application allocations.
        self.capacity_pages = max(0, device_free_bytes) // params.page_bytes
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        self.faults = 0
        self.evictions = 0
        self.hits = 0
        self.prefaulted_pages = 0
        self.setup_cycles = 0.0
        self.fault_cycles_total = 0.0
        if prefault:
            self._prefault()

    def _prefault(self) -> None:
        """Pre-fault as much metadata as fits in free device memory."""
        needed_pages = -(-self.metadata_virtual_bytes // self.params.page_bytes)
        pages = min(needed_pages, self.capacity_pages)
        for page in range(pages):
            self._resident[page] = True
        self.prefaulted_pages = pages
        self.setup_cycles = pages * self.params.prefault_cycles_per_page

    @property
    def fits_entirely(self) -> bool:
        """Whether the whole metadata space is device-resident."""
        needed_pages = -(-self.metadata_virtual_bytes // self.params.page_bytes)
        return needed_pages <= self.capacity_pages

    def access(self, metadata_offset: int) -> float:
        """Touch metadata at a byte offset; returns serialized fault cost."""
        page = metadata_offset // self.params.page_bytes
        if page in self._resident:
            self._resident.move_to_end(page)
            self.hits += 1
            return 0.0
        self.faults += 1
        cost = self.params.fault_cycles
        if self.capacity_pages == 0:
            # Nothing fits; every access streams over the interconnect.
            self.fault_cycles_total += cost
            return cost
        if len(self._resident) >= self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1
            cost += self.params.migration_cycles
        self._resident[page] = True
        self.fault_cycles_total += cost
        return cost
