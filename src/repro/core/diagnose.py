"""Race diagnosis: turn a race record into an actionable explanation.

The real tool prints the instruction, address, and cause; developers then
have to know what an "insufficient atomic scope" means for their code.
This module closes that gap: for each race type it explains which Table 2
condition fired, why the synchronization in place was insufficient, and
what the canonical fix is — the advice the paper gives in sections 3 and
7.1 for each bug class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.report import RaceRecord, RaceType

#: Which race-check condition produces each type, and the canonical fix.
_CAUSES = {
    RaceType.ATOMIC_SCOPE: (
        "R1",
        "the location is updated with *block-scope* atomics, but a thread "
        "of a different threadblock accessed it; the block scope does not "
        "guarantee visibility or atomicity outside the updating block "
        "(paper section 3.1, Figure 1)",
        "widen the atomic's scope to device (e.g. atomicAdd instead of "
        "atomicAdd_block) for any variable read or updated across "
        "threadblocks",
    ),
    RaceType.ITS: (
        "R2",
        "two threads of the *same warp* touched the location and no "
        "__syncwarp() or fence separated the accesses; since Volta's "
        "Independent Thread Scheduling, warp threads make independent "
        "progress and implicit lockstep ordering no longer exists (paper "
        "section 3.2, Figure 2)",
        "insert __syncwarp() between the warp-level phases that hand data "
        "between lanes",
    ),
    RaceType.INTRA_BLOCK: (
        "R3",
        "two threads of the same threadblock accessed the location with "
        "no intervening __syncthreads() and no fence by the previous "
        "accessor",
        "separate the producing and consuming phases with __syncthreads() "
        "(or publish with __threadfence_block() plus an atomic flag)",
    ),
    RaceType.INTER_BLOCK: (
        "R4",
        "threads of *different threadblocks* accessed the location and "
        "the previous accessor never executed a device-scope fence, so "
        "its write is not ordered with this access; block-scope fences "
        "and __syncthreads() cannot order accesses across blocks (this is "
        "also how Cooperative-Groups misuse surfaces, e.g. the "
        "leader-only-fence grid sync of Figure 10)",
        "have the producing thread execute __threadfence() (device scope) "
        "before publishing, or synchronize the whole grid with a correct "
        "cooperative-groups grid.sync()",
    ),
    RaceType.IMPROPER_LOCKING: (
        "R5",
        "both accesses ran under inferred locks, but the lock sets do not "
        "intersect: different locks cannot order accesses to the same "
        "data (paper section 6.6, Figure 9 — typical with per-thread "
        "locks guarding a shared accumulator)",
        "protect each shared location with one designated lock that every "
        "accessor acquires (lock the *data*, not the thread)",
    ),
}


@dataclass(frozen=True)
class Diagnosis:
    """A structured explanation of one race record."""

    record: RaceRecord
    condition: str  # the Table 2 condition that fired (R1..R5)
    explanation: str
    suggested_fix: str

    def render(self) -> str:
        """Multi-line human-readable report."""
        r = self.record
        return "\n".join(
            [
                f"RACE [{r.race_type}] in kernel {r.kernel!r}",
                f"  at        : {r.ip} ({r.access} of {r.location})",
                f"  by        : warp {r.warp_id}, lane {r.lane} "
                f"(block {r.block_id})",
                f"  conflicts : previous access by warp {r.prev_warp_id}, "
                f"lane {r.prev_lane}",
                f"  condition : {self.condition} (Table 2)",
                f"  cause     : {self.explanation}",
                f"  fix       : {self.suggested_fix}",
            ]
        )


def diagnose(record: RaceRecord) -> Diagnosis:
    """Build the diagnosis for one race record."""
    condition, explanation, fix = _CAUSES[record.race_type]
    return Diagnosis(
        record=record,
        condition=condition,
        explanation=explanation,
        suggested_fix=fix,
    )


def diagnose_all(records) -> List[Diagnosis]:
    """Diagnose a collection of records, one per unique site."""
    seen = set()
    out = []
    for record in records:
        if record.ip in seen:
            continue
        seen.add(record.ip)
        out.append(diagnose(record))
    return out


def report(detector) -> str:
    """A full diagnostic report for a detector's findings."""
    diagnoses = diagnose_all(detector.races.records())
    if not diagnoses:
        return "No races detected."
    parts = [f"{len(diagnoses)} racy site(s):", ""]
    for diagnosis in diagnoses:
        parts.append(diagnosis.render())
        parts.append("")
    return "\n".join(parts)
