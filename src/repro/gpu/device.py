"""The simulated GPU device: allocation, kernel launch, instrumentation.

:class:`Device` ties the substrate together.  It owns the global memory,
the event bus carrying the instrumentation stream, and the cost
accounting; ``launch()`` spins up one
:class:`~repro.gpu.kernel.KernelThread` per thread of the grid, hands
them to a scheduler, and executes instructions on their behalf while
publishing every event on the bus.  Attached tools are bus sinks —
``device.tools`` aliases the bus's sink list, so both ``add_tool`` and
direct appends keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.bus import EventBus
from repro.errors import LaunchError
from repro.gpu.arch import GPUConfig, TITAN_RTX
from repro.gpu.costs import CostParams, DEFAULT_COSTS, effective_parallelism
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent, SyncKind
from repro.gpu.ids import locate, warps_in_block
from repro.gpu.instructions import (
    Atomic,
    AtomicOp,
    Compute,
    Fence,
    Load,
    Scope,
    Store,
)
from repro.gpu.kernel import KernelThread, ThreadCtx
from repro.gpu.memory import GlobalArray, GlobalMemory
from repro.gpu.scheduler import Scheduler, SchedulerKind
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category, TimingBreakdown
from repro.obs.spans import TRACER, now_us


@dataclass
class KernelRun:
    """The result of one kernel launch."""

    kernel_name: str
    grid_dim: int
    block_dim: int
    num_threads: int
    batches: int
    instructions: int
    timed_out: bool
    timing: TimingBreakdown

    @property
    def native_time(self) -> float:
        return self.timing.native_time

    @property
    def total_time(self) -> float:
        return self.timing.total_time

    @property
    def overhead(self) -> float:
        """Slowdown relative to uninstrumented execution."""
        return self.timing.overhead


class Device:
    """A simulated GPU.

    Args:
        config: hardware description (defaults to the paper's Titan RTX).
        weak_visibility: enable the store-buffer memory mode so that scoped
            races can return stale values (examples only; detection does
            not rely on it).
        costs: the cycle-cost table used for all performance accounting.
    """

    def __init__(
        self,
        config: GPUConfig = TITAN_RTX,
        weak_visibility: bool = False,
        costs: CostParams = DEFAULT_COSTS,
    ):
        self.config = config
        self.costs = costs
        self.memory = GlobalMemory(config.memory_bytes, weak_visibility)
        self.bus = EventBus()
        #: Alias of ``bus.sinks`` — the same list object, so legacy code
        #: appending tools directly still hooks into event dispatch.
        self.tools: List[Tool] = self.bus.sinks
        self.runs: List[KernelRun] = []
        self.memory.alloc_hooks.append(self.bus.publish_alloc)
        #: Optional fault-injection mutator (repro.faults.mutators); when
        #: set, every launched thread offers its instruction stream to it.
        self.mutator = None

    # ------------------------------------------------------------------
    # Tools and allocation
    # ------------------------------------------------------------------

    def add_tool(self, tool: Tool) -> Tool:
        """Attach an instrumentation tool (e.g. an iGUARD detector)."""
        return self.bus.add_sink(tool, self)

    def add_sink(self, sink):
        """Register any bus sink (a Tool, ToolSink, TraceSink, ...)."""
        return self.bus.add_sink(sink, self)

    def alloc(self, name: str, num_words: int, init=0) -> GlobalArray:
        """``cudaMalloc`` + optional ``cudaMemset``: allocate a global array."""
        return self.memory.alloc(name, num_words, init)

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------

    def launch(
        self,
        kernel_fn,
        grid_dim: int,
        block_dim: int,
        args: Tuple = (),
        seed: int = 0,
        scheduler: Optional[SchedulerKind] = None,
        max_batches: int = 2_000_000,
        split_probability: float = 0.25,
    ) -> KernelRun:
        """Launch ``kernel_fn`` over ``grid_dim`` blocks of ``block_dim`` threads.

        Returns a :class:`KernelRun`; if the step budget expires (a racy
        kernel livelocking, section 5), the run is flagged ``timed_out``
        and attached detectors have flushed their race reports.
        """
        if block_dim < 1 or block_dim > self.config.max_threads_per_block:
            raise LaunchError(
                f"block_dim {block_dim} outside [1, "
                f"{self.config.max_threads_per_block}]"
            )
        if grid_dim < 1:
            raise LaunchError(f"grid_dim must be >= 1, got {grid_dim}")
        if scheduler is None:
            scheduler = (
                SchedulerKind.ITS
                if self.config.supports_its
                else SchedulerKind.LOCKSTEP
            )
        if scheduler is SchedulerKind.ITS and not self.config.supports_its:
            raise LaunchError(f"{self.config.name} does not support ITS")

        warp_size = self.config.warp_size
        num_threads = grid_dim * block_dim
        threads = []
        for global_tid in range(num_threads):
            loc = locate(global_tid, block_dim, warp_size)
            ctx = ThreadCtx(loc, block_dim, grid_dim, warp_size)
            threads.append(
                KernelThread(kernel_fn, ctx, args, mutator=self.mutator)
            )

        timing = TimingBreakdown(
            parallelism=effective_parallelism(
                num_threads, self.config.max_concurrent_lanes
            )
        )
        launch = LaunchInfo(
            kernel_name=getattr(kernel_fn, "__name__", "kernel"),
            grid_dim=grid_dim,
            block_dim=block_dim,
            warp_size=warp_size,
            warps_per_block=warps_in_block(block_dim, warp_size),
            num_threads=num_threads,
            timing=timing,
            device=self,
            seed=seed,
            static_instruction_count=len(kernel_fn.__code__.co_code) // 2,
            kernel_fn=kernel_fn,
            args=args,
        )
        self.bus.publish_launch_begin(launch)

        engine = Scheduler(
            threads,
            warp_size=warp_size,
            kind=scheduler,
            seed=seed,
            max_batches=max_batches,
            split_probability=split_probability,
        )
        executor = _Executor(self, launch)
        span_start = now_us() if TRACER.enabled else 0.0
        engine.run(executor)
        if TRACER.enabled:
            TRACER.add_complete(
                f"launch:{launch.kernel_name}",
                span_start,
                now_us() - span_start,
                cat="launch",
                tid=TRACER.tid_for("launches"),
                args={
                    "seed": seed,
                    "grid_dim": grid_dim,
                    "block_dim": block_dim,
                    "batches": engine.batch_counter,
                    "timed_out": engine.timed_out,
                },
            )
            self._emit_warp_activity(launch, engine)
        self.memory.flush_all()

        if engine.timed_out:
            self.bus.publish_timeout(launch)
        else:
            self.bus.publish_launch_end(launch)

        run = KernelRun(
            kernel_name=launch.kernel_name,
            grid_dim=grid_dim,
            block_dim=block_dim,
            num_threads=num_threads,
            batches=engine.batch_counter,
            instructions=executor.instruction_count,
            timed_out=engine.timed_out,
            timing=timing,
        )
        self.runs.append(run)
        self.bus.publish_kernel_end(run, launch)
        return run

    @staticmethod
    def _emit_warp_activity(launch: LaunchInfo, engine: Scheduler) -> None:
        """Per-warp activity spans on the synthetic "simulated time" track.

        Timestamps are scheduler batch indices, not microseconds — the
        span shows *when in the interleaving* each warp was live, which
        is the shape races hide in.  A synthetic pid keeps these off the
        wall-clock tracks.
        """
        activity = engine.span_activity
        if not activity:
            return
        pid = TRACER.synthetic_pid("simulated time (batches)")
        for warp_id, (first, last) in sorted(activity.items()):
            TRACER.add_complete(
                f"{launch.kernel_name} w{warp_id}",
                float(first),
                float(max(1, last - first)),
                cat="warp",
                pid=pid,
                tid=warp_id,
                args={"seed": launch.seed},
            )


class _Executor:
    """The scheduler's machine interface for one launch."""

    __slots__ = ("device", "launch", "instruction_count")

    def __init__(self, device: Device, launch: LaunchInfo):
        self.device = device
        self.launch = launch
        self.instruction_count = 0

    # -- memory / fence / compute --------------------------------------

    def exec_instruction(self, thread: KernelThread, instr, active_mask, batch):
        device = self.device
        timing = self.launch.timing
        timing.charge(Category.NATIVE, device.costs.cost_of(instr))
        self.instruction_count += 1
        loc = thread.ctx.location
        ip = thread.pending_ip

        if isinstance(instr, Load):
            value = device.memory.device_load(instr.address, loc.block_id)
            event = MemoryEvent(
                kind=AccessKind.LOAD,
                address=instr.address,
                where=loc,
                ip=ip,
                active_mask=active_mask,
                value_loaded=value,
                batch=batch,
            )
            self._notify_memory(event)
            return value

        if isinstance(instr, Store):
            device.memory.device_store(instr.address, instr.value, loc.block_id)
            event = MemoryEvent(
                kind=AccessKind.STORE,
                address=instr.address,
                where=loc,
                ip=ip,
                active_mask=active_mask,
                value_stored=instr.value,
                batch=batch,
            )
            self._notify_memory(event)
            return None

        if isinstance(instr, Atomic):
            old = device.memory.device_atomic(
                instr.op,
                instr.address,
                instr.value,
                loc.block_id,
                scope=instr.scope,
                compare=instr.compare,
            )
            event = MemoryEvent(
                kind=AccessKind.ATOMIC,
                address=instr.address,
                where=loc,
                ip=ip,
                active_mask=active_mask,
                scope=instr.scope.effective,
                atomic_op=instr.op,
                value_stored=instr.value,
                value_loaded=old,
                compare=instr.compare,
                batch=batch,
            )
            self._notify_memory(event)
            return old

        if isinstance(instr, Fence):
            if (
                device.memory.weak_visibility
                and instr.scope.effective is Scope.DEVICE
            ):
                device.memory.flush_block(loc.block_id)
            event = SyncEvent(
                kind=SyncKind.FENCE,
                where=loc,
                ip=ip,
                active_mask=active_mask,
                scope=instr.scope.effective,
                batch=batch,
            )
            self._notify_sync(event)
            return None

        if isinstance(instr, Compute):
            return None

        raise TypeError(f"unhandled instruction {instr!r}")  # pragma: no cover

    # -- barriers --------------------------------------------------------

    def on_block_barrier(self, block_id: int, threads, batch: int) -> None:
        timing = self.launch.timing
        timing.charge(
            Category.NATIVE, self.device.costs.syncthreads * len(threads)
        )
        self.instruction_count += len(threads)
        lead = threads[0]
        event = SyncEvent(
            kind=SyncKind.SYNCTHREADS,
            where=lead.ctx.location,
            ip=lead.pending_ip,
            active_mask=frozenset(t.ctx.lane for t in threads),
            scope=Scope.BLOCK,
            batch=batch,
        )
        self._notify_sync(event)

    def on_warp_barrier(self, warp_id: int, threads, batch: int) -> None:
        timing = self.launch.timing
        timing.charge(Category.NATIVE, self.device.costs.syncwarp * len(threads))
        self.instruction_count += len(threads)
        lead = threads[0]
        event = SyncEvent(
            kind=SyncKind.SYNCWARP,
            where=lead.ctx.location,
            ip=lead.pending_ip,
            active_mask=frozenset(t.ctx.lane for t in threads),
            scope=Scope.BLOCK,
            batch=batch,
        )
        self._notify_sync(event)

    # -- fan-out ----------------------------------------------------------

    def _notify_memory(self, event: MemoryEvent) -> None:
        self.device.bus.publish_memory(event, self.launch)

    def _notify_sync(self, event: SyncEvent) -> None:
        self.device.bus.publish_sync(event, self.launch)
