"""Warp schedulers: pre-Volta lockstep and Volta-style ITS.

GPUs schedule threads in warps; how the warp's threads interleave is
exactly what separates the two hardware generations the paper discusses
(section 2.1):

- **Lockstep** (pre-Volta): threads of a warp execute in SIMT lockstep;
  divergent branches are serialized and reconverge.  A warp whose threads
  wait on each other (e.g. a consumer spinning on a lock its sibling holds)
  deadlocks — which our lockstep policy reproduces as a livelock caught by
  the step timeout.

- **ITS** (Volta onward): threads of a warp make *independent progress*.
  Implicit warp-level barriers after every instruction disappear, which is
  the source of the "missing syncwarp" races iGUARD detects.

Both policies operate on *convergence groups*: the threads of a warp whose
next instruction is at the same source location.  A group executes as one
batch — its lanes are the instruction's *active mask*.  Divergence splits
groups (threads branch to different lines); reconvergence merges them
(threads arrive back at the same line).

The scheduler also implements ``syncthreads``/``syncwarp`` barrier
bookkeeping with deadlock detection, and enforces a step budget (the
paper's "parameterized timeout" for livelocked racy kernels, section 5).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.common.rng import SplitMix64
from repro.errors import DeadlockError
from repro.gpu.instructions import (
    Atomic,
    Compute,
    Fence,
    Load,
    Store,
    Syncthreads,
    Syncwarp,
)
from repro.gpu.kernel import KernelThread, ThreadStatus
from repro.obs.metrics import HOT
from repro.obs.spans import TRACER


class SchedulerKind(enum.Enum):
    """Which warp-scheduling policy to simulate."""

    LOCKSTEP = "lockstep"
    ITS = "its"


def _group_key(thread: KernelThread) -> Tuple[str, str]:
    """Convergence-group key: source location plus instruction class.

    Two threads suspended at the same line can still be at *different*
    instructions of that line (e.g. the load and the store of a compound
    assignment); including the instruction class keeps such threads in
    separate groups.
    """
    instr = thread.pending
    return (thread.pending_ip, type(instr).__name__)


class _WarpState:
    """Scheduler-side bookkeeping for one warp."""

    __slots__ = ("warp_id", "block_id", "threads", "diverged")

    def __init__(self, warp_id: int, block_id: int):
        self.warp_id = warp_id
        self.block_id = block_id
        self.threads: List[KernelThread] = []
        #: Observability only: whether this warp's READY threads were last
        #: seen in more than one convergence group (tracks divergence /
        #: reconvergence transitions for the metrics registry).
        self.diverged = False

    def has_ready(self) -> bool:
        """Whether any thread of the warp is READY (cheap candidate test).

        ``ready_groups`` is nonempty exactly when this is true, but this
        scan allocates nothing — the scheduler uses it to shortlist
        candidate warps and only builds the group structure for the one
        warp it actually picks.
        """
        for thread in self.threads:
            if thread.status is ThreadStatus.READY:
                return True
        return False

    def ready_groups(self) -> List[List[KernelThread]]:
        """Convergence groups of READY threads, in (line, kind) order."""
        groups: Dict[Tuple[str, str], List[KernelThread]] = {}
        for thread in self.threads:
            if thread.status is ThreadStatus.READY:
                groups.setdefault(_group_key(thread), []).append(thread)
        return [groups[key] for key in sorted(groups)]

    def live_threads(self) -> List[KernelThread]:
        return [t for t in self.threads if t.live]

    def warp_barrier_ready(self) -> bool:
        """Whether every live thread of the warp waits at a warp barrier."""
        live = self.live_threads()
        return bool(live) and all(
            t.status is ThreadStatus.AT_WARP_BARRIER for t in live
        )


class Scheduler:
    """Drives a grid of :class:`KernelThread` objects to completion.

    The machine-interface object supplied to :meth:`run` must provide::

        exec_instruction(thread, instr, active_mask, batch) -> result
        on_block_barrier(block_id, threads, batch) -> None
        on_warp_barrier(warp_id, threads, batch) -> None

    ``exec_instruction`` handles Load/Store/Atomic/Fence/Compute; barriers
    are resolved by the scheduler itself and reported via the barrier
    callbacks when they *complete*.
    """

    def __init__(
        self,
        threads: Sequence[KernelThread],
        warp_size: int,
        kind: SchedulerKind = SchedulerKind.ITS,
        seed: int = 0,
        max_batches: int = 2_000_000,
        split_probability: float = 0.25,
    ):
        self.kind = kind
        self.warp_size = warp_size
        self.rng = SplitMix64(seed)
        self.max_batches = max_batches
        #: ITS only: probability that a convergence group executes as a
        #: random sub-batch instead of whole.  Volta's ITS batches
        #: convergent threads opportunistically but guarantees nothing —
        #: splitting reproduces the interleavings where converged threads
        #: of one warp race with each other (e.g. lost updates under
        #: per-thread locking, Figure 9).
        self.split_probability = split_probability
        self.batch_counter = 0
        self.timed_out = False
        self._warps: List[_WarpState] = []
        self._blocks: Dict[int, List[KernelThread]] = {}
        self._all_threads: List[KernelThread] = list(threads)
        #: Completion scan hint: threads before this index are done.  A
        #: done thread never resumes, so the prefix only grows and the
        #: per-batch completion check amortizes to O(1).
        self._done_prefix = 0
        #: Observability only: per-warp (first batch, last batch) activity
        #: bounds, emitted by the device as simulated-time trace spans.
        #: None (tracing off) keeps the batch loop free of dict traffic.
        self.span_activity: Optional[Dict[int, Tuple[int, int]]] = (
            {} if TRACER.enabled else None
        )
        warp_map: Dict[int, _WarpState] = {}
        for thread in threads:
            loc = thread.ctx.location
            warp = warp_map.get(loc.warp_id)
            if warp is None:
                warp = _WarpState(loc.warp_id, loc.block_id)
                warp_map[loc.warp_id] = warp
                self._warps.append(warp)
            warp.threads.append(thread)
            self._blocks.setdefault(loc.block_id, []).append(thread)
        for warp in self._warps:
            warp.threads.sort(key=lambda t: t.ctx.lane)

    # ------------------------------------------------------------------
    # Batch selection
    # ------------------------------------------------------------------

    def _pick_batch(self) -> Optional[Tuple[_WarpState, List[KernelThread]]]:
        """Choose the next convergence group to execute, or None.

        Candidate warps are shortlisted with the allocation-free
        ``has_ready`` test; the group structure is built only for the one
        warp selected.  The warp choice draws on the candidate *count*,
        which is identical either way, so the RNG stream — and therefore
        every simulated interleaving — is unchanged by the shortcut.
        """
        candidates = [warp for warp in self._warps if warp.has_ready()]
        if not candidates:
            return None
        if HOT.enabled:
            HOT.sched_occupancy.observe(len(candidates))
        if self.kind is SchedulerKind.LOCKSTEP:
            # Round-robin across warps; within a warp, run the group that is
            # "furthest behind" (lowest source line), approximating the SIMT
            # reconvergence stack.
            warp = candidates[self.batch_counter % len(candidates)]
            groups = warp.ready_groups()
            if HOT.enabled:
                self._note_convergence(warp, len(groups))
            return warp, groups[0]
        # ITS: independent progress — pick a warp and a group at random.
        warp = candidates[self.rng.randint(len(candidates))]
        groups = warp.ready_groups()
        if HOT.enabled:
            self._note_convergence(warp, len(groups))
        group = groups[self.rng.randint(len(groups))]
        if len(group) > 1 and self.rng.random() < self.split_probability:
            # Execute only a random prefix-free subset: the rest of the
            # group falls behind, modelling ITS's lack of lockstep.
            keep = 1 + self.rng.randint(len(group) - 1)
            shuffled = list(group)
            self.rng.shuffle(shuffled)
            group = sorted(shuffled[:keep], key=lambda t: t.ctx.lane)
            if HOT.enabled:
                HOT.sched_splits.inc()
        return warp, group

    @staticmethod
    def _note_convergence(warp: _WarpState, num_groups: int) -> None:
        """Track divergence/reconvergence transitions of the picked warp."""
        if num_groups > 1:
            if not warp.diverged:
                warp.diverged = True
            HOT.sched_divergent.inc()
        elif warp.diverged:
            warp.diverged = False
            HOT.sched_reconverged.inc()

    # ------------------------------------------------------------------
    # Barrier resolution
    # ------------------------------------------------------------------

    def _try_release_block_barrier(self, block_id: int, machine) -> None:
        threads = [t for t in self._blocks[block_id] if t.live]
        if not threads:
            return
        if all(t.status is ThreadStatus.AT_BLOCK_BARRIER for t in threads):
            if HOT.enabled:
                HOT.sched_barrier_releases.inc()
            machine.on_block_barrier(block_id, threads, self.batch_counter)
            for thread in threads:
                thread.release_from_barrier()

    def _try_release_warp_barrier(self, warp: _WarpState, machine) -> None:
        if warp.warp_barrier_ready():
            waiting = [
                t for t in warp.live_threads()
                if t.status is ThreadStatus.AT_WARP_BARRIER
            ]
            if HOT.enabled:
                HOT.sched_barrier_releases.inc()
            machine.on_warp_barrier(warp.warp_id, waiting, self.batch_counter)
            for thread in waiting:
                thread.release_from_barrier()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _all_done(self) -> bool:
        threads = self._all_threads
        total = len(threads)
        index = self._done_prefix
        done = ThreadStatus.DONE
        while index < total and threads[index].status is done:
            index += 1
        self._done_prefix = index
        return index == total

    def _check_deadlock(self) -> None:
        """No READY threads, no releasable barrier, work remains: deadlock.

        The classic trigger is a *divergent barrier*: part of a block waits
        at ``syncthreads`` while the rest took a branch without one.
        """
        waiting = [
            t
            for warp in self._warps
            for t in warp.threads
            if t.status
            in (ThreadStatus.AT_BLOCK_BARRIER, ThreadStatus.AT_WARP_BARRIER)
        ]
        if waiting:
            sites = sorted({t.pending_ip for t in waiting})
            raise DeadlockError(
                f"{len(waiting)} thread(s) blocked forever at barrier(s) "
                f"near {', '.join(sites)}"
            )

    def _release_any_barrier(self, machine) -> bool:
        """Sweep all barriers; returns True if any thread was released.

        Needed when the last obstacle to a barrier was a sibling thread
        *finishing* (rather than arriving): completion does not trigger the
        eager per-batch release checks.
        """
        released = False
        for block_id in self._blocks:
            waiting = [
                t
                for t in self._blocks[block_id]
                if t.status is ThreadStatus.AT_BLOCK_BARRIER
            ]
            if waiting:
                self._try_release_block_barrier(block_id, machine)
                released = released or any(
                    t.status is not ThreadStatus.AT_BLOCK_BARRIER for t in waiting
                )
        for warp in self._warps:
            waiting = [
                t
                for t in warp.threads
                if t.status is ThreadStatus.AT_WARP_BARRIER
            ]
            if waiting:
                self._try_release_warp_barrier(warp, machine)
                released = released or any(
                    t.status is not ThreadStatus.AT_WARP_BARRIER for t in waiting
                )
        return released

    def run(self, machine) -> None:
        """Execute all threads to completion (or step-budget timeout)."""
        while not self._all_done():
            picked = self._pick_batch()
            if picked is None:
                # A barrier may have become releasable because its last
                # missing thread finished instead of arriving.
                if self._release_any_barrier(machine):
                    continue
                self._check_deadlock()
                break
            if self.batch_counter >= self.max_batches:
                self.timed_out = True
                break
            self._execute_batch(*picked, machine)

    def _execute_batch(
        self, warp: _WarpState, group: List[KernelThread], machine
    ) -> None:
        self.batch_counter += 1
        batch = self.batch_counter
        if HOT.enabled:
            HOT.sched_batches.inc()
        if self.span_activity is not None:
            bounds = self.span_activity.get(warp.warp_id)
            self.span_activity[warp.warp_id] = (
                (batch, batch) if bounds is None else (bounds[0], batch)
            )
        active_mask: FrozenSet[int] = frozenset(t.ctx.lane for t in group)
        barrier_blocks = set()
        barrier_warps = []
        for thread in group:
            instr = thread.pending
            if isinstance(instr, Syncthreads):
                thread.park_at_barrier(ThreadStatus.AT_BLOCK_BARRIER)
                barrier_blocks.add(thread.ctx.block_id)
            elif isinstance(instr, Syncwarp):
                thread.park_at_barrier(ThreadStatus.AT_WARP_BARRIER, instr.mask)
                barrier_warps.append(warp)
            elif isinstance(instr, (Load, Store, Atomic, Fence, Compute)):
                result = machine.exec_instruction(thread, instr, active_mask, batch)
                thread.complete(result)
            else:  # pragma: no cover - Instruction subclasses are closed
                raise TypeError(f"unhandled instruction {instr!r}")
        for block_id in barrier_blocks:
            self._try_release_block_barrier(block_id, machine)
        for barrier_warp in barrier_warps:
            self._try_release_warp_barrier(barrier_warp, machine)
