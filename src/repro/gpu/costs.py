"""The cycle-cost model.

The reproduction cannot measure real GPU wall-clock, so every performance
figure (Figures 11-14) is produced by this model instead.  It has two
parts:

1. **Per-instruction costs** (:class:`CostParams`): how many cycles each
   DSL instruction consumes.  The only paper-calibrated ratio is the scoped
   fence: "the block-scope threadfence ... is 21x faster than the device
   scope fence" (section 1), so ``fence_device = 21 * fence_block``.

2. **A wall-time model** (:class:`WallClock`): total *work* executed in
   parallel regions is divided by the machine's effective parallelism
   (bounded by launched threads and available lanes), while *serialized*
   work — metadata-lock contention inside iGUARD, or Barracuda's CPU-side
   race-detection pass — is charged at full cost.  This is the mechanism
   behind the paper's headline: in-GPU parallel detection is ~15x faster
   than CPU-serialized detection.

Calibration notes: the absolute constants below are tuned so the *shape*
of the paper's results holds (iGUARD ~5x average overhead, Barracuda
10-1000x, contention-heavy kernels improving ~7x with the section 6.5
optimizations).  They are not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.instructions import (
    Atomic,
    Compute,
    Fence,
    Instruction,
    Load,
    Scope,
    Store,
    Syncthreads,
    Syncwarp,
)


@dataclass(frozen=True)
class CostParams:
    """Cycle costs for each instruction category."""

    load: int = 4
    store: int = 4
    atomic_block: int = 8
    atomic_device: int = 24
    fence_block: int = 10
    fence_device: int = 210  # 21x the block fence, per the paper's motivation
    syncthreads: int = 40
    syncwarp: int = 4
    compute_unit: int = 1

    def cost_of(self, instr: Instruction) -> int:
        """Base cycle cost of one dynamic instruction."""
        if isinstance(instr, Load):
            return self.load
        if isinstance(instr, Store):
            return self.store
        if isinstance(instr, Atomic):
            if instr.scope.effective is Scope.BLOCK:
                return self.atomic_block
            return self.atomic_device
        if isinstance(instr, Fence):
            if instr.scope.effective is Scope.BLOCK:
                return self.fence_block
            return self.fence_device
        if isinstance(instr, Syncthreads):
            return self.syncthreads
        if isinstance(instr, Syncwarp):
            return self.syncwarp
        if isinstance(instr, Compute):
            return self.compute_unit * instr.cycles
        return 1


DEFAULT_COSTS = CostParams()


@dataclass
class WallClock:
    """Accumulates parallel work and serialized stalls into wall time.

    ``parallel_work`` cycles are divided by the effective parallelism when
    converted to time; ``serial_work`` cycles are charged as-is.  The
    division point is what separates iGUARD (detection work is parallel,
    only metadata contention serializes) from Barracuda (all detection work
    is serialized on the CPU).
    """

    parallelism: int = 1
    parallel_work: float = 0.0
    serial_work: float = 0.0

    def add_parallel(self, cycles: float) -> None:
        """Charge cycles that all lanes execute concurrently."""
        self.parallel_work += cycles

    def add_serial(self, cycles: float) -> None:
        """Charge cycles that execute with no parallelism at all."""
        self.serial_work += cycles

    @property
    def time(self) -> float:
        """Wall time in cycle units."""
        return self.parallel_work / max(self.parallelism, 1) + self.serial_work

    def merged_with(self, other: "WallClock") -> "WallClock":
        """Combine two accounts that share this account's parallelism."""
        return WallClock(
            parallelism=self.parallelism,
            parallel_work=self.parallel_work + other.parallel_work,
            serial_work=self.serial_work + other.serial_work,
        )


def effective_parallelism(num_threads: int, max_lanes: int) -> int:
    """Lanes actually usable by a launch of ``num_threads`` threads."""
    return max(1, min(num_threads, max_lanes))
