"""Event records delivered to instrumentation tools.

The instrumentation layer (our NVBit stand-in) observes the dynamic
instruction stream as a sequence of these records.  A race detector needs
exactly what iGUARD's injected SASS callbacks receive: the kind of access,
its address and scope, and the identity of the issuing thread (thread,
warp, block) plus the warp's *active mask* at that instant (section 6.3
uses the active mask for lock-protocol inference; the coalescing
optimization of section 6.5 uses it too).

Beyond the per-instruction records, this module defines the boundary
records of the full typed event stream published on the device's
:class:`~repro.engine.bus.EventBus`: allocations (:class:`AllocEvent`),
launch headers (:class:`LaunchEvent`), and kernel completion
(:class:`KernelEndEvent`).  Together the five record kinds make one
execution a self-contained, serializable artifact — the trace codec in
:mod:`repro.engine.trace` writes exactly these records, and
:mod:`repro.engine.replay` re-drives any detector from them without
re-simulating the GPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.gpu.ids import ThreadLocation
from repro.gpu.instructions import AtomicOp, Scope


class AccessKind(enum.Enum):
    """Classification of a memory access."""

    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"

    @property
    def is_write(self) -> bool:
        """Atomics are treated as (special) stores by iGUARD (section 6.4)."""
        return self is not AccessKind.LOAD


class SyncKind(enum.Enum):
    """Classification of a synchronization operation."""

    SYNCTHREADS = "syncthreads"
    SYNCWARP = "syncwarp"
    FENCE = "fence"


@dataclass(frozen=True, slots=True)
class MemoryEvent:
    """One dynamic load/store/atomic by one thread.

    Attributes:
        kind: load / store / atomic.
        address: byte address of the 4-byte word accessed.
        where: issuing thread's position in the hierarchy.
        ip: source location of the instruction (file:line), the analogue of
            the SASS instruction pointer iGUARD reports for races.
        active_mask: lanes of the warp executing this instruction together
            (the convergence group the scheduler batched).
        scope: atomic scope (atomics only).
        atomic_op: which read-modify-write (atomics only).
        value_stored: value written (stores/atomics).
        value_loaded: value observed (loads/atomics, filled post-execution).
        batch: monotonically increasing id of the scheduler batch this event
            executed in; accesses sharing a batch ran "simultaneously".
    """

    kind: AccessKind
    address: int
    where: ThreadLocation
    ip: str
    active_mask: FrozenSet[int]
    scope: Scope = Scope.DEVICE
    atomic_op: Optional[AtomicOp] = None
    value_stored: object = None
    value_loaded: object = None
    compare: object = None
    batch: int = 0

    @property
    def cas_succeeded(self) -> bool:
        """Whether a CAS atomically swapped (old value matched compare)."""
        return self.atomic_op is AtomicOp.CAS and self.value_loaded == self.compare

    @property
    def is_write(self) -> bool:
        return self.kind.is_write


@dataclass(frozen=True, slots=True)
class SyncEvent:
    """One dynamic synchronization operation by one thread."""

    kind: SyncKind
    where: ThreadLocation
    ip: str
    active_mask: FrozenSet[int]
    scope: Scope = Scope.DEVICE
    batch: int = 0


@dataclass(frozen=True, slots=True)
class AllocEvent:
    """One application ``cudaMalloc``, as a serializable stream record.

    Carries everything needed to rebuild the device's address map offline:
    iGUARD sizes its metadata pre-faulting from these (section 6.1), and
    replay reconstructs ``name[index]`` descriptions for race reports.
    """

    name: str
    base: int
    num_words: int

    @classmethod
    def of(cls, allocation) -> "AllocEvent":
        """Build the record from a live :class:`~repro.gpu.memory.Allocation`."""
        return cls(
            name=allocation.name,
            base=allocation.base,
            num_words=allocation.num_words,
        )


@dataclass(frozen=True, slots=True)
class LaunchEvent:
    """The header of one kernel launch in the event stream.

    A serializable projection of :class:`~repro.instrument.nvbit.LaunchInfo`:
    everything a detector reads from the launch except the live ``device``
    and ``timing`` handles, which replay re-materializes.
    """

    kernel_name: str
    grid_dim: int
    block_dim: int
    warp_size: int
    warps_per_block: int
    num_threads: int
    seed: int
    static_instruction_count: int
    #: Effective lane parallelism of the launch's timing model, so replayed
    #: Figure 13 breakdowns value parallel cycles identically.
    parallelism: int


@dataclass(frozen=True, slots=True)
class KernelEndEvent:
    """Kernel completion: the stream's counterpart of a finished launch.

    Records the executor-side outcome — whether the step budget expired,
    the native cycle account, and the batch/instruction counts — so replay
    can finalize tools (``on_launch_end`` / ``on_timeout``) and rebuild the
    run's timing without re-executing instructions.
    """

    kernel_name: str
    timed_out: bool
    native_parallel: float
    native_serial: float
    batches: int
    instructions: int
