"""GPU architecture description.

:class:`GPUConfig` captures the handful of hardware parameters the
simulation and the cost model need: SM count, warp width, memory capacity,
and whether the chip supports Independent Thread Scheduling.  ``TITAN_RTX``
mirrors the evaluation platform of the paper (Table 3: NVIDIA Titan RTX,
72 SMs, 24 GB GDDR6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

GiB = 1024 ** 3
MiB = 1024 ** 2
KiB = 1024


@dataclass(frozen=True)
class GPUConfig:
    """Static description of a simulated GPU.

    Attributes:
        name: human-readable model name.
        num_sms: number of streaming multiprocessors.
        warp_size: threads per warp (32 on all NVIDIA parts).
        max_threads_per_block: CUDA limit, 1024.
        lanes_per_sm: concurrently executing lanes per SM; together with
            ``num_sms`` this bounds the wall-time parallelism of the
            cost model.
        memory_bytes: device (global) memory capacity.
        supports_its: whether the chip has Independent Thread Scheduling
            (Volta, circa 2017, onward).
    """

    name: str = "Simulated GPU"
    num_sms: int = 72
    warp_size: int = 32
    max_threads_per_block: int = 1024
    lanes_per_sm: int = 64
    memory_bytes: int = 24 * GiB
    supports_its: bool = True

    def __post_init__(self) -> None:
        if self.warp_size < 1 or self.warp_size > 64:
            raise ConfigError(f"warp_size must be in [1, 64], got {self.warp_size}")
        if self.num_sms < 1:
            raise ConfigError("num_sms must be >= 1")
        if self.memory_bytes < 1 * MiB:
            raise ConfigError("memory_bytes must be at least 1 MiB")
        if self.max_threads_per_block % self.warp_size:
            raise ConfigError("max_threads_per_block must be a warp multiple")

    @property
    def max_concurrent_lanes(self) -> int:
        """Upper bound on simultaneously executing lanes across the chip."""
        return self.num_sms * self.lanes_per_sm

    def scaled_memory(self, memory_bytes: int) -> "GPUConfig":
        """A copy of this config with a different memory capacity."""
        return replace(self, memory_bytes=memory_bytes)


#: The paper's evaluation platform (Table 3).
TITAN_RTX = GPUConfig(
    name="NVIDIA Titan RTX",
    num_sms=72,
    warp_size=32,
    max_threads_per_block=1024,
    lanes_per_sm=64,
    memory_bytes=24 * GiB,
    supports_its=True,
)

#: A pre-Volta style device without ITS, for lockstep-mode experiments.
PRE_VOLTA = GPUConfig(
    name="Pre-Volta GPU (lockstep)",
    num_sms=28,
    warp_size=32,
    max_threads_per_block=1024,
    lanes_per_sm=64,
    memory_bytes=12 * GiB,
    supports_its=False,
)

#: A small device for fast unit tests (tiny warps keep interleavings dense).
TEST_GPU = GPUConfig(
    name="Test GPU",
    num_sms=4,
    warp_size=4,
    max_threads_per_block=64,
    lanes_per_sm=8,
    memory_bytes=64 * MiB,
    supports_its=True,
)
