"""Thread/warp/block identity arithmetic.

CUDA arranges threads in a hierarchy: grid -> threadblock -> warp -> thread
(paper, section 2).  iGUARD's metadata identifies accessors by a *global*
warp ID plus a 5-bit lane (thread-within-warp) ID, and derives the block ID
by dividing the warp ID by the number of warps per threadblock (section
6.2).  This module centralizes that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Tuple

from repro.errors import LaunchError


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: sizes along x, y, z."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if self.x < 1 or self.y < 1 or self.z < 1:
            raise LaunchError(f"dim3 components must be >= 1, got {self}")

    @property
    def count(self) -> int:
        """Total number of elements covered by the dimensions."""
        return self.x * self.y * self.z

    @classmethod
    def of(cls, value) -> "Dim3":
        """Coerce an int, tuple, or Dim3 into a Dim3."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        return cls(*value)


@dataclass(frozen=True, slots=True)
class ThreadLocation:
    """Everything about where a thread sits in the launch hierarchy.

    Attributes:
        global_tid: linear thread index across the whole grid.
        block_id: linear threadblock index within the grid.
        tid_in_block: linear thread index within its threadblock.
        warp_id: *global* warp index across the grid (the ``WarpID`` that
            iGUARD stores in its metadata).
        lane: thread index within its warp, 0..warp_size-1 (the metadata's
            5-bit ``ThreadID``).
        warp_in_block: warp index within the threadblock.
        thread_key: the pooled ``(warp_id, lane)`` identity tuple — built
            once per location so hot detector paths reuse it instead of
            allocating a fresh tuple per event.
    """

    global_tid: int
    block_id: int
    tid_in_block: int
    warp_id: int
    lane: int
    warp_in_block: int
    thread_key: Tuple[int, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "thread_key", (self.warp_id, self.lane))


@lru_cache(maxsize=1 << 17)
def locate(global_tid: int, threads_per_block: int, warp_size: int) -> ThreadLocation:
    """Compute a thread's :class:`ThreadLocation` from its linear index.

    Memoized: locations are immutable and launch geometry repeats across
    kernels and seeds, so the same object is reused instead of redoing the
    divmod arithmetic per launch.
    """
    block_id, tid_in_block = divmod(global_tid, threads_per_block)
    warps_per_block = warps_in_block(threads_per_block, warp_size)
    warp_in_block, lane = divmod(tid_in_block, warp_size)
    warp_id = block_id * warps_per_block + warp_in_block
    return ThreadLocation(
        global_tid=global_tid,
        block_id=block_id,
        tid_in_block=tid_in_block,
        warp_id=warp_id,
        lane=lane,
        warp_in_block=warp_in_block,
    )


@lru_cache(maxsize=4096)
def warps_in_block(threads_per_block: int, warp_size: int) -> int:
    """Number of (possibly partial) warps a threadblock occupies."""
    return (threads_per_block + warp_size - 1) // warp_size


@lru_cache(maxsize=1 << 16)
def block_of_warp(warp_id: int, warps_per_block: int) -> int:
    """The threadblock a global warp ID belongs to.

    This is precisely the derivation iGUARD performs during metadata update:
    "It then calculates the threadblock ID of the last accessor by dividing
    the WarpID in the metadata by the number of warps per threadblock"
    (section 6.2).  Memoized: the division recurs once per access during
    metadata update (the per-launch divisor is fixed), so the hot helpers
    answer from cache instead of dividing per access.
    """
    return warp_id // warps_per_block
