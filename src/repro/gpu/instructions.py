"""The instruction set of the kernel DSL.

Kernels in this reproduction are Python generator functions; every
interaction with the simulated machine is expressed by ``yield``-ing one of
the instruction objects below.  The set mirrors what iGUARD instruments on
real hardware (section 5): loads, stores, atomics (with scope qualifiers),
scoped threadfences, threadblock barriers (``syncthreads``) and warp
barriers (``syncwarp``), plus a ``Compute`` pseudo-instruction that models
arithmetic work for the cost model.

Convenience constructors (``load``, ``atomic_add``, ...) accept a
:class:`~repro.gpu.memory.GlobalArray` plus an element index, which keeps
kernel code close to CUDA source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Scope(enum.IntEnum):
    """Synchronization scope qualifiers (section 2.1).

    CUDA offers ``block``, ``device`` and ``system`` scopes; like the paper
    we focus on a single GPU and treat ``system`` as ``device``.
    """

    BLOCK = 0
    DEVICE = 1
    SYSTEM = 2

    @property
    def effective(self) -> "Scope":
        """System scope collapses to device scope on a single GPU."""
        return Scope.DEVICE if self is Scope.SYSTEM else self

    def covers(self, other: "Scope") -> bool:
        """Whether this scope is at least as wide as ``other``."""
        return scope_covers(self, other)


def scope_covers(a: Scope, b: Scope) -> bool:
    """Whether scope ``a`` is at least as wide as scope ``b``.

    The single source of truth for the scope lattice
    (block < device = system): both the dynamic detector and the static
    analyzer must agree on what "sufficient scope" means, so neither is
    allowed its own ad-hoc ``IntEnum`` comparison.
    """
    return a.effective >= b.effective


class AtomicOp(enum.Enum):
    """Read-modify-write operations supported by :class:`Atomic`."""

    ADD = "add"
    SUB = "sub"
    EXCH = "exch"
    CAS = "cas"
    MIN = "min"
    MAX = "max"
    OR = "or"
    AND = "and"
    XOR = "xor"


class Instruction:
    """Base class for everything a kernel may ``yield``."""

    __slots__ = ()


@dataclass(slots=True)
class Load(Instruction):
    """Read 4 bytes of global memory; the yield evaluates to the value."""

    address: int


@dataclass(slots=True)
class Store(Instruction):
    """Write 4 bytes of global memory."""

    address: int
    value: object


@dataclass(slots=True)
class Atomic(Instruction):
    """A scoped read-modify-write; the yield evaluates to the *old* value.

    ``compare`` is only meaningful for :attr:`AtomicOp.CAS`.
    """

    op: AtomicOp
    address: int
    value: object
    scope: Scope = Scope.DEVICE
    compare: Optional[object] = None


@dataclass(slots=True)
class Fence(Instruction):
    """A scoped ``__threadfence``.

    ``Fence(Scope.BLOCK)`` is ``__threadfence_block()``;
    ``Fence(Scope.DEVICE)`` is ``__threadfence()``.
    """

    scope: Scope = Scope.DEVICE


@dataclass(slots=True)
class Syncthreads(Instruction):
    """The threadblock barrier ``__syncthreads()``.

    Includes the effect of a block-scope fence (section 3.1: "threadblock
    barriers include the effect of a block-scope fence").
    """


@dataclass(slots=True)
class Syncwarp(Instruction):
    """The warp barrier ``__syncwarp(mask)``.

    ``mask`` is a bitmask of participating lanes; ``None`` means all live
    lanes of the warp.
    """

    mask: Optional[int] = None


@dataclass(slots=True)
class Compute(Instruction):
    """Pure arithmetic work: consumes ``cycles`` in the cost model.

    Lets workloads declare their compute intensity, which drives the
    native-to-instrumented overhead ratios of Figure 11 (compute-heavy
    kernels such as rule-110 see only 2-3x overhead).
    """

    cycles: int = 1


# ---------------------------------------------------------------------------
# Convenience constructors used by workloads and examples.
# ---------------------------------------------------------------------------


def _addr(array, index: int) -> int:
    """Resolve an (array, element index) pair to a byte address."""
    return array.addr_of(index)


def load(array, index: int) -> Load:
    """``array[index]`` as a global-memory load."""
    return Load(_addr(array, index))


def store(array, index: int, value) -> Store:
    """``array[index] = value`` as a global-memory store."""
    return Store(_addr(array, index), value)


def atomic_add(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicAdd(&array[index], value)`` with an optional scope."""
    return Atomic(AtomicOp.ADD, _addr(array, index), value, scope)


def atomic_sub(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicSub(&array[index], value)``."""
    return Atomic(AtomicOp.SUB, _addr(array, index), value, scope)


def atomic_max(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicMax(&array[index], value)``."""
    return Atomic(AtomicOp.MAX, _addr(array, index), value, scope)


def atomic_min(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicMin(&array[index], value)``."""
    return Atomic(AtomicOp.MIN, _addr(array, index), value, scope)


def atomic_or(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicOr(&array[index], value)``."""
    return Atomic(AtomicOp.OR, _addr(array, index), value, scope)


def atomic_and(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicAnd(&array[index], value)``."""
    return Atomic(AtomicOp.AND, _addr(array, index), value, scope)


def atomic_cas(array, index: int, compare, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicCAS(&array[index], compare, value)``.

    iGUARD treats an ``atomicCAS`` followed by a threadfence as a lock
    acquire (section 6.3).
    """
    return Atomic(AtomicOp.CAS, _addr(array, index), value, scope, compare=compare)


def atomic_exch(array, index: int, value, scope: Scope = Scope.DEVICE) -> Atomic:
    """``atomicExch(&array[index], value)``.

    A threadfence followed by ``atomicExch`` is inferred as a lock release.
    """
    return Atomic(AtomicOp.EXCH, _addr(array, index), value, scope)


def atomic_load(array, index: int, scope: Scope = Scope.DEVICE) -> Atomic:
    """An atomic read: ``atomicAdd(&array[index], 0)``.

    The idiomatic way GPU code polls synchronization flags and counters
    (often spelled as a ``volatile`` load in CUDA source).  Modeled as a
    zero-add so the detector sees it as an atomic access — which is what
    makes flag spins race-free under check P6.
    """
    return Atomic(AtomicOp.ADD, _addr(array, index), 0, scope)


def fence(scope: Scope = Scope.DEVICE) -> Fence:
    """A scoped threadfence."""
    return Fence(scope)


def fence_block() -> Fence:
    """``__threadfence_block()``."""
    return Fence(Scope.BLOCK)


def fence_device() -> Fence:
    """``__threadfence()``."""
    return Fence(Scope.DEVICE)


def syncthreads() -> Syncthreads:
    """``__syncthreads()``."""
    return Syncthreads()


def syncwarp(mask: Optional[int] = None) -> Syncwarp:
    """``__syncwarp(mask)``."""
    return Syncwarp(mask)


def compute(cycles: int = 1) -> Compute:
    """Declare ``cycles`` of arithmetic work."""
    return Compute(cycles)


def apply_atomic(op: AtomicOp, old, value, compare=None):
    """Compute the new memory value of an atomic read-modify-write."""
    if op is AtomicOp.ADD:
        return old + value
    if op is AtomicOp.SUB:
        return old - value
    if op is AtomicOp.EXCH:
        return value
    if op is AtomicOp.CAS:
        return value if old == compare else old
    if op is AtomicOp.MIN:
        return min(old, value)
    if op is AtomicOp.MAX:
        return max(old, value)
    if op is AtomicOp.OR:
        return old | value
    if op is AtomicOp.AND:
        return old & value
    if op is AtomicOp.XOR:
        return old ^ value
    raise ValueError(f"unknown atomic op: {op}")
