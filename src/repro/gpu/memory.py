"""Simulated GPU global memory.

The paper's races flow through the GPU's *global* memory (tens of GBs), as
opposed to the per-SM scratchpad that earlier detectors covered.  This
module provides:

- :class:`GlobalMemory` — a word-addressed (4 bytes per word, matching
  iGUARD's default metadata granularity) memory with a bump allocator that
  plays the role of ``cudaMalloc`` and tracks the device's free capacity
  (iGUARD instruments allocations to decide how much metadata to pre-fault,
  section 6.1);
- :class:`GlobalArray` — a typed view over an allocation, used by kernels;
- an optional *weak visibility* mode, where stores and block-scoped atomics
  land in a per-threadblock store buffer until a device-scope fence or
  atomic publishes them.  This coarse model lets scoped races (section 3.1)
  actually produce stale values in examples; the race detector itself never
  depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.gpu.instructions import AtomicOp, Scope, apply_atomic

WORD_BYTES = 4
_BASE_ADDRESS = 0x1000


@dataclass
class Allocation:
    """One ``cudaMalloc``-style allocation."""

    name: str
    base: int
    num_words: int

    @property
    def num_bytes(self) -> int:
        return self.num_words * WORD_BYTES

    @property
    def end(self) -> int:
        return self.base + self.num_bytes


class GlobalArray:
    """A kernel-visible view of an allocation, indexed by 4-byte element."""

    __slots__ = ("memory", "allocation")

    def __init__(self, memory: "GlobalMemory", allocation: Allocation):
        self.memory = memory
        self.allocation = allocation

    def __len__(self) -> int:
        return self.allocation.num_words

    @property
    def name(self) -> str:
        return self.allocation.name

    @property
    def base(self) -> int:
        return self.allocation.base

    def addr_of(self, index: int) -> int:
        """Byte address of element ``index``; bounds-checked."""
        if not 0 <= index < self.allocation.num_words:
            raise InvalidAddressError(
                f"index {index} out of bounds for {self.name}[{len(self)}]"
            )
        return self.allocation.base + index * WORD_BYTES

    # Host-side (CPU) accessors: read/write memory outside kernel execution,
    # the analogue of cudaMemcpy.  They bypass store buffers deliberately.

    def read(self, index: int):
        """Host-side read of one element (flushes nothing)."""
        return self.memory.host_read(self.addr_of(index))

    def write(self, index: int, value) -> None:
        """Host-side write of one element."""
        self.memory.host_write(self.addr_of(index), value)

    def to_list(self) -> List:
        """Host-side snapshot of the whole array."""
        return [self.read(i) for i in range(len(self))]

    def fill(self, value) -> None:
        """Host-side ``cudaMemset``-style fill."""
        for i in range(len(self)):
            self.write(i, value)

    def load_list(self, values) -> None:
        """Host-side bulk copy into the array (``cudaMemcpy`` H2D)."""
        for i, value in enumerate(values):
            self.write(i, value)


class GlobalMemory:
    """Word-granular global memory with a bump allocator.

    When ``weak_visibility`` is enabled, plain stores and block-scoped
    atomics are buffered per threadblock and only become globally visible
    when that block executes a device-scope fence or atomic (or at kernel
    end).  Reads consult the reader's own block buffer first, then the
    backing store — so an insufficiently-scoped producer/consumer pair can
    observe stale data, like the work-stealing bug of Figure 1.
    """

    def __init__(self, capacity_bytes: int, weak_visibility: bool = False):
        self.capacity_bytes = capacity_bytes
        self.weak_visibility = weak_visibility
        self._backing: Dict[int, object] = {}
        self._block_buffers: Dict[int, Dict[int, object]] = {}
        self._allocations: List[Allocation] = []
        self._bump = _BASE_ADDRESS
        self._bytes_allocated = 0
        #: Callbacks invoked on each allocation; iGUARD hooks these the way
        #: the real tool instruments cudaMalloc (section 6.1).
        self.alloc_hooks: List[Callable[[Allocation], None]] = []

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    @property
    def bytes_allocated(self) -> int:
        """Bytes currently reserved by the application."""
        return self._bytes_allocated

    @property
    def bytes_free(self) -> int:
        """Device capacity not yet claimed by application allocations."""
        return self.capacity_bytes - self._bytes_allocated

    def alloc(self, name: str, num_words: int, init=0) -> GlobalArray:
        """Allocate ``num_words`` 4-byte elements, initialized to ``init``.

        Raises :class:`OutOfMemoryError` when the device capacity is
        exhausted, like ``cudaMalloc`` returning ``cudaErrorMemoryAllocation``.
        """
        num_bytes = num_words * WORD_BYTES
        if num_bytes > self.bytes_free:
            raise OutOfMemoryError(
                f"alloc of {num_bytes} bytes for {name!r} exceeds free "
                f"device memory ({self.bytes_free} bytes left)"
            )
        allocation = Allocation(name=name, base=self._bump, num_words=num_words)
        self._bump = allocation.end + WORD_BYTES  # red zone between allocations
        self._bytes_allocated += num_bytes
        self._allocations.append(allocation)
        array = GlobalArray(self, allocation)
        if init is not None:
            for i in range(num_words):
                self._backing[array.addr_of(i)] = init
        for hook in self.alloc_hooks:
            hook(allocation)
        return array

    def allocations(self) -> List[Allocation]:
        """All live allocations, in allocation order."""
        return list(self._allocations)

    def owner_of(self, address: int) -> Optional[Allocation]:
        """The allocation containing ``address``, if any."""
        for allocation in self._allocations:
            if allocation.base <= address < allocation.end:
                return allocation
        return None

    def describe(self, address: int) -> str:
        """Human-readable ``name[index]`` form of an address, for reports."""
        allocation = self.owner_of(address)
        if allocation is None:
            return f"0x{address:x}"
        index = (address - allocation.base) // WORD_BYTES
        return f"{allocation.name}[{index}]"

    # ------------------------------------------------------------------
    # Device-side accesses (called by the scheduler on behalf of threads)
    # ------------------------------------------------------------------

    def _check(self, address: int) -> None:
        if address % WORD_BYTES:
            raise InvalidAddressError(f"unaligned access at 0x{address:x}")
        if address not in self._backing and self.owner_of(address) is None:
            raise InvalidAddressError(f"wild access at 0x{address:x}")

    def device_load(self, address: int, block_id: int):
        """A thread of ``block_id`` loads ``address``."""
        self._check(address)
        if self.weak_visibility:
            buffered = self._block_buffers.get(block_id)
            if buffered is not None and address in buffered:
                return buffered[address]
        return self._backing.get(address, 0)

    def device_store(self, address: int, value, block_id: int) -> None:
        """A thread of ``block_id`` stores ``value`` to ``address``."""
        self._check(address)
        if self.weak_visibility:
            self._block_buffers.setdefault(block_id, {})[address] = value
        else:
            self._backing[address] = value

    def device_atomic(
        self,
        op: AtomicOp,
        address: int,
        value,
        block_id: int,
        scope: Scope = Scope.DEVICE,
        compare=None,
    ):
        """A scoped atomic read-modify-write; returns the old value."""
        self._check(address)
        if self.weak_visibility and scope.effective is Scope.BLOCK:
            buffer = self._block_buffers.setdefault(block_id, {})
            old = buffer.get(address, self._backing.get(address, 0))
            buffer[address] = apply_atomic(op, old, value, compare)
            return old
        if self.weak_visibility:
            # A device-scope atomic publishes this block's pending writes
            # (it acts as a synchronization point for the block's buffer).
            self.flush_block(block_id)
        old = self._backing.get(address, 0)
        self._backing[address] = apply_atomic(op, old, value, compare)
        return old

    def flush_block(self, block_id: int) -> None:
        """Publish a block's buffered writes (device-scope fence effect)."""
        buffered = self._block_buffers.pop(block_id, None)
        if buffered:
            self._backing.update(buffered)

    def flush_all(self) -> None:
        """Publish every block's buffered writes (kernel completion)."""
        for block_id in list(self._block_buffers):
            self.flush_block(block_id)

    # ------------------------------------------------------------------
    # Host-side accesses
    # ------------------------------------------------------------------

    def host_read(self, address: int):
        """Read from the backing store, as the CPU would after kernel end."""
        self._check(address)
        return self._backing.get(address, 0)

    def host_write(self, address: int, value) -> None:
        """Write to the backing store from the host."""
        self._check(address)
        self._backing[address] = value
