"""Kernel plumbing: thread contexts and generator-thread wrappers.

A *kernel* here is a Python generator function with signature
``kernel(ctx, *args)`` that yields :mod:`repro.gpu.instructions` objects.
Each simulated thread runs one generator instance.  The scheduler never
touches generators directly; it works with :class:`KernelThread`, which
tracks the thread's pending instruction, its instruction pointer (source
line, which doubles as the "SASS IP" in race reports), and its barrier
status.
"""

from __future__ import annotations

import enum
import inspect
from typing import Any, Callable, Optional, Tuple

from repro.errors import KernelSourceError
from repro.gpu.ids import ThreadLocation
from repro.gpu.instructions import Instruction

#: Shared ip strings, keyed by (code name, line): one object per site.
_IP_POOL: dict = {}


class ThreadCtx:
    """Per-thread view of the launch: the CUDA built-in variables.

    Attributes:
        tid: ``blockIdx.x * blockDim.x + threadIdx.x`` — global linear id.
        tid_in_block: ``threadIdx.x``.
        block_id: ``blockIdx.x``.
        lane: thread index within the warp.
        warp_id: global warp index.
        warp_in_block: warp index within the block.
        block_dim: ``blockDim.x`` (threads per block).
        grid_dim: ``gridDim.x`` (blocks per grid).
        warp_size: ``warpSize``.
    """

    __slots__ = (
        "location",
        "block_dim",
        "grid_dim",
        "warp_size",
    )

    def __init__(
        self,
        location: ThreadLocation,
        block_dim: int,
        grid_dim: int,
        warp_size: int,
    ):
        self.location = location
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.warp_size = warp_size

    @property
    def tid(self) -> int:
        return self.location.global_tid

    @property
    def tid_in_block(self) -> int:
        return self.location.tid_in_block

    @property
    def block_id(self) -> int:
        return self.location.block_id

    @property
    def lane(self) -> int:
        return self.location.lane

    @property
    def warp_id(self) -> int:
        return self.location.warp_id

    @property
    def warp_in_block(self) -> int:
        return self.location.warp_in_block

    @property
    def num_threads(self) -> int:
        """Total threads in the grid."""
        return self.block_dim * self.grid_dim

    @property
    def is_block_leader(self) -> bool:
        """Whether this is thread 0 of its block."""
        return self.tid_in_block == 0

    @property
    def is_grid_leader(self) -> bool:
        """Whether this is thread 0 of the grid."""
        return self.tid == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThreadCtx(tid={self.tid}, block={self.block_id}, "
            f"warp={self.warp_id}, lane={self.lane})"
        )


class ThreadStatus(enum.Enum):
    """Scheduler-visible state of a simulated thread."""

    READY = "ready"  # has a pending instruction to execute
    AT_BLOCK_BARRIER = "at_block_barrier"
    AT_WARP_BARRIER = "at_warp_barrier"
    DONE = "done"


class KernelThread:
    """One simulated GPU thread: a generator plus scheduling state."""

    __slots__ = (
        "ctx",
        "kernel_name",
        "_gen",
        "pending",
        "pending_ip",
        "status",
        "barrier_mask",
        "steps",
        "mutator",
        "_inject",
    )

    def __init__(
        self,
        kernel_fn: Callable,
        ctx: ThreadCtx,
        args: Tuple[Any, ...],
        mutator=None,
    ):
        self.ctx = ctx
        self.kernel_name = getattr(kernel_fn, "__name__", "kernel")
        gen = kernel_fn(ctx, *args)
        if not inspect.isgenerator(gen):
            raise KernelSourceError(
                f"kernel {self.kernel_name!r} must be a generator function "
                "(it must contain at least one yield)"
            )
        self._gen = gen
        self.pending: Optional[Instruction] = None
        self.pending_ip: str = f"{self.kernel_name}:start"
        self.status = ThreadStatus.READY
        self.barrier_mask: Optional[int] = None
        self.steps = 0
        #: Fault-injection hook (repro.faults.mutators.StreamMutator).
        #: The hook lives here — not as a generator wrapper — because a
        #: wrapper's frame would terminate the ``gi_yieldfrom`` walk in
        #: :meth:`_capture_ip` and collapse every instruction onto one ip,
        #: destroying convergence grouping and race-site reporting.
        self.mutator = mutator
        #: Instructions a mutator queued to run before the generator is
        #: advanced again (e.g. a store reordered past a barrier).
        self._inject: Optional[list] = None
        self._advance(None, first=True)

    # ------------------------------------------------------------------

    def _capture_ip(self) -> str:
        # Walk the yield-from delegation chain so instructions yielded by
        # subgenerators (CG sync, block primitives, lock helpers) report
        # their own source location, not the outer ``yield from`` line.
        gen = self._gen
        while True:
            inner = getattr(gen, "gi_yieldfrom", None)
            if inner is None or getattr(inner, "gi_frame", None) is None:
                break
            gen = inner
        frame = gen.gi_frame
        if frame is None:  # pragma: no cover - only after StopIteration
            return f"{self.kernel_name}:end"
        name = gen.gi_code.co_name
        lineno = frame.f_lineno
        # Pool the ip string: every thread suspended at one source line
        # shares one object, so the scheduler's convergence-group keys
        # hash and compare by identity instead of re-comparing characters.
        key = (name, lineno)
        ip = _IP_POOL.get(key)
        if ip is None:
            ip = _IP_POOL[key] = f"{name}:{lineno}"
        return ip

    def _advance(self, value, first: bool = False) -> None:
        """Run the generator until its next yield (or completion).

        When a mutator is installed, each fetched instruction is offered to
        it: the mutator may keep it, replace it, drop it (the yield then
        evaluates to None, which is what barrier/fence/store yields produce
        anyway), or schedule extra instructions to execute before the
        generator resumes.  Results of injected instructions are discarded;
        the generator only ever sees the result of its own instruction.
        """
        if self._inject:
            self.pending, self.pending_ip = self._inject.pop(0)
            self.status = ThreadStatus.READY
            self.steps += 1
            return
        while True:
            try:
                if first:
                    instr = next(self._gen)
                else:
                    instr = self._gen.send(value)
            except StopIteration:
                self.pending = None
                self.status = ThreadStatus.DONE
                return
            if not isinstance(instr, Instruction):
                raise KernelSourceError(
                    f"kernel {self.kernel_name!r} yielded {instr!r}; kernels "
                    "must yield Instruction objects (use the helpers in "
                    "repro.gpu.instructions)"
                )
            ip = self._capture_ip()
            if self.mutator is not None:
                plan = self.mutator.on_instruction(self, instr, ip)
                if plan is None:  # dropped: complete the yield with None
                    first, value = False, None
                    continue
                if plan is not instr:
                    steps = plan if isinstance(plan, list) else [(plan, ip)]
                    instr, ip = steps[0]
                    if len(steps) > 1:
                        if self._inject is None:
                            self._inject = []
                        self._inject.extend(steps[1:])
            self.pending = instr
            self.pending_ip = ip
            self.status = ThreadStatus.READY
            self.steps += 1
            return

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.status is ThreadStatus.DONE

    @property
    def live(self) -> bool:
        return self.status is not ThreadStatus.DONE

    def complete(self, result=None) -> None:
        """Deliver the result of the pending instruction and fetch the next."""
        self._advance(result)

    def park_at_barrier(self, status: ThreadStatus, mask: Optional[int] = None) -> None:
        """Mark the thread as waiting at a block or warp barrier."""
        self.status = status
        self.barrier_mask = mask

    def release_from_barrier(self) -> None:
        """Resume past a barrier: the barrier instruction completes."""
        self.barrier_mask = None
        self._advance(None)
