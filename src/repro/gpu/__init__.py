"""The GPU execution-model substrate.

This subpackage is the reproduction's stand-in for real NVIDIA hardware: a
CUDA-like programming model (grids, threadblocks, warps, scoped atomics and
fences, threadblock and warp barriers) executed by either a pre-Volta
lockstep scheduler or a Volta-style Independent Thread Scheduling (ITS)
scheduler.  Kernels are Python generator functions that yield instructions
from :mod:`repro.gpu.instructions`.
"""

from repro.gpu.arch import GPUConfig, TITAN_RTX
from repro.gpu.device import Device, KernelRun
from repro.gpu.ids import Dim3, ThreadLocation
from repro.gpu.instructions import (
    Scope,
    AtomicOp,
    Load,
    Store,
    Atomic,
    Fence,
    Syncthreads,
    Syncwarp,
    Compute,
    load,
    store,
    atomic_add,
    atomic_sub,
    atomic_max,
    atomic_min,
    atomic_or,
    atomic_and,
    atomic_cas,
    atomic_exch,
    atomic_load,
    fence,
    fence_block,
    fence_device,
    syncthreads,
    syncwarp,
    compute,
)
from repro.gpu.memory import GlobalArray, GlobalMemory
from repro.gpu.scheduler import SchedulerKind

__all__ = [
    "GPUConfig",
    "TITAN_RTX",
    "Device",
    "KernelRun",
    "Dim3",
    "ThreadLocation",
    "Scope",
    "AtomicOp",
    "Load",
    "Store",
    "Atomic",
    "Fence",
    "Syncthreads",
    "Syncwarp",
    "Compute",
    "load",
    "store",
    "atomic_add",
    "atomic_sub",
    "atomic_max",
    "atomic_min",
    "atomic_or",
    "atomic_and",
    "atomic_cas",
    "atomic_exch",
    "atomic_load",
    "fence",
    "fence_block",
    "fence_device",
    "syncthreads",
    "syncwarp",
    "compute",
    "GlobalArray",
    "GlobalMemory",
    "SchedulerKind",
]
