"""The ScoR benchmark suite (7 racy workloads, 31 races).

ScoR is the authors' scoped-racey benchmark suite (github.com/csl-iisc/ScoR),
built for ScoRD and reused by iGUARD; it contributed 26 scoped races plus 5
previously-unreported ITS races that iGUARD found on top (section 7.1).
Each workload below implements the named algorithm over the kernel DSL and
seeds the Table 4 number of racy sites with the Table 4 type mix:

==============  =====  ==============
workload        races  types
==============  =====  ==============
matrix-mult     4      IL, AS, BR
1dconv          1      AS
graph-con       5      AS, BR, DR
reduction       7      ITS, BR, DR
rule-110        2      AS, DR
uts             6      IL, AS
graph-color     6      AS, BR, DR
==============  =====  ==============

Races are seeded in a *direction-pinned* way: the conflicting pair is
ordered at runtime through an unfenced atomic flag (which establishes no
happens-before for the detector — exactly the bug class these benchmarks
carry), so each seeded site is reported deterministically and exactly once.
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_load,
    atomic_min,
    compute,
    fence_device,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    lock_acquire,
    lock_release,
    signal,
    signal_fenced,
    wait_for,
    wait_for_acquire,
)


# ---------------------------------------------------------------------------
# matrix-mult: tiled matrix multiplication.
# Races: 1 IL (per-thread locks protecting different locks for one
# accumulator), 1 AS (block-scope atomic column max read across blocks),
# 2 BR (row sums shared across warps of a block without a barrier).
# ---------------------------------------------------------------------------


def _matrix_mult_kernel(ctx, a, b, c, sink, rowsum, colmax, acc, locks, dummy_locks, flags, n):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: each thread computes one output row of C = A x B.
    if tid < n:
        for j in range(n):
            total = 0
            for k in range(n):
                av = yield load(a, tid * n + k)
                bv = yield load(b, k * n + j)
                total += av * bv
            yield store(c, tid * n + j, total)
        yield compute(4 * n)

    # Hand-rolled phase barrier: thread 0 publishes the phase word and
    # every thread of the grid polls it — the shared-variable hotspot
    # that makes this a Figure 12 contention workload.
    if tid == 0:
        yield from signal(flags, 3)
    yield from wait_for(flags, 3)

    # Lock-protocol warmup: every lane takes its own lock simultaneously,
    # which is how iGUARD infers per-thread locking for this warp.
    if ctx.block_id == 0 and ctx.warp_in_block == 0:
        yield from lock_acquire(dummy_locks, lane)
        yield from lock_release(dummy_locks, lane)

    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        # IL producer: update the accumulator under lock 0.
        yield from lock_acquire(locks, 0)
        v = yield load(acc, 0)
        yield store(acc, 0, v + 1)
        yield from lock_release(locks, 0)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 1:
        # IL consumer: same accumulator, *different* lock -> lockset race.
        yield from wait_for(flags, 0)
        yield from lock_acquire(locks, 1)
        v = yield load(acc, 0)  # RACE (IL): no common lock with lane 0
        yield store(acc, 0, v + 1)
        yield from lock_release(locks, 1)

    # AS: block 0's leader maintains a block-scope running column max...
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(colmax, 0, 1, scope=Scope.BLOCK)
        yield from signal(flags, 1)
    # ...which block 1's leader then reads: the block scope never made the
    # update visible outside block 0.
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 1)
        v = yield load(colmax, 0)  # RACE (AS): insufficient atomic scope
        yield store(sink, 0, v)

    # BR x2: warp 0 publishes per-warp row sums; warp 1 of the same block
    # consumes them with no intervening syncthreads.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(rowsum, 0, 11)
        yield store(rowsum, 1, 22)
        yield from signal(flags, 2)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 2)
        v0 = yield load(rowsum, 0)  # RACE (BR): missing __syncthreads
        v1 = yield load(rowsum, 1)  # RACE (BR): missing __syncthreads
        yield store(sink, 1, v0 + v1)


def run_matrix_mult(device: Device, seed: int) -> None:
    """Host driver: 8x8 matmul over 2 blocks of 16 threads."""
    n = 8
    a = device.alloc("A", n * n, init=1)
    b = device.alloc("B", n * n, init=2)
    c = device.alloc("C", n * n, init=0)
    sink = device.alloc("sink", 2, init=0)
    rowsum = device.alloc("rowsum", 2, init=0)
    colmax = device.alloc("colmax", 1, init=0)
    acc = device.alloc("acc", 1, init=0)
    locks = device.alloc("locks", 2, init=0)
    dummy_locks = device.alloc("dummy_locks", 16, init=0)
    flags = device.alloc("flags", 4, init=0)
    device.launch(
        _matrix_mult_kernel,
        grid_dim=2,
        block_dim=16,
        args=(a, b, c, sink, rowsum, colmax, acc, locks, dummy_locks, flags, n),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# 1dconv: 1-D convolution with halo exchange.
# Race: 1 AS — the halo ready-count is published with a block-scope atomic.
# ---------------------------------------------------------------------------


def _conv1d_kernel(ctx, src, dst, sink, halo, flags, n, radius):
    tid = ctx.tid

    # Real work: each thread convolves its element with a [-radius, radius]
    # window (source is read-only, so this is race-free).
    if tid < n:
        total = 0
        for offset in range(-radius, radius + 1):
            idx = tid + offset
            if 0 <= idx < n:
                v = yield load(src, idx)
                total += v
        yield store(dst, tid, total)
        yield compute(2 * radius)

    # Hand-rolled phase barrier: every thread polls the shared phase word
    # (Figure 12's contention hotspot for this kernel).
    if tid == 0:
        yield from signal(flags, 1)
    yield from wait_for(flags, 1)

    # Block 0's leader publishes its boundary element for block 1, but the
    # accompanying counter update uses a block-scope atomic.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(halo, 0, 7, scope=Scope.BLOCK)
        yield from signal(flags, 0)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        v = yield load(halo, 0)  # RACE (AS): block-scope halo publication
        yield store(sink, 0, v)


def run_conv1d(device: Device, seed: int) -> None:
    """Host driver: 32-wide convolution, radius 2, 2 blocks."""
    n = 32
    src = device.alloc("src", n, init=3)
    dst = device.alloc("dst", n, init=0)
    sink = device.alloc("sink", 1, init=0)
    halo = device.alloc("halo", 2, init=0)
    flags = device.alloc("flags", 2, init=0)
    device.launch(
        _conv1d_kernel,
        grid_dim=2,
        block_dim=16,
        args=(src, dst, sink, halo, flags, n, 2),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# graph-con: graph connectivity via pointer-jumping (hook & compress).
# Races: 5 — AS (block-scope hook counter), 2 BR (component labels shared
# across warps without a barrier), 2 DR (cross-block label exchange with no
# device fence).
# ---------------------------------------------------------------------------


def _graph_con_kernel(ctx, parent, edges_u, edges_v, labels, hooked, flags, n_edges):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: one hooking round.  Each thread owns one edge and hooks
    # the larger root under the smaller using a device-scope atomic (min).
    # Parent labels are polled atomically, the idiomatic way concurrent
    # graph kernels read mutable labels.
    if tid < n_edges:
        u = yield load(edges_u, tid)
        v = yield load(edges_v, tid)
        pu = yield atomic_load(parent, u)
        pv = yield atomic_load(parent, v)
        if pu != pv:
            lo, hi = (pu, pv) if pu < pv else (pv, pu)
            yield atomic_min(parent, hi, lo)
    yield syncthreads()

    # Hand-rolled round barrier across blocks: every thread polls the
    # shared round counter (Figure 12's contention hotspot).
    if tid == 0:
        yield from signal(flags, 3)
    yield from wait_for(flags, 3)

    # AS: hooked-count aggregated with a block-scope atomic but consumed
    # by another block's leader.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(hooked, 0, 1, scope=Scope.BLOCK)
        yield from signal(flags, 0)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        v = yield load(hooked, 0)  # RACE (AS)
        yield store(labels, 8, v)

    # BR x2: warp 0 writes two compressed labels; warp 1 of the same block
    # reads them with no intervening barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(labels, 0, 5)
        yield store(labels, 1, 6)
        yield from signal(flags, 1)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 1)
        a = yield load(labels, 0)  # RACE (BR)
        b = yield load(labels, 1)  # RACE (BR)
        yield store(labels, 9, a + b)

    # DR x2: block 0 exports two frontier labels; block 1 imports them.
    # The export is published through a flag with *no device fence*.
    if ctx.block_id == 0 and ctx.tid_in_block == 1:
        yield store(labels, 2, 70)
        yield store(labels, 3, 71)
        yield from signal(flags, 2)
    if ctx.block_id == 1 and ctx.tid_in_block == 1:
        yield from wait_for(flags, 2)
        a = yield load(labels, 2)  # RACE (DR)
        b = yield load(labels, 3)  # RACE (DR)
        yield store(labels, 10, a + b)


def run_graph_con(device: Device, seed: int) -> None:
    """Host driver: 24-edge graph over 16 vertices, 2 blocks."""
    n_vertices, n_edges = 16, 24
    parent = device.alloc("parent", n_vertices, init=0)
    parent.load_list(list(range(n_vertices)))
    edges_u = device.alloc("edges_u", n_edges, init=0)
    edges_v = device.alloc("edges_v", n_edges, init=0)
    edges_u.load_list([i % n_vertices for i in range(n_edges)])
    edges_v.load_list([(i * 5 + 2) % n_vertices for i in range(n_edges)])
    labels = device.alloc("labels", 12, init=0)
    hooked = device.alloc("hooked", 1, init=0)
    flags = device.alloc("flags", 4, init=0)
    device.launch(
        _graph_con_kernel,
        grid_dim=2,
        block_dim=16,
        args=(parent, edges_u, edges_v, labels, hooked, flags, n_edges),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# reduction: two-level tree reduction (the paper's Figure 2 kernel family).
# Races: 7 — 3 ITS (warp-level steps missing __syncwarp), 2 BR (block
# combine missing __syncthreads), 2 DR (grid combine missing device fence).
# ---------------------------------------------------------------------------


def _reduction_kernel(ctx, data, partial, block_out, block_tally, result, flags, n):
    tid = ctx.tid
    lane = ctx.lane
    base = ctx.warp_id * ctx.warp_size

    # Real work: every thread loads and locally accumulates a strided slice.
    # The per-block running total uses the fast block-scope atomic — this
    # (correct, intra-block) use is what makes the ScoR suite un-runnable
    # under Barracuda, which rejects scoped atomics outright.
    total = 0
    for i in range(tid, n, ctx.num_threads):
        v = yield load(data, i)
        total += v
    yield store(partial, tid, total)
    yield atomic_add(block_tally, ctx.block_id, total, scope=Scope.BLOCK)
    yield syncwarp()

    # Warp-level combine: lane 0 folds the warp's partials (ordered by the
    # syncwarp above, so these reads are race-free)...
    if lane == 0:
        s1 = yield load(partial, tid + 1)
        s2 = yield load(partial, tid + 2)
        s3 = yield load(partial, tid + 3)
        yield store(partial, tid, total + s1 + s2 + s3)
        yield from signal(flags, ctx.warp_id)
    elif lane in (1, 2, 3):
        # ...but lanes 1-3 then *reuse* their partial slots for the next
        # phase without another __syncwarp — the Figure 2 bug.  The store
        # below conflicts with lane 0's reads above.
        yield from wait_for(flags, ctx.warp_id, 1)
        v = yield load(data, tid % n)
        if lane == 1:
            yield store(partial, tid, v)  # RACE (ITS): missing __syncwarp
        elif lane == 2:
            yield store(partial, tid, v)  # RACE (ITS): missing __syncwarp
        else:
            yield store(partial, tid, v)  # RACE (ITS): missing __syncwarp

    # Block-level combine, missing __syncthreads: warp 1's partial is read
    # by the block leader while warp 1 may still be writing.
    if ctx.warp_in_block == 1 and lane == 0:
        yield store(block_out, ctx.block_id * 2, total)
        yield store(block_out, ctx.block_id * 2 + 1, total)
        yield from signal(flags, 8 + ctx.block_id)
    if ctx.tid_in_block == 0:
        yield from wait_for(flags, 8 + ctx.block_id)
        a = yield load(block_out, ctx.block_id * 2)  # RACE (BR)
        b = yield load(block_out, ctx.block_id * 2 + 1)  # RACE (BR)
        yield store(partial, tid, a + b)

    # Grid-level combine, missing device fence: block 1's leader exports
    # its block sums; block 0's leader folds them into the result.
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield store(result, 1, total)
        yield store(result, 2, total)
        yield from signal(flags, 12)
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 12)
        a = yield load(result, 1)  # RACE (DR)
        b = yield load(result, 2)  # RACE (DR)
        yield store(result, 0, a + b)


def run_reduction(device: Device, seed: int) -> None:
    """Host driver: reduce 64 elements over 2 blocks of 16 threads."""
    n = 64
    data = device.alloc("data", n, init=1)
    partial = device.alloc("partial", 32, init=0)
    block_out = device.alloc("block_out", 4, init=0)
    block_tally = device.alloc("block_tally", 2, init=0)
    result = device.alloc("result", 4, init=0)
    flags = device.alloc("flags", 16, init=0)
    device.launch(
        _reduction_kernel,
        grid_dim=2,
        block_dim=16,
        args=(data, partial, block_out, block_tally, result, flags, n),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# rule-110: elementary cellular automaton, double-buffered generations.
# Races: 2 — AS (generation counter bumped with block scope), DR (boundary
# cell exchanged across blocks without a device fence).
# ---------------------------------------------------------------------------

_RULE110 = (0, 1, 1, 1, 0, 1, 1, 0)


def _rule110_kernel(ctx, cells, next_cells, sink, generation, flags, steps):
    # Real work: compute-heavy generation updates.  Each block evolves an
    # independent ring of block_dim cells, barrier-synchronized per step —
    # race-free, like a production automaton kernel that exchanges tile
    # boundaries only at kernel boundaries.
    base = ctx.block_id * ctx.block_dim
    me = ctx.tid_in_block
    width = ctx.block_dim
    for _ in range(steps):
        left = yield load(cells, base + (me - 1) % width)
        mid = yield load(cells, base + me)
        right = yield load(cells, base + (me + 1) % width)
        pattern = (left << 2) | (mid << 1) | right
        yield compute(6)
        yield store(next_cells, base + me, _RULE110[pattern])
        yield syncthreads()
        v = yield load(next_cells, base + me)
        yield store(cells, base + me, v)
        yield syncthreads()

    # AS: the generation counter is bumped block-scope by block 0's leader
    # but read by block 1's leader.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(generation, 0, steps, scope=Scope.BLOCK)
        yield from signal(flags, 0)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        v = yield load(generation, 0)  # RACE (AS)
        yield store(sink, 0, v)

    # DR: block 1 exports its boundary cell for the next kernel's halo
    # with no device fence.
    if ctx.block_id == 1 and ctx.tid_in_block == 1:
        yield store(sink, 1, 1)
        yield from signal(flags, 1)
    if ctx.block_id == 0 and ctx.tid_in_block == 1:
        yield from wait_for(flags, 1)
        v = yield load(sink, 1)  # RACE (DR)
        yield store(sink, 2, v)


def run_rule110(device: Device, seed: int) -> None:
    """Host driver: two 16-cell rings, 3 generations, 2 blocks."""
    cells = device.alloc("cells", 32, init=0)
    cells.write(8, 1)
    cells.write(24, 1)
    next_cells = device.alloc("next_cells", 32, init=0)
    sink = device.alloc("sink", 3, init=0)
    generation = device.alloc("generation", 1, init=0)
    flags = device.alloc("flags", 2, init=0)
    device.launch(
        _rule110_kernel,
        grid_dim=2,
        block_dim=16,
        args=(cells, next_cells, sink, generation, flags, 3),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# uts: unbalanced tree search with work stealing.
# Races: 6 — 2 IL (deque head/tail updated under per-thread locks that do
# not match), 4 AS (block-scope deque bounds read/updated by stealers from
# other blocks).
# ---------------------------------------------------------------------------


def _uts_kernel(ctx, work, head, tail, depth, locks, dummy_locks, flags):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: expand a few synthetic tree nodes from the local deque.
    if tid < 8:
        for round_ in range(3):
            item = yield load(work, (tid + round_) % 16)
            yield compute(8 + (item % 4))

    # Per-thread locking warmup for the leader warp.
    if ctx.block_id == 0 and ctx.warp_in_block == 0:
        yield from lock_acquire(dummy_locks, lane)
        yield from lock_release(dummy_locks, lane)

    # IL x2: lane 0 updates the deque depth under lock 0; lane 1 updates it
    # under lock 1 (and the tail summary under the same wrong lock).
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield from lock_acquire(locks, 0)
        v = yield load(depth, 0)
        yield store(depth, 0, v + 1)
        w = yield load(depth, 1)
        yield store(depth, 1, w + 1)
        yield from lock_release(locks, 0)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 1:
        yield from wait_for(flags, 0)
        yield from lock_acquire(locks, 1)
        v = yield load(depth, 0)  # RACE (IL): disjoint lock for depth[0]
        yield store(depth, 0, v + 1)
        w = yield load(depth, 1)  # RACE (IL): disjoint lock for depth[1]
        yield store(depth, 1, w + 1)
        yield from lock_release(locks, 1)

    # AS x4: the local deque state (head, tail, node count, steal victim)
    # is maintained with block-scope atomics by the owner; a stealer from
    # block 1 reads the bounds (stale outside the scope) and bumps the
    # count/victim words with device-scope atomics that conflict with the
    # owner's block-scope ones.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(head, 0, 1, scope=Scope.BLOCK)
        yield atomic_add(tail, 0, 4, scope=Scope.BLOCK)
        yield atomic_add(head, 1, 1, scope=Scope.BLOCK)  # node count
        yield atomic_add(tail, 1, 1, scope=Scope.BLOCK)  # steal victim
        yield from signal(flags, 1)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 1)
        h = yield load(head, 0)  # RACE (AS): stale head for the stealer
        t = yield load(tail, 0)  # RACE (AS): stale tail for the stealer
        yield atomic_add(head, 1, 1)  # RACE (AS): device vs block atomics
        yield atomic_add(tail, 1, -1)  # RACE (AS): device vs block atomics
        yield store(work, 15, h + t)


def run_uts(device: Device, seed: int) -> None:
    """Host driver: 16-node synthetic tree, 2 blocks of 16 threads."""
    work = device.alloc("work", 16, init=2)
    head = device.alloc("head", 2, init=0)
    tail = device.alloc("tail", 2, init=0)
    depth = device.alloc("depth", 2, init=0)
    locks = device.alloc("locks", 2, init=0)
    dummy_locks = device.alloc("dummy_locks", 16, init=0)
    flags = device.alloc("flags", 2, init=0)
    device.launch(
        _uts_kernel,
        grid_dim=2,
        block_dim=16,
        args=(work, head, tail, depth, locks, dummy_locks, flags),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# graph-color: greedy graph coloring with work stealing (Figure 1's
# getWork pattern).  Races: 6 — 2 AS (the block-scope nextHead atomic read
# by stealing blocks, exactly Figure 1), 2 BR, 2 DR.
# ---------------------------------------------------------------------------


def _graph_color_kernel(ctx, colors_in, colors_out, adj, next_head, partition_end, forbidden, frontier, flags, n):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: Jones-Plassmann style round — read the *previous* round's
    # colors (read-only snapshot), write this round's color to the
    # thread's own slot.  Race-free by construction.
    if tid < n:
        used = 0
        for j in range(4):
            nbr = yield load(adj, tid * 4 + j)
            c = yield load(colors_in, nbr)
            if c >= 0:
                used |= 1 << c
        color = 0
        while used & (1 << color):
            color += 1
        yield compute(6)
        yield store(colors_out, tid, color)

    # AS x2: Figure 1's getWork — the victim block advances its own
    # currHead/nextHead with *block-scope* atomics; the stealing block's
    # leader reads the head (stale outside the scope) and advances the
    # victim's nextHead with a device-scope atomic.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(next_head, 0, 4, scope=Scope.BLOCK)
        yield atomic_add(next_head, 1, 4, scope=Scope.BLOCK)
        yield from signal(flags, 0)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        h = yield load(next_head, 0)  # RACE (AS): stale stolen head
        end = yield load(partition_end, 0)
        if h < end:
            yield atomic_add(next_head, 1, 4)  # RACE (AS): scope mismatch
        yield store(frontier, 4, h)

    # BR x2: forbidden-color masks shared between warps of block 0 with no
    # barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 2:
        yield store(forbidden, 0, 0b1010)
        yield store(forbidden, 1, 0b0101)
        yield from signal(flags, 1)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 2:
        yield from wait_for(flags, 1)
        m0 = yield load(forbidden, 0)  # RACE (BR)
        m1 = yield load(forbidden, 1)  # RACE (BR)
        yield store(frontier, 5, m0 | m1)

    # DR x2: the next-iteration frontier is exported to the other block
    # with no device fence.
    if ctx.block_id == 1 and ctx.tid_in_block == 1:
        yield store(frontier, 0, 100)
        yield store(frontier, 1, 101)
        yield from signal(flags, 2)
    if ctx.block_id == 0 and ctx.tid_in_block == 1:
        yield from wait_for(flags, 2)
        a = yield load(frontier, 0)  # RACE (DR)
        b = yield load(frontier, 1)  # RACE (DR)
        yield store(frontier, 6, a + b)


def run_graph_color(device: Device, seed: int) -> None:
    """Host driver: 16-vertex 4-regular graph, 2 blocks of 16 threads."""
    n = 16
    colors_in = device.alloc("colors_in", n, init=-1)
    colors_out = device.alloc("colors_out", n, init=-1)
    adj = device.alloc("adj", n * 4, init=0)
    adj.load_list([(i // 4 + j + 1) % n for i in range(n) for j in range(4)][: n * 4])
    next_head = device.alloc("next_head", 2, init=0)
    partition_end = device.alloc("partition_end", 2, init=64)
    forbidden = device.alloc("forbidden", 2, init=0)
    frontier = device.alloc("frontier", 8, init=0)
    flags = device.alloc("flags", 4, init=0)
    device.launch(
        _graph_color_kernel,
        grid_dim=2,
        block_dim=16,
        args=(colors_in, colors_out, adj, next_head, partition_end, forbidden, frontier, flags, n),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="matrix-mult",
        suite="ScoR",
        run=run_matrix_mult,
        expected_races=4,
        expected_types=frozenset({"IL", "AS", "BR"}),
        contention_heavy=True,
        description="tiled matrix multiply with locked accumulator",
    ),
    Workload(
        name="1dconv",
        suite="ScoR",
        run=run_conv1d,
        expected_races=1,
        expected_types=frozenset({"AS"}),
        contention_heavy=True,
        description="1-D convolution with halo exchange",
    ),
    Workload(
        name="graph-con",
        suite="ScoR",
        run=run_graph_con,
        expected_races=5,
        expected_types=frozenset({"AS", "BR", "DR"}),
        contention_heavy=True,
        description="graph connectivity (hook and compress)",
    ),
    Workload(
        name="reduction",
        suite="ScoR",
        run=run_reduction,
        expected_races=7,
        expected_types=frozenset({"ITS", "BR", "DR"}),
        description="two-level tree reduction (Figure 2 kernel family)",
    ),
    Workload(
        name="rule-110",
        suite="ScoR",
        run=run_rule110,
        expected_races=2,
        expected_types=frozenset({"AS", "DR"}),
        description="rule-110 cellular automaton, double buffered",
    ),
    Workload(
        name="uts",
        suite="ScoR",
        run=run_uts,
        expected_races=6,
        expected_types=frozenset({"IL", "AS"}),
        description="unbalanced tree search with work stealing",
    ),
    Workload(
        name="graph-color",
        suite="ScoR",
        run=run_graph_color,
        expected_races=6,
        expected_types=frozenset({"AS", "BR", "DR"}),
        description="greedy graph coloring with stealing (Figure 1)",
    ),
]
