"""NVlib_CG: the grid-sync race iGUARD found in NVIDIA's CG library.

The paper's headline bug report (section 7.1, Figure 10): NVIDIA's
grid-level synchronization fulfills the *execution* barrier property but
not the *memory* barrier property — the threadfence is executed only by
each block's leader, and a fence only orders the *calling thread's*
writes.  After the sync, threads are not guaranteed to see non-leader
writes from other blocks.  NVIDIA filed an internal bug based on this.

``grid_sync`` reproduces it directly: every thread writes its slot, the
grid "synchronizes" with the leader-only-fence barrier, and threads then
read a slot from another block — 1 device-scope (DR) race.
"""

from __future__ import annotations

from repro.cg import GridBarrier, this_grid
from repro.gpu.device import Device
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    compute,
    load,
    store,
    syncthreads,
)
from repro.workloads.base import Workload


def _grid_sync_kernel(ctx, barrier_state, data, out, blockhits, racy=True):
    tid = ctx.tid
    grid = this_grid(ctx, GridBarrier(barrier_state))

    # Every thread (leaders and non-leaders alike) produces a value.
    yield compute(4)
    yield store(data, tid, tid * 3 + 1)

    # Intra-block bookkeeping with the fast block-scope atomic.
    yield atomic_add(blockhits, ctx.block_id, 1, scope=Scope.BLOCK)
    yield syncthreads()
    if ctx.tid_in_block == 0:
        hits = yield load(blockhits, ctx.block_id)
        yield store(out, ctx.num_threads + ctx.block_id, hits)

    # Figure 10's sync: execution barrier yes, memory barrier no.  (The
    # fixed variant uses the corrected per-thread-fence barrier.)
    if racy:
        yield from grid.sync_racy()
    else:
        yield from grid.sync()

    # Consume a value produced by a thread of the *other* block.  The
    # producer never fenced, so its write is unordered with this read.
    partner = (tid + ctx.block_dim) % ctx.num_threads
    v = yield load(data, partner)  # RACE (DR): leader-only fence in grid sync
    yield store(out, tid, v)


def run_grid_sync(device: Device, seed: int, racy: bool = True) -> None:
    """Host driver: 2 blocks x 32 threads through the grid barrier."""
    grid_dim, block_dim = 2, 32
    n = grid_dim * block_dim
    barrier_state = device.alloc("grid_barrier", GridBarrier.NUM_WORDS, init=0)
    data = device.alloc("data", n, init=0)
    out = device.alloc("out", n + grid_dim, init=0)
    blockhits = device.alloc("blockhits", grid_dim, init=0)
    device.launch(
        _grid_sync_kernel,
        grid_dim=grid_dim,
        block_dim=block_dim,
        args=(barrier_state, data, out, blockhits, racy),
        seed=seed,
    )


def run_grid_sync_fixed(device: Device, seed: int) -> None:
    """The same application after applying NVIDIA's fix (race-free)."""
    run_grid_sync(device, seed, racy=False)


WORKLOADS = [
    Workload(
        name="grid_sync",
        suite="NVlib_CG",
        run=run_grid_sync,
        expected_races=1,
        expected_types=frozenset({"DR"}),
        description="NVIDIA CG library grid sync missing per-thread fence (Fig. 10)",
    ),
]
