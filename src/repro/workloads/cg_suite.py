"""The CG workload suite: NVIDIA Cooperative-Groups example applications.

Three applications from NVIDIA's CG samples (section 7's CG suite):

- **conjugGMB** — multi-block conjugate-gradient style solver.  Uses the
  *racy* grid synchronization, so per-thread vector updates are not
  visible across the barrier: 1 CG-induced DR race.  It also makes every
  thread spin on a shared convergence flag — the paper calls out exactly
  this ("launches many threads that synchronize by spinning on a shared
  variable") as the reason its unoptimized metadata contention reached
  706x (Figure 12).
- **reduceMB** — the paper's Figure 3: a multi-block reduction that syncs
  a *threadblock* where the whole *grid* must synchronize: 1 CG DR race.
- **warpAA** — warp-aggregated atomics, race-free (Table 5), but all
  warps hammer one global counter: a Figure 12 contention workload.

All three use block-scope atomics for their intra-block aggregation (the
fast idiom CG encourages), which is why Barracuda cannot run this suite.
"""

from __future__ import annotations

from repro.cg import GridBarrier, this_grid
from repro.gpu.device import Device
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_load,
    compute,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import signal, wait_for


# ---------------------------------------------------------------------------
# conjugGMB
# ---------------------------------------------------------------------------


def _conjug_gmb_kernel(ctx, barrier_state, x, r, dot, blocksum, converged, iters, racy=True):
    tid = ctx.tid
    grid = this_grid(ctx, GridBarrier(barrier_state))

    for it in range(iters):
        # Real work: axpy-style vector update (thread-private slots).
        xv = yield load(x, tid)
        rv = yield load(r, tid)
        yield compute(10)
        yield store(x, tid, xv + rv)

        # Block-level partial dot product via block-scope atomics (the
        # fast idiom; this is what makes the suite Barracuda-incompatible).
        yield atomic_add(blocksum, ctx.block_id, xv * rv, scope=Scope.BLOCK)
        yield syncthreads()
        if ctx.tid_in_block == 0:
            part = yield load(blocksum, ctx.block_id)
            yield atomic_add(dot, it, part)

        # Everyone spins until the leader declares the iteration converged
        # — thousands of threads polling one word (Figure 12's hotspot).
        if ctx.tid == 0:
            yield atomic_add(converged, 0, 1)
        while (yield atomic_load(converged, 0)) < it + 1:
            pass

        # The buggy grid-wide barrier: only block leaders fence, so the
        # x[] updates by non-leaders are unordered across the barrier.
        # (The fixed variant uses the corrected barrier here too.)
        if racy:
            yield from grid.sync_racy()
        else:
            yield from grid.sync()

        # Read a neighbour's vector element from the other block.
        nbr = (tid + ctx.block_dim) % ctx.num_threads
        nv = yield load(x, nbr)  # RACE (CG/DR): racy grid sync
        yield store(r, tid, nv)
        yield from grid.sync()  # correct barrier before the next iteration


def run_conjug_gmb(device: Device, seed: int, racy: bool = True) -> None:
    """Host driver: 4 blocks x 32 threads, 2 solver iterations."""
    grid_dim, block_dim, iters = 4, 32, 2
    n = grid_dim * block_dim
    barrier_state = device.alloc("grid_barrier", GridBarrier.NUM_WORDS, init=0)
    x = device.alloc("x", n, init=1)
    r = device.alloc("r", n, init=2)
    dot = device.alloc("dot", iters, init=0)
    blocksum = device.alloc("blocksum", grid_dim, init=0)
    converged = device.alloc("converged", 1, init=0)
    device.launch(
        _conjug_gmb_kernel,
        grid_dim=grid_dim,
        block_dim=block_dim,
        args=(barrier_state, x, r, dot, blocksum, converged, iters, racy),
        seed=seed,
        max_batches=400_000,
    )


def run_conjug_gmb_fixed(device: Device, seed: int) -> None:
    """conjugGMB with the corrected grid barrier (race-free)."""
    run_conjug_gmb(device, seed, racy=False)


# ---------------------------------------------------------------------------
# reduceMB (Figure 3)
# ---------------------------------------------------------------------------


def _reduce_mb_kernel(ctx, data, partial, out, tally, flags, n):
    tid = ctx.tid

    # Real work: strided per-thread accumulation, then a barrier-ordered
    # block combine by the block leader (race-free).  A block-scope atomic
    # tally counts contributing threads — the cheap intra-block idiom.
    total = 0
    for i in range(tid, n, ctx.num_threads):
        v = yield load(data, i)
        total += v
    yield store(partial, tid, total)
    yield atomic_add(tally, ctx.block_id, 1, scope=Scope.BLOCK)
    yield syncthreads()  # Figure 3's cg::sync(block) — should be grid-wide
    if ctx.tid_in_block == 0:
        acc = 0
        for i in range(ctx.block_dim):
            v = yield load(partial, ctx.block_id * ctx.block_dim + i)
            acc += v
        yield store(out, ctx.block_id, acc)
        # Announce completion with no fence — the programmer wrongly
        # assumes the block-level sync already published everything.
        yield from signal(flags, 0)

    # Thread 0 of the grid folds the per-block results — but only *its own
    # block* was synchronized, so other blocks' partials race.
    if tid == 0:
        yield from wait_for(flags, 0, ctx.grid_dim)
        acc = 0
        for blk in range(1, ctx.grid_dim):
            v = yield load(out, blk)  # RACE (CG/DR): block sync, grid needed
            acc += v
        own = yield load(out, 0)
        yield store(out, 0, own + acc)


def run_reduce_mb(device: Device, seed: int) -> None:
    """Host driver: reduce 128 elements over 4 blocks of 16 threads."""
    n = 128
    data = device.alloc("data", n, init=1)
    partial = device.alloc("partial", 64, init=0)
    out = device.alloc("out", 4, init=0)
    tally = device.alloc("tally", 4, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _reduce_mb_kernel,
        grid_dim=4,
        block_dim=16,
        args=(data, partial, out, tally, flags, n),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# warpAA: warp-aggregated atomics (race-free, contention-heavy)
# ---------------------------------------------------------------------------


def _warp_aa_kernel(ctx, values, slots, blocktotal, counter, rounds):
    tid = ctx.tid
    lane = ctx.lane

    for round_ in range(rounds):
        # Each lane deposits its value in the warp's slot row.
        v = yield load(values, tid)
        yield store(slots, ctx.warp_id * ctx.warp_size + lane, v + round_)
        yield syncwarp()
        # The warp leader aggregates and issues ONE atomic on behalf of
        # the warp (warp-aggregated atomics), all warps to one counter.
        if lane == 0:
            agg = 0
            for i in range(ctx.warp_size):
                s = yield load(slots, ctx.warp_id * ctx.warp_size + i)
                agg += s
            yield atomic_add(counter, 0, agg)
            yield atomic_add(blocktotal, ctx.block_id, agg, scope=Scope.BLOCK)
        yield syncwarp()

    yield syncthreads()
    if ctx.tid_in_block == 0:
        v = yield load(blocktotal, ctx.block_id)
        yield store(slots, ctx.warp_id * ctx.warp_size, v)


def run_warp_aa(device: Device, seed: int) -> None:
    """Host driver: 4 blocks x 32 threads, 6 aggregation rounds."""
    grid_dim, block_dim, rounds = 4, 32, 6
    n = grid_dim * block_dim
    values = device.alloc("values", n, init=1)
    slots = device.alloc("slots", n, init=0)
    blocktotal = device.alloc("blocktotal", grid_dim, init=0)
    counter = device.alloc("counter", 1, init=0)
    device.launch(
        _warp_aa_kernel,
        grid_dim=grid_dim,
        block_dim=block_dim,
        args=(values, slots, blocktotal, counter, rounds),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="conjugGMB",
        suite="CG",
        run=run_conjug_gmb,
        expected_races=1,
        expected_types=frozenset({"DR"}),
        cg_race=True,
        contention_heavy=True,
        description="multi-block conjugate gradient with racy grid sync",
    ),
    Workload(
        name="reduceMB",
        suite="CG",
        run=run_reduce_mb,
        expected_races=1,
        expected_types=frozenset({"DR"}),
        cg_race=True,
        description="multi-block reduction synced at block granularity (Fig. 3)",
    ),
    Workload(
        name="warpAA",
        suite="CG",
        run=run_warp_aa,
        expected_races=0,
        contention_heavy=True,
        description="warp-aggregated atomics onto one counter (race-free)",
    ),
]
