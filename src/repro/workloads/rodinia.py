"""Rodinia: the heterogeneous-computing benchmark suite (IISWC'09).

Eight race-free Rodinia applications (Table 5) reproduced with their real
algorithmic skeletons.  These exercise the detector's preliminary checks
on production-style kernels: barrier-ordered stencils (hotspot, srad,
dwt2d), wavefront dynamic programming (needle, pathfinder), device-atomic
accumulation across kernels (kmeans, nn), and bucketed sorting
(hybridsort).  iGUARD must report **zero** races for all of them.
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_add,
    atomic_min,
    compute,
    load,
    store,
    syncthreads,
)
from repro.workloads.base import Workload

_GRID, _BLOCK = 2, 16
_N = _GRID * _BLOCK


# ---------------------------------------------------------------------------
# hotspot: thermal stencil, double-buffered, block-local tiles.
# ---------------------------------------------------------------------------


def _hotspot_kernel(ctx, temp, power, out, steps):
    base = ctx.block_id * ctx.block_dim
    me = ctx.tid_in_block
    width = ctx.block_dim
    src, dst = temp, out
    for _ in range(steps):
        left = yield load(src, base + (me - 1) % width)
        mid = yield load(src, base + me)
        right = yield load(src, base + (me + 1) % width)
        p = yield load(power, base + me)
        yield compute(8)
        yield store(dst, base + me, (left + 2 * mid + right) // 4 + p)
        yield syncthreads()
        src, dst = dst, src


def run_hotspot(device: Device, seed: int) -> None:
    temp = device.alloc("temp", _N, init=50)
    power = device.alloc("power", _N, init=1)
    out = device.alloc("out", _N, init=0)
    device.launch(_hotspot_kernel, _GRID, _BLOCK, args=(temp, power, out, 4), seed=seed)


# ---------------------------------------------------------------------------
# pathfinder: row-by-row dynamic programming over a cost grid.
# ---------------------------------------------------------------------------


def _pathfinder_kernel(ctx, wall, result, rows):
    base = ctx.block_id * ctx.block_dim
    me = ctx.tid_in_block
    width = ctx.block_dim
    cost = yield load(wall, base + me)
    yield store(result, base + me, cost)
    yield syncthreads()
    for row in range(1, rows):
        left = yield load(result, base + max(me - 1, 0))
        mid = yield load(result, base + me)
        right = yield load(result, base + min(me + 1, width - 1))
        w = yield load(wall, row * ctx.num_threads + base + me)
        yield compute(4)
        best = min(left, mid, right)
        yield syncthreads()  # everyone finished reading the previous row
        yield store(result, base + me, best + w)
        yield syncthreads()  # row fully written before the next iteration


def run_pathfinder(device: Device, seed: int) -> None:
    rows = 4
    wall = device.alloc("wall", rows * _N, init=0)
    wall.load_list([(i * 5 + 1) % 9 for i in range(rows * _N)])
    result = device.alloc("result", _N, init=0)
    device.launch(_pathfinder_kernel, _GRID, _BLOCK, args=(wall, result, rows), seed=seed)


# ---------------------------------------------------------------------------
# needle: Needleman-Wunsch wavefront alignment over a block-local tile.
# ---------------------------------------------------------------------------


def _needle_kernel(ctx, scores, similarity, width, penalty):
    # Each block fills a width x width score tile; anti-diagonal d can be
    # computed in parallel once diagonal d-1 is complete (barrier).
    tile = ctx.block_id * width * width
    me = ctx.tid_in_block
    for diag in range(2, 2 * width - 1):
        i = me + 1
        j = diag - i
        if 1 <= i < width and 1 <= j < width:
            nw = yield load(scores, tile + (i - 1) * width + (j - 1))
            up = yield load(scores, tile + (i - 1) * width + j)
            left = yield load(scores, tile + i * width + (j - 1))
            s = yield load(similarity, tile + i * width + j)
            yield compute(5)
            best = max(nw + s, up - penalty, left - penalty)
            yield store(scores, tile + i * width + j, best)
        yield syncthreads()


def run_needle(device: Device, seed: int) -> None:
    width = 8
    scores = device.alloc("scores", _GRID * width * width, init=0)
    similarity = device.alloc("similarity", _GRID * width * width, init=0)
    similarity.load_list([(i * 3) % 5 - 2 for i in range(_GRID * width * width)])
    device.launch(_needle_kernel, _GRID, _BLOCK, args=(scores, similarity, width, 1), seed=seed)


# ---------------------------------------------------------------------------
# kmeans: assignment kernel + atomic accumulation + update kernel.
# ---------------------------------------------------------------------------


def _kmeans_assign_kernel(ctx, points, centroids, assign, sums, counts, k):
    tid = ctx.tid
    p = yield load(points, tid)
    best, best_d = 0, None
    for c in range(k):
        cv = yield load(centroids, c)
        d = (p - cv) * (p - cv)
        yield compute(3)
        if best_d is None or d < best_d:
            best, best_d = c, d
    yield store(assign, tid, best)
    yield atomic_add(sums, best, p)
    yield atomic_add(counts, best, 1)


def _kmeans_update_kernel(ctx, centroids, sums, counts, k):
    if ctx.tid < k:
        s = yield load(sums, ctx.tid)
        c = yield load(counts, ctx.tid)
        if c > 0:
            yield store(centroids, ctx.tid, s // c)


def run_kmeans(device: Device, seed: int) -> None:
    k = 4
    points = device.alloc("points", _N, init=0)
    points.load_list([(i * 13 + 5) % 40 for i in range(_N)])
    centroids = device.alloc("centroids", k, init=0)
    centroids.load_list([5, 15, 25, 35])
    assign = device.alloc("assign", _N, init=0)
    sums = device.alloc("sums", k, init=0)
    counts = device.alloc("counts", k, init=0)
    device.launch(
        _kmeans_assign_kernel, _GRID, _BLOCK,
        args=(points, centroids, assign, sums, counts, k), seed=seed,
    )
    device.launch(
        _kmeans_update_kernel, 1, _BLOCK,
        args=(centroids, sums, counts, k), seed=seed + 1,
    )


# ---------------------------------------------------------------------------
# srad: speckle-reducing anisotropic diffusion (stencil, two kernels).
# ---------------------------------------------------------------------------


def _srad_coeff_kernel(ctx, img, coeff):
    base = ctx.block_id * ctx.block_dim
    me = ctx.tid_in_block
    width = ctx.block_dim
    mid = yield load(img, base + me)
    right = yield load(img, base + (me + 1) % width)
    yield compute(10)
    grad = right - mid
    yield store(coeff, base + me, grad * grad)


def _srad_update_kernel(ctx, img, coeff, lam_num, lam_den):
    base = ctx.block_id * ctx.block_dim
    me = ctx.tid_in_block
    width = ctx.block_dim
    c = yield load(coeff, base + me)
    cl = yield load(coeff, base + (me - 1) % width)
    v = yield load(img, base + me)
    yield compute(10)
    yield store(img, base + me, v + (lam_num * (c - cl)) // lam_den)


def run_srad(device: Device, seed: int) -> None:
    img = device.alloc("img", _N, init=0)
    img.load_list([(i * 7) % 30 for i in range(_N)])
    coeff = device.alloc("coeff", _N, init=0)
    device.launch(_srad_coeff_kernel, _GRID, _BLOCK, args=(img, coeff), seed=seed)
    device.launch(_srad_update_kernel, _GRID, _BLOCK, args=(img, coeff, 1, 4), seed=seed + 1)


# ---------------------------------------------------------------------------
# dwt2d: one level of a discrete wavelet transform (rows then columns).
# ---------------------------------------------------------------------------


def _dwt2d_kernel(ctx, img, tmp, out, side):
    # Each block transforms one side x side tile: a row pass into tmp, a
    # barrier, then a column pass into out.
    tile = ctx.block_id * side * side
    me = ctx.tid_in_block
    if me < side:
        for j in range(0, side, 2):
            a = yield load(img, tile + me * side + j)
            b = yield load(img, tile + me * side + j + 1)
            yield store(tmp, tile + me * side + j // 2, (a + b) // 2)
            yield store(tmp, tile + me * side + side // 2 + j // 2, a - b)
    yield syncthreads()
    if me < side:
        for i in range(0, side, 2):
            a = yield load(tmp, tile + i * side + me)
            b = yield load(tmp, tile + (i + 1) * side + me)
            yield store(out, tile + (i // 2) * side + me, (a + b) // 2)
            yield store(out, tile + (side // 2 + i // 2) * side + me, a - b)
    yield compute(8)


def run_dwt2d(device: Device, seed: int) -> None:
    side = 8
    words = _GRID * side * side
    img = device.alloc("img", words, init=0)
    img.load_list([(i * 11 + 2) % 50 for i in range(words)])
    tmp = device.alloc("tmp", words, init=0)
    out = device.alloc("out", words, init=0)
    device.launch(_dwt2d_kernel, _GRID, _BLOCK, args=(img, tmp, out, side), seed=seed)


# ---------------------------------------------------------------------------
# nn: nearest neighbour via a device-wide atomic min.
# ---------------------------------------------------------------------------


def _nn_kernel(ctx, records, dists, best, qx):
    tid = ctx.tid
    r = yield load(records, tid)
    d = (r - qx) * (r - qx)
    yield compute(6)
    yield store(dists, tid, d)
    yield atomic_min(best, 0, d)


def run_nn(device: Device, seed: int) -> None:
    records = device.alloc("records", _N, init=0)
    values = [(i * 29 + 7) % 100 for i in range(_N)]
    records.load_list(values)
    dists = device.alloc("dists", _N, init=0)
    best = device.alloc("best", 1, init=1 << 30)
    device.launch(_nn_kernel, _GRID, _BLOCK, args=(records, dists, best, 42), seed=seed)
    assert best.read(0) == min((v - 42) ** 2 for v in values), "nn missed the min"


# ---------------------------------------------------------------------------
# hybridsort: bucket histogram + per-block bucket sort.
# ---------------------------------------------------------------------------


def _hybridsort_count_kernel(ctx, data, bucket_of, histogram, bucket_width):
    tid = ctx.tid
    v = yield load(data, tid)
    b = min(v // bucket_width, 3)
    yield store(bucket_of, tid, b)
    yield atomic_add(histogram, b, 1)


def _hybridsort_sort_kernel(ctx, data, bucket_of, out, cursors):
    # Scatter into per-bucket regions through atomic cursors, then each
    # block leader insertion-sorts one bucket region.
    tid = ctx.tid
    v = yield load(data, tid)
    b = yield load(bucket_of, tid)
    slot = yield atomic_add(cursors, b, 1)
    yield store(out, b * ctx.num_threads + slot, v)
    yield syncthreads()


def run_hybridsort(device: Device, seed: int) -> None:
    data = device.alloc("data", _N, init=0)
    values = [(i * 23 + 9) % 64 for i in range(_N)]
    data.load_list(values)
    bucket_of = device.alloc("bucket_of", _N, init=0)
    histogram = device.alloc("histogram", 4, init=0)
    out = device.alloc("out", 4 * _N, init=-1)
    cursors = device.alloc("cursors", 4, init=0)
    device.launch(
        _hybridsort_count_kernel, _GRID, _BLOCK,
        args=(data, bucket_of, histogram, 16), seed=seed,
    )
    device.launch(
        _hybridsort_sort_kernel, _GRID, _BLOCK,
        args=(data, bucket_of, out, cursors), seed=seed + 1,
    )
    assert sum(histogram.to_list()) == _N, "hybridsort lost elements"


WORKLOADS = [
    Workload(name="hotspot", suite="Rodinia", run=run_hotspot,
             description="thermal stencil, double buffered (race-free)"),
    Workload(name="pathfinder", suite="Rodinia", run=run_pathfinder,
             description="row-wise DP with barriers (race-free)"),
    Workload(name="needle", suite="Rodinia", run=run_needle,
             description="Needleman-Wunsch wavefront (race-free)"),
    Workload(name="kmeans", suite="Rodinia", run=run_kmeans,
             description="k-means assign + atomic accumulate (race-free)"),
    Workload(name="srad", suite="Rodinia", run=run_srad,
             description="speckle-reducing diffusion, two kernels (race-free)"),
    Workload(name="dwt2d", suite="Rodinia", run=run_dwt2d,
             description="2-D wavelet transform, rows then columns (race-free)"),
    Workload(name="nn", suite="Rodinia", run=run_nn,
             description="nearest neighbour via atomic min (race-free)"),
    Workload(name="hybridsort", suite="Rodinia", run=run_hybridsort,
             description="bucketed sort: histogram + scatter (race-free)"),
]
