"""Run workloads under detectors, with the paper's failure modes intact.

``run_workload`` executes a workload's host driver on a fresh simulated
device, optionally with a detector attached, and returns a
:class:`~repro.workloads.base.WorkloadResult`:

- races are collected as unique sites, unioned over the workload's pinned
  scheduler seeds (schedule exploration, like rerunning the real tool);
- Barracuda's limitations surface as result statuses: ``unsupported``
  (scoped atomics, or a multi-file library whose PTX cannot be embedded),
  ``timeout`` (CPU-side processing exceeding its budget — the paper's
  "did not terminate"), and ``oom`` (the 50% buffer reservation);
- overheads come from the run's timing breakdown (averaged over seeds).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import (
    DeadlockError,
    OutOfMemoryError,
    TimeoutError_,
    UnsupportedFeatureError,
)
from repro.gpu.arch import GPUConfig
from repro.gpu.device import Device
from repro.instrument.nvbit import Tool
from repro.workloads.base import SIM_GPU, Workload, WorkloadResult

ToolFactory = Optional[Callable[[], Tool]]


def run_workload(
    workload: Workload,
    tool_factory: ToolFactory = None,
    config: GPUConfig = SIM_GPU,
    seeds=None,
) -> WorkloadResult:
    """Execute ``workload`` under a detector built by ``tool_factory``.

    ``tool_factory`` of None runs natively (no detection).  Each seed gets
    a fresh device and a fresh tool; race sites are unioned across seeds
    and timing is averaged.
    """
    seeds = tuple(seeds) if seeds is not None else workload.seeds
    detector_name = "native"
    if tool_factory is not None:
        detector_name = tool_factory().name

    # Barracuda executes PTX embedded in the binary; real-world multi-file
    # libraries defeat that, so it cannot run them at all (section 7.1).
    if workload.complex_binary and detector_name in ("Barracuda", "CURD"):
        return WorkloadResult(
            workload=workload.name,
            detector=detector_name,
            status="unsupported",
            detail="cannot embed a single PTX file for a multi-file library",
        )

    sites = {}
    overheads = []
    native_times = []
    total_times = []
    breakdown = {}
    detail = ""
    status = "ok"

    for seed in seeds:
        device = Device(config)
        tool = None
        if tool_factory is not None:
            tool = device.add_tool(tool_factory())
        try:
            workload.run(device, seed)
        except UnsupportedFeatureError as exc:
            return WorkloadResult(
                workload=workload.name,
                detector=detector_name,
                status="unsupported",
                detail=str(exc),
            )
        except OutOfMemoryError as exc:
            return WorkloadResult(
                workload=workload.name,
                detector=detector_name,
                status="oom",
                detail=str(exc),
            )
        except TimeoutError_ as exc:
            status = "timeout"
            detail = str(exc)
        except DeadlockError as exc:
            # A racy kernel deadlocking is a legitimate observation; the
            # detector's races up to that point stand.
            detail = f"deadlock: {exc}"

        races = getattr(tool, "races", None)
        if races is not None:
            for ip, race_type in races.sites():
                sites[ip] = str(race_type)
        if device.runs:
            native = sum(r.native_time for r in device.runs)
            total = sum(r.total_time for r in device.runs)
            overheads.append(total / native if native > 0 else 1.0)
            native_times.append(native)
            total_times.append(total)
            breakdown = _sum_breakdowns(device)
        if status == "timeout":
            break

    return WorkloadResult(
        workload=workload.name,
        detector=detector_name,
        status=status,
        races=len(sites),
        race_types=frozenset(sites.values()),
        race_sites=tuple(sorted(sites.items())),
        overhead=sum(overheads) / len(overheads) if overheads else 1.0,
        native_time=sum(native_times) / len(native_times) if native_times else 0.0,
        total_time=sum(total_times) / len(total_times) if total_times else 0.0,
        breakdown=breakdown,
        detail=detail,
    )


def _sum_breakdowns(device: Device) -> dict:
    """Aggregate per-category times over all kernel launches of a run."""
    totals: dict = {}
    for run in device.runs:
        for category, time in run.timing.snapshot().items():
            totals[category] = totals.get(category, 0.0) + time
    return totals


def measured_overhead(
    workload: Workload,
    tool_factory: ToolFactory,
    config: GPUConfig = SIM_GPU,
    seeds=None,
) -> float:
    """Convenience: the detector's slowdown factor for one workload."""
    result = run_workload(workload, tool_factory, config=config, seeds=seeds)
    return result.overhead
