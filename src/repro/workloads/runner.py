"""Run workloads under detectors, with the paper's failure modes intact.

``run_workload`` executes a workload's host driver on a fresh simulated
device, optionally with a detector attached, and returns a
:class:`~repro.workloads.base.WorkloadResult`:

- races are collected as unique sites, unioned over the workload's pinned
  scheduler seeds (schedule exploration, like rerunning the real tool);
- Barracuda's limitations surface as result statuses: ``unsupported``
  (scoped atomics, or a multi-file library whose PTX cannot be embedded),
  ``timeout`` (CPU-side processing exceeding its budget — the paper's
  "did not terminate"), and ``oom`` (the 50% buffer reservation);
- overheads come from the run's timing breakdown (averaged over seeds).

Execution and merging are separate stages: each (workload, detector,
seed) cell runs independently (:func:`_run_one_seed` → a picklable
:class:`SeedOutcome`) and :func:`_merge_outcomes` folds the outcomes into
one result with the exact semantics the old serial loop had.  That split
is what lets ``workers > 1`` fan cells out over processes
(:func:`repro.engine.parallel.parallel_map`) and still merge
deterministically — same seeds, same sites, same timing, any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.engine import checkpoint as ckpt
from repro.engine.parallel import parallel_map
from repro.errors import (
    DeadlockError,
    OutOfMemoryError,
    RetryExhaustedError,
    TimeoutError_,
    UnsupportedFeatureError,
    WorkerCrashError,
)
from repro.gpu.arch import GPUConfig
from repro.gpu.device import Device
from repro.instrument.nvbit import Tool
from repro.obs.metrics import HOT
from repro.obs.spans import TRACER, now_us
from repro.workloads.base import SIM_GPU, Workload, WorkloadResult

ToolFactory = Optional[Callable[[], Tool]]


def detector_name(tool_factory: ToolFactory) -> str:
    """The detector name a factory will produce, without instantiating it.

    Detector factories are normally the Tool subclasses themselves
    (``IGuard``, ``Barracuda``), whose ``name`` is a class attribute;
    building a throwaway instance just to read it would allocate detector
    state for nothing.  Opaque callables fall back to one instantiation.
    """
    if tool_factory is None:
        return "native"
    name = getattr(tool_factory, "name", None)
    if isinstance(name, str):
        return name
    return tool_factory().name


class DetectorFactory:
    """A picklable tool factory binding a detector class to a shard count.

    Seed cells ship their factory to worker processes, so a bare lambda
    closing over ``shards`` would break ``workers > 1``.  This wrapper
    stays picklable (class + int) and exposes the detector's ``name``
    attribute so :func:`detector_name` resolves it without instantiating.
    """

    def __init__(self, cls, shards: Optional[int] = None, config=None):
        self.cls = cls
        self.shards = shards
        #: Optional detector config (e.g. an ``IGuardConfig`` with
        #: ``static_prune=True``); frozen dataclasses pickle fine.
        self.config = config
        self.name = cls.name

    def __call__(self, shards: Optional[int] = None) -> Tool:
        shards = shards if shards is not None else self.shards
        kwargs = {}
        if shards is not None:
            kwargs["shards"] = shards
        if self.config is not None:
            kwargs["config"] = self.config
        return self.cls(**kwargs)


@dataclass
class SeedOutcome:
    """What one (workload, detector, seed) cell produced.

    A plain picklable record, so cells can execute in worker processes
    and be merged by the parent.  ``overhead`` is None when the device
    completed no kernel runs (the seed failed before any launch
    finished).
    """

    status: str = "ok"
    detail: str = ""
    sites: Dict[str, str] = field(default_factory=dict)
    overhead: Optional[float] = None
    native_time: float = 0.0
    total_time: float = 0.0
    breakdown: dict = field(default_factory=dict)


@dataclass(frozen=True)
class _SeedTask:
    """One executable cell of a suite: picklable worker-process input."""

    workload: Workload
    tool_factory: ToolFactory
    config: GPUConfig
    seed: int

    def __str__(self) -> str:
        """Readable cell label for stall warnings and trace span names."""
        return (
            f"{self.workload.name}:{detector_name(self.tool_factory)}"
            f":s{self.seed}"
        )


def _run_seed_task(task: _SeedTask) -> SeedOutcome:
    """Module-level trampoline so Pool.map can pickle the callable."""
    return _run_one_seed(task.workload, task.tool_factory, task.config, task.seed)


def _run_one_seed(
    workload: Workload,
    tool_factory: ToolFactory,
    config: GPUConfig,
    seed: int,
) -> SeedOutcome:
    """Execute one seed on a fresh device and collect its outcome."""
    if HOT.enabled:
        HOT.runner_cells.inc()
    span_start = now_us() if TRACER.enabled else 0.0
    device = Device(config)
    tool = None
    if tool_factory is not None:
        tool = device.add_tool(tool_factory())
    status, detail = "ok", ""
    try:
        workload.run(device, seed)
    except UnsupportedFeatureError as exc:
        return SeedOutcome(status="unsupported", detail=str(exc))
    except OutOfMemoryError as exc:
        return SeedOutcome(status="oom", detail=str(exc))
    except TimeoutError_ as exc:
        status, detail = "timeout", str(exc)
    except DeadlockError as exc:
        # A racy kernel deadlocking is a legitimate observation; the
        # detector's races up to that point stand.
        detail = f"deadlock: {exc}"
    if TRACER.enabled:
        TRACER.add_complete(
            f"seed:{workload.name}:{detector_name(tool_factory)}:s{seed}",
            span_start,
            now_us() - span_start,
            cat="seed",
            tid=TRACER.tid_for("seeds"),
            args={"status": status},
        )
    return _collect_outcome(device, tool, status, detail)


def _collect_outcome(device, tool, status: str, detail: str) -> SeedOutcome:
    """Harvest races and timing from a finished (or timed-out) seed."""
    outcome = SeedOutcome(status=status, detail=detail)
    races = getattr(tool, "races", None)
    if races is not None:
        for ip, race_type in races.sites():
            outcome.sites[ip] = str(race_type)
    if device.runs:
        native = sum(r.native_time for r in device.runs)
        total = sum(r.total_time for r in device.runs)
        outcome.overhead = total / native if native > 0 else 1.0
        outcome.native_time = native
        outcome.total_time = total
        outcome.breakdown = _sum_breakdowns(device)
    return outcome


def _merge_outcomes(
    workload_name: str,
    detector: str,
    outcomes: Iterable[SeedOutcome],
) -> WorkloadResult:
    """Fold per-seed outcomes into one result, in seed order.

    Semantics match the historical serial loop exactly: ``unsupported``
    and ``oom`` abort immediately and discard earlier seeds; ``timeout``
    keeps that seed's races/timing and stops consuming further seeds
    (with a lazy iterable, later seeds are never even executed); a
    deadlock only annotates ``detail``.  ``failed`` outcomes (cells lost
    to worker crashes / exhausted retries) are collected into
    ``failed_cells`` and the merged status degrades to ``partial``.
    """
    sites: Dict[str, str] = {}
    overheads: List[float] = []
    native_times: List[float] = []
    total_times: List[float] = []
    breakdown: dict = {}
    failed: List[str] = []
    status, detail = "ok", ""

    for outcome in outcomes:
        if outcome.status in ("unsupported", "oom"):
            return WorkloadResult(
                workload=workload_name,
                detector=detector,
                status=outcome.status,
                detail=outcome.detail,
            )
        if outcome.status == "failed":
            # A crashed/retry-exhausted cell: keep merging the seeds that
            # did complete and surface the loss as a partial result.
            failed.append(outcome.detail)
            continue
        if outcome.detail:
            detail = outcome.detail
        if outcome.status == "timeout":
            status = "timeout"
        sites.update(outcome.sites)
        if outcome.overhead is not None:
            overheads.append(outcome.overhead)
            native_times.append(outcome.native_time)
            total_times.append(outcome.total_time)
            breakdown = outcome.breakdown
        if status == "timeout":
            break

    if failed and status == "ok":
        status = "partial"
    return WorkloadResult(
        workload=workload_name,
        detector=detector,
        status=status,
        races=len(sites),
        race_types=frozenset(sites.values()),
        race_sites=tuple(sorted(sites.items())),
        overhead=sum(overheads) / len(overheads) if overheads else 1.0,
        native_time=sum(native_times) / len(native_times) if native_times else 0.0,
        total_time=sum(total_times) / len(total_times) if total_times else 0.0,
        breakdown=breakdown,
        detail=detail,
        failed_cells=tuple(failed),
    )


def _unsupported_binary(workload: Workload, detector: str) -> WorkloadResult:
    return WorkloadResult(
        workload=workload.name,
        detector=detector,
        status="unsupported",
        detail="cannot embed a single PTX file for a multi-file library",
    )


def _run_tasks(
    tasks: List[_SeedTask],
    workers: int,
    journal: Optional[ckpt.CellJournal],
    cell_timeout: Optional[float],
) -> List[SeedOutcome]:
    """Execute seed cells in parallel, serving/recording the journal.

    Journaled cells never reach a worker; missing cells are fanned out
    and recorded durably as each completes, so an interrupted run resumes
    from exactly the cells it finished.
    """
    keys = [
        ckpt.cell_key(
            t.workload.name, detector_name(t.tool_factory), t.seed, t.config
        )
        for t in tasks
    ]
    outcomes: List[Optional[SeedOutcome]] = [None] * len(tasks)
    submit: List[int] = []
    for index, key in enumerate(keys):
        if journal is not None and key in journal:
            outcomes[index] = ckpt.decode_outcome(journal.get(key))
        else:
            submit.append(index)

    def _journal_result(position: int, outcome: SeedOutcome) -> None:
        if journal is not None:
            journal.record(keys[submit[position]], ckpt.encode_outcome(outcome))

    try:
        fresh = parallel_map(
            _run_seed_task,
            [tasks[i] for i in submit],
            workers,
            hard_timeout=cell_timeout,
            on_result=_journal_result,
        )
    except (RetryExhaustedError, WorkerCrashError) as exc:
        # Degrade, don't die: cells that completed before the failure
        # stand (already journaled), the missing ones become "failed"
        # outcomes the merge surfaces as a partial result with a
        # failed_cells block.
        partial = getattr(exc, "partial_results", {})
        fresh = [partial.get(position) for position in range(len(submit))]
        for position, outcome in enumerate(fresh):
            if outcome is None:
                fresh[position] = SeedOutcome(
                    status="failed",
                    detail=f"{tasks[submit[position]]}: {exc}",
                )
    for position, outcome in zip(submit, fresh):
        outcomes[position] = outcome
    return outcomes


def _lazy_outcomes(
    workload: Workload,
    tool_factory: ToolFactory,
    config: GPUConfig,
    seeds,
    journal: Optional[ckpt.CellJournal],
) -> Iterable[SeedOutcome]:
    """Serial seed outcomes, lazily, served from/recorded to the journal.

    Lazy matters: a timeout at seed k stops later seeds from ever
    running, exactly as the historical loop's ``break`` did — a resumed
    run therefore re-derives the identical early stop.
    """
    detector = detector_name(tool_factory)
    for seed in seeds:
        key = ckpt.cell_key(workload.name, detector, seed, config)
        if journal is not None and key in journal:
            yield ckpt.decode_outcome(journal.get(key))
            continue
        outcome = _run_one_seed(workload, tool_factory, config, seed)
        if journal is not None:
            journal.record(key, ckpt.encode_outcome(outcome))
        yield outcome


def run_workload(
    workload: Workload,
    tool_factory: ToolFactory = None,
    config: GPUConfig = SIM_GPU,
    seeds=None,
    workers: int = 1,
    cell_timeout: Optional[float] = None,
    journal: Optional[ckpt.CellJournal] = None,
) -> WorkloadResult:
    """Execute ``workload`` under a detector built by ``tool_factory``.

    ``tool_factory`` of None runs natively (no detection).  Each seed gets
    a fresh device and a fresh tool; race sites are unioned across seeds
    and timing is averaged.  With ``workers > 1`` the seeds run in
    parallel processes; the merged result is identical to the serial one.
    ``cell_timeout`` kills and retries stuck seed cells (parallel path);
    ``journal`` (default: the ambient :func:`repro.engine.checkpoint`
    journal) records completed cells for crash-safe ``--resume``.
    """
    seeds = tuple(seeds) if seeds is not None else workload.seeds
    name = detector_name(tool_factory)
    if journal is None:
        journal = ckpt.active_journal()

    # Barracuda executes PTX embedded in the binary; real-world multi-file
    # libraries defeat that, so it cannot run them at all (section 7.1).
    if workload.complex_binary and name in ("Barracuda", "CURD"):
        return _unsupported_binary(workload, name)

    if workers > 1 and len(seeds) > 1:
        tasks = [
            _SeedTask(workload, tool_factory, config, seed) for seed in seeds
        ]
        outcomes: Iterable[SeedOutcome] = _run_tasks(
            tasks, workers, journal, cell_timeout
        )
    else:
        outcomes = _lazy_outcomes(
            workload, tool_factory, config, seeds, journal
        )
    return _merge_outcomes(workload.name, name, outcomes)


def run_suite(
    requests,
    workers: int = 1,
    config: GPUConfig = SIM_GPU,
    cell_timeout: Optional[float] = None,
    journal: Optional[ckpt.CellJournal] = None,
) -> List[WorkloadResult]:
    """Run many (workload, tool_factory, seeds) cells, optionally parallel.

    ``requests`` is a sequence of ``(workload, tool_factory, seeds)``
    tuples (``seeds`` of None means the workload's pinned seeds).  Results
    come back in request order.  With ``workers > 1``, *all* requests'
    seed cells are flattened into one task list and fanned out together,
    so parallelism crosses request boundaries — the useful shape for the
    experiment drivers, whose cells are many small independent runs.

    ``journal`` (default: the ambient :mod:`repro.engine.checkpoint`
    journal armed by ``--checkpoint``) serves completed cells from disk
    and records fresh ones, making interrupted suite runs resumable with
    byte-identical merged results.
    """
    expanded = [
        (
            workload,
            tool_factory,
            tuple(seeds) if seeds is not None else workload.seeds,
        )
        for workload, tool_factory, seeds in requests
    ]
    if journal is None:
        journal = ckpt.active_journal()
    if workers <= 1:
        return [
            run_workload(
                workload, tool_factory, config=config, seeds=seeds,
                cell_timeout=cell_timeout, journal=journal,
            )
            for workload, tool_factory, seeds in expanded
        ]

    tasks: List[_SeedTask] = []
    plan: List[Tuple] = []
    for workload, tool_factory, seeds in expanded:
        name = detector_name(tool_factory)
        if workload.complex_binary and name in ("Barracuda", "CURD"):
            plan.append(("done", _unsupported_binary(workload, name)))
            continue
        start = len(tasks)
        tasks.extend(
            _SeedTask(workload, tool_factory, config, seed) for seed in seeds
        )
        plan.append(("merge", workload.name, name, start, len(seeds)))

    outcomes = _run_tasks(tasks, workers, journal, cell_timeout)

    results: List[WorkloadResult] = []
    for entry in plan:
        if entry[0] == "done":
            results.append(entry[1])
        else:
            _, workload_name, name, start, count = entry
            results.append(
                _merge_outcomes(
                    workload_name, name, outcomes[start : start + count]
                )
            )
    return results


def _sum_breakdowns(device: Device) -> dict:
    """Aggregate per-category times over all kernel launches of a run."""
    totals: dict = {}
    for run in device.runs:
        for category, time in run.timing.snapshot().items():
            totals[category] = totals.get(category, 0.0) + time
    return totals


def measured_overhead(
    workload: Workload,
    tool_factory: ToolFactory,
    config: GPUConfig = SIM_GPU,
    seeds=None,
) -> float:
    """Convenience: the detector's slowdown factor for one workload."""
    result = run_workload(workload, tool_factory, config=config, seeds=seeds)
    return result.overhead


# ---------------------------------------------------------------------------
# CLI: run one suite cell with full observability
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    """``python -m repro.workloads.runner``: one (workload, detector) cell.

    The smallest entry point that exercises the whole pipeline — device,
    scheduler, bus, detector, parallel fan-out — which makes it the CI
    anchor for ``--metrics-out``/``--trace-out`` artifact validation.
    """
    import argparse

    from repro.obs import (
        add_observability_args,
        begin_observability,
        finalize_observability,
    )
    from repro.obs.log import get_logger, output

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.runner",
        description="Run one workload under one detector.",
    )
    parser.add_argument(
        "--workload", required=True, metavar="NAME",
        help="a Table 4/5 workload name (see repro.workloads.REGISTRY)",
    )
    parser.add_argument(
        "--detector", default="iguard",
        choices=["iguard", "barracuda", "scord", "curd", "fasttrack", "native"],
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan seed cells out over N worker processes",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition per-launch check work across N detector shards "
             "(default: IGUARD_SHARDS or 1); reports are byte-identical "
             "to serial for any N",
    )
    parser.add_argument(
        "--static-prune", action="store_true",
        help="consume the static analyzer's pruning hints: accesses at "
             "statically-proven-safe sites skip the Table 2 checks "
             "(iguard only; reports are byte-identical either way)",
    )
    parser.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the merged result (status, sites, timing) as "
             "canonical JSON to PATH — sharded and serial runs produce "
             "byte-identical files",
    )
    parser.add_argument(
        "--seeds", default=None, metavar="S1,S2",
        help="scheduler seeds (default: the workload's pinned seeds)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SEC",
        help="hard per-cell timeout: kill and retry a seed cell running "
             "longer than SEC seconds (default: IGUARD_CELL_TIMEOUT or none)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed cells to PATH for crash-safe --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve cells already journaled in --checkpoint instead of "
             "re-running them (byte-identical merged results)",
    )
    add_observability_args(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    begin_observability(args)
    logger = get_logger("runner")

    from repro.baselines import Barracuda, CURD, FastTrack, ScoRD
    from repro.core.config import DEFAULT_CONFIG
    from repro.core.detector import IGuard
    from repro.core.sharding import default_shards
    from repro.obs.log import log_run_config
    from repro.workloads.registry import get_workload

    detector_cls = {
        "iguard": IGuard,
        "barracuda": Barracuda,
        "scord": ScoRD,
        "curd": CURD,
        "fasttrack": FastTrack,
        "native": None,
    }[args.detector]
    shards = args.shards if args.shards is not None else default_shards()
    detector_config = None
    if args.static_prune:
        if args.detector != "iguard":
            parser.error("--static-prune only applies to --detector iguard")
        from dataclasses import replace

        detector_config = replace(DEFAULT_CONFIG, static_prune=True)
    factory: ToolFactory = (
        DetectorFactory(detector_cls, shards=shards, config=detector_config)
        if detector_cls is not None
        else None
    )
    workload = get_workload(args.workload)
    seeds = (
        tuple(int(s) for s in args.seeds.split(",")) if args.seeds else None
    )
    journal = (
        ckpt.CellJournal(args.checkpoint, resume=args.resume)
        if args.checkpoint
        else None
    )
    log_run_config(
        backend=args.detector,
        shards=shards,
        workers=args.workers,
        fast_path=(
            DEFAULT_CONFIG.fast_path
            if args.detector in ("iguard", "scord")
            else None
        ),
        logger=logger,
    )
    result = run_workload(
        workload, factory, seeds=seeds, workers=args.workers,
        cell_timeout=args.cell_timeout, journal=journal,
    )
    output(
        f"{result.workload} under {result.detector}: "
        f"status={result.status} races={result.races} "
        f"overhead={result.overhead:.2f}x"
    )
    for ip, race_type in result.race_sites:
        output(f"  [{race_type}] {ip}")
    if result.detail:
        logger.info("detail: %s", result.detail)
    for cell in result.failed_cells:
        logger.error("failed cell: %s", cell)
    from repro.faults import quarantine

    quarantine_block = quarantine.report_block()
    if quarantine_block is not None:
        logger.warning(
            "quarantine: %d poison event(s) absorbed",
            quarantine_block["events"],
        )
    if args.report_json:
        import json

        payload = {
            "workload": result.workload,
            "detector": result.detector,
            "status": result.status,
            "races": result.races,
            "race_sites": [[ip, t] for ip, t in result.race_sites],
            "overhead": result.overhead,
            "native_time": result.native_time,
            "total_time": result.total_time,
            "breakdown": dict(sorted(result.breakdown.items())),
            "detail": result.detail,
        }
        if result.failed_cells:
            payload["failed_cells"] = list(result.failed_cells)
        if quarantine_block is not None:
            payload["quarantine"] = quarantine_block
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    finalize_observability(args)
    # Exit 3 is the "partial report emitted" code: some cells were lost
    # to crashes/retry exhaustion but the merged report above is valid
    # for everything that completed.
    return 3 if result.failed_cells else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
