"""The evaluation workloads (Tables 4 and 5).

The paper evaluates on 42 workloads drawn from ten suites; half contain
global-memory races (Table 4, 57 races total) and half are race-free
(Table 5, the false-positive check).  Every workload is re-implemented
here over the kernel DSL with the same algorithmic skeleton and — for the
racy ones — the same number and types of seeded synchronization bugs.

Use :data:`repro.workloads.registry.REGISTRY` to enumerate them and
:func:`repro.workloads.runner.run_workload` to execute one under a
detector.
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.registry import REGISTRY, get_workload, racy_workloads, racefree_workloads
from repro.workloads.runner import run_suite, run_workload

__all__ = [
    "Workload",
    "WorkloadResult",
    "REGISTRY",
    "get_workload",
    "racy_workloads",
    "racefree_workloads",
    "run_workload",
    "run_suite",
]
