"""LonestarGPU: irregular-algorithm suite (Burtscher et al., IISWC'12).

iGUARD found 5 races in LonestarGPU (>6400 LOC), all acknowledged by the
developers (section 7.1).  Two applications are reproduced:

- **mis** — maximal independent set, 2 races (BR + DR): a vertex's
  in/out-set decision is consumed inside the block before a barrier, and
  a removed-neighbour mark crosses blocks without a device fence.
- **cc** — connected components, 3 races (BR + 2 DR): an intra-block
  label handoff without a barrier and two cross-block frontier exports
  without fences.

Barracuda cannot ingest the multi-file framework (``complex_binary``).
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_load,
    atomic_min,
    atomic_or,
    compute,
    load,
    store,
    syncthreads,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import signal, wait_for


# ---------------------------------------------------------------------------
# mis: maximal independent set (Luby-style rounds).
# ---------------------------------------------------------------------------


def _mis_kernel(ctx, prio_in, state, marks, removed, flags, n):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: a Luby round — join the set if this vertex's priority
    # beats both neighbours' (all reads from a read-only snapshot).
    if tid < n:
        mine = yield load(prio_in, tid)
        left = yield load(prio_in, (tid - 1) % n)
        right = yield load(prio_in, (tid + 1) % n)
        yield compute(4)
        yield store(state, tid, 1 if mine > left and mine > right else 0)
    yield syncthreads()

    # Hand-rolled round barrier: every thread of the grid polls the round
    # word — the shared-variable hotspot of Figure 12.
    if tid == 0:
        yield from signal(flags, 2)
    yield from wait_for(flags, 2)

    # BR: warp 0's leader stages the block's in-set bitmap; warp 1's
    # leader consumes it with no further barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(marks, 0, 0b1011)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        v = yield load(marks, 0)  # RACE (BR): missing __syncthreads
        yield store(marks, 1, v)

    # DR: block 1 marks a boundary vertex removed; block 0 re-checks it
    # with no device fence in between.
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield store(removed, 0, 1)
        yield from signal(flags, 1)
    if ctx.block_id == 0 and ctx.tid_in_block == 1:
        yield from wait_for(flags, 1)
        v = yield load(removed, 0)  # RACE (DR): missing device fence
        yield store(removed, 1, v)


def run_mis(device: Device, seed: int) -> None:
    """Host driver: 32-vertex ring, one Luby round, 2 blocks."""
    n = 32
    prio_in = device.alloc("prio_in", n, init=0)
    prio_in.load_list([(i * 17 + 3) % 101 for i in range(n)])
    state = device.alloc("state", n, init=0)
    marks = device.alloc("marks", 2, init=0)
    removed = device.alloc("removed", 2, init=0)
    flags = device.alloc("flags", 3, init=0)
    device.launch(
        _mis_kernel,
        grid_dim=2,
        block_dim=16,
        args=(prio_in, state, marks, removed, flags, n),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# cc: connected components (label propagation).
# ---------------------------------------------------------------------------


def _cc_kernel(ctx, edges_u, edges_v, labels, lowlink, frontier, flags, n_edges):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: one label-propagation round over the edge list, with
    # atomic min-label updates (device scope; atomically polled reads).
    if tid < n_edges:
        u = yield load(edges_u, tid)
        v = yield load(edges_v, tid)
        lu = yield atomic_load(labels, u)
        lv = yield atomic_load(labels, v)
        yield compute(4)
        if lu < lv:
            yield atomic_min(labels, v, lu)
        elif lv < lu:
            yield atomic_min(labels, u, lv)
    yield syncthreads()

    # Hand-rolled round barrier: every thread polls the shared round word
    # (the Figure 12 contention hotspot for label propagation).
    if tid == 0:
        yield from signal(flags, 2)
    yield from wait_for(flags, 2)

    # BR: warp 0 stages the block's lowest label; warp 1 folds it without
    # a barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(lowlink, 0, 2)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        v = yield load(lowlink, 0)  # RACE (BR): missing __syncthreads
        yield store(lowlink, 1, v)

    # DR x2: block 0 exports two changed-vertex entries for the next
    # round; block 1 imports them with no device fence.
    if ctx.block_id == 0 and ctx.tid_in_block == 2:
        yield store(frontier, 0, 40)
        yield store(frontier, 1, 41)
        yield from signal(flags, 1)
    if ctx.block_id == 1 and ctx.tid_in_block == 2:
        yield from wait_for(flags, 1)
        a = yield load(frontier, 0)  # RACE (DR): missing device fence
        b = yield load(frontier, 1)  # RACE (DR): missing device fence
        yield store(frontier, 2, a + b)


def run_cc(device: Device, seed: int) -> None:
    """Host driver: 32 edges over 16 vertices, 2 blocks."""
    n_vertices, n_edges = 16, 32
    edges_u = device.alloc("edges_u", n_edges, init=0)
    edges_v = device.alloc("edges_v", n_edges, init=0)
    edges_u.load_list([i % n_vertices for i in range(n_edges)])
    edges_v.load_list([(i * 3 + 1) % n_vertices for i in range(n_edges)])
    labels = device.alloc("labels", n_vertices, init=0)
    labels.load_list(list(range(n_vertices)))
    lowlink = device.alloc("lowlink", 2, init=0)
    frontier = device.alloc("frontier", 3, init=0)
    flags = device.alloc("flags", 3, init=0)
    device.launch(
        _cc_kernel,
        grid_dim=2,
        block_dim=16,
        args=(edges_u, edges_v, labels, lowlink, frontier, flags, n_edges),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="mis",
        suite="Lonestar",
        run=run_mis,
        expected_races=2,
        expected_types=frozenset({"BR", "DR"}),
        complex_binary=True,
        contention_heavy=True,
        description="maximal independent set, unbarriered set handoffs",
    ),
    Workload(
        name="cc",
        suite="Lonestar",
        run=run_cc,
        expected_races=3,
        expected_types=frozenset({"BR", "DR"}),
        complex_binary=True,
        contention_heavy=True,
        description="connected components, unfenced frontier exports",
    ),
]
