"""The CUB workloads: block- and device-wide primitive tests.

CUB ("CUDA UnBound") is NVIDIA's collective-primitive library; Barracuda's
and CURD's evaluations used its microbenchmarks, and iGUARD reuses them.
Thirteen workloads:

- **cub_gridbar** (racy, Table 4: 1 DR) — CUB's experimental grid barrier
  had the same leader-only-fence defect as the CG library's grid sync;
  iGUARD's report was acknowledged by the developers.
- Twelve race-free tests (Table 5): block-wide ``b_reduce`` / ``b_scan`` /
  ``b_radix_sort`` and device-wide ``d_reduce`` / ``d_scan`` /
  ``d_radix_sort`` / select / partition / unique / sort+find, built on
  :mod:`repro.workloads.cub_primitives`.  Device-wide versions span
  multiple kernel launches, relying on the implicit all-thread barrier at
  kernel completion — exactly how CUB's device layer composes its passes.
"""

from __future__ import annotations

from repro.cg import GridBarrier, this_grid
from repro.gpu.device import Device
from repro.gpu.instructions import atomic_add, compute, load, store, syncthreads
from repro.workloads.base import Workload
from repro.workloads.cub_primitives import (
    block_radix_sort,
    block_reduce,
    block_scan_exclusive,
    block_scan_inclusive,
    scratch_words_per_block,
)

_GRID, _BLOCK = 2, 16
_N = _GRID * _BLOCK


def _alloc_scratch(device: Device):
    return device.alloc(
        "cub_scratch", _GRID * scratch_words_per_block(_BLOCK), init=0
    )


def _input_values(n: int):
    return [(i * 7 + 3) % 17 for i in range(n)]


# ---------------------------------------------------------------------------
# cub_gridbar (racy)
# ---------------------------------------------------------------------------


def _cub_gridbar_kernel(ctx, barrier_state, scratch, data, out, racy=True):
    tid = ctx.tid
    grid = this_grid(ctx, GridBarrier(barrier_state))

    # Real work: block-reduce the tile and write the thread's element.
    v = yield load(data, tid)
    total = yield from block_reduce(ctx, scratch, v)
    yield store(data, tid, v + total)

    # CUB's grid barrier with the leader-only fence (the fixed variant
    # uses the corrected per-thread-fence barrier).
    if racy:
        yield from grid.sync_racy()
    else:
        yield from grid.sync()

    # Read the other block's element: the write above was never fenced.
    partner = (tid + ctx.block_dim) % ctx.num_threads
    pv = yield load(data, partner)  # RACE (DR): CUB grid barrier bug
    yield store(out, tid, pv)


def run_cub_gridbar(device: Device, seed: int, racy: bool = True) -> None:
    """Host driver for the grid-barrier test."""
    barrier_state = device.alloc("grid_barrier", GridBarrier.NUM_WORDS, init=0)
    scratch = _alloc_scratch(device)
    data = device.alloc("data", _N, init=0)
    data.load_list(_input_values(_N))
    out = device.alloc("out", _N, init=0)
    device.launch(
        _cub_gridbar_kernel,
        grid_dim=_GRID,
        block_dim=_BLOCK,
        args=(barrier_state, scratch, data, out, racy),
        seed=seed,
    )


def run_cub_gridbar_fixed(device: Device, seed: int) -> None:
    """cub_gridbar after the acknowledged fix (race-free)."""
    run_cub_gridbar(device, seed, racy=False)


# ---------------------------------------------------------------------------
# Race-free block-wide tests
# ---------------------------------------------------------------------------


def _b_reduce_kernel(ctx, scratch, data, out):
    v = yield load(data, ctx.tid)
    total = yield from block_reduce(ctx, scratch, v)
    if ctx.tid_in_block == 0:
        yield store(out, ctx.block_id, total)


def run_b_reduce(device: Device, seed: int) -> None:
    scratch = _alloc_scratch(device)
    data = device.alloc("data", _N, init=0)
    data.load_list(_input_values(_N))
    out = device.alloc("out", _GRID, init=0)
    device.launch(_b_reduce_kernel, _GRID, _BLOCK, args=(scratch, data, out), seed=seed)
    per_block = [
        sum(_input_values(_N)[b * _BLOCK : (b + 1) * _BLOCK]) for b in range(_GRID)
    ]
    assert out.to_list() == per_block, "b_reduce produced a wrong sum"


def _b_scan_kernel(ctx, scratch, data, out):
    v = yield load(data, ctx.tid)
    prefix = yield from block_scan_inclusive(ctx, scratch, v)
    yield store(out, ctx.tid, prefix)


def run_b_scan(device: Device, seed: int) -> None:
    scratch = _alloc_scratch(device)
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    out = device.alloc("out", _N, init=0)
    device.launch(_b_scan_kernel, _GRID, _BLOCK, args=(scratch, data, out), seed=seed)
    expect = []
    for b in range(_GRID):
        acc = 0
        for v in values[b * _BLOCK : (b + 1) * _BLOCK]:
            acc += v
            expect.append(acc)
    assert out.to_list() == expect, "b_scan produced a wrong prefix sum"


def _b_radix_sort_kernel(ctx, scratch, keys):
    base = ctx.block_id * ctx.block_dim
    yield from block_radix_sort(ctx, scratch, base, keys, key_bits=5)


def run_b_radix_sort(device: Device, seed: int) -> None:
    scratch = _alloc_scratch(device)
    keys = device.alloc("keys", _N, init=0)
    values = _input_values(_N)
    keys.load_list(values)
    device.launch(_b_radix_sort_kernel, _GRID, _BLOCK, args=(scratch, keys), seed=seed)
    got = keys.to_list()
    for b in range(_GRID):
        tile = got[b * _BLOCK : (b + 1) * _BLOCK]
        assert tile == sorted(values[b * _BLOCK : (b + 1) * _BLOCK]), "bad sort"


# ---------------------------------------------------------------------------
# Race-free device-wide tests (multi-kernel compositions)
# ---------------------------------------------------------------------------


def _partials_kernel(ctx, scratch, data, partials):
    v = yield load(data, ctx.tid)
    total = yield from block_reduce(ctx, scratch, v)
    if ctx.tid_in_block == 0:
        yield store(partials, ctx.block_id, total)


def _fold_kernel(ctx, partials, out, count):
    if ctx.tid == 0:
        acc = 0
        for i in range(count):
            v = yield load(partials, i)
            acc += v
        yield store(out, 0, acc)


def run_d_reduce(device: Device, seed: int) -> None:
    """Device-wide reduce: block partials, then a fold kernel."""
    scratch = _alloc_scratch(device)
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    partials = device.alloc("partials", _GRID, init=0)
    out = device.alloc("out", 1, init=0)
    device.launch(_partials_kernel, _GRID, _BLOCK, args=(scratch, data, partials), seed=seed)
    device.launch(_fold_kernel, 1, _BLOCK, args=(partials, out, _GRID), seed=seed + 1)
    assert out.read(0) == sum(values), "d_reduce produced a wrong sum"


def _block_scan_phase_kernel(ctx, scratch, data, out, block_sums):
    v = yield load(data, ctx.tid)
    prefix = yield from block_scan_inclusive(ctx, scratch, v)
    yield store(out, ctx.tid, prefix)
    if ctx.tid_in_block == ctx.block_dim - 1:
        yield store(block_sums, ctx.block_id, prefix)


def _scan_sums_kernel(ctx, block_sums, offsets, count):
    if ctx.tid == 0:
        acc = 0
        for i in range(count):
            yield store(offsets, i, acc)
            v = yield load(block_sums, i)
            acc += v


def _apply_offsets_kernel(ctx, out, offsets):
    off = yield load(offsets, ctx.block_id)
    v = yield load(out, ctx.tid)
    yield store(out, ctx.tid, v + off)


def run_d_scan(device: Device, seed: int) -> None:
    """Device-wide scan: block scans + sums scan + offset application."""
    scratch = _alloc_scratch(device)
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    out = device.alloc("out", _N, init=0)
    block_sums = device.alloc("block_sums", _GRID, init=0)
    offsets = device.alloc("offsets", _GRID, init=0)
    device.launch(
        _block_scan_phase_kernel, _GRID, _BLOCK,
        args=(scratch, data, out, block_sums), seed=seed,
    )
    device.launch(_scan_sums_kernel, 1, _BLOCK, args=(block_sums, offsets, _GRID), seed=seed + 1)
    device.launch(_apply_offsets_kernel, _GRID, _BLOCK, args=(out, offsets), seed=seed + 2)
    expect, acc = [], 0
    for v in values:
        acc += v
        expect.append(acc)
    assert out.to_list() == expect, "d_scan produced a wrong prefix sum"


def _sort_tile_kernel(ctx, scratch, keys):
    base = ctx.block_id * ctx.block_dim
    yield from block_radix_sort(ctx, scratch, base, keys, key_bits=5)


def _merge_tiles_kernel(ctx, keys, merged, n):
    # Single-thread two-tile merge: simple, and read-only on `keys`.
    if ctx.tid == 0:
        i, j = 0, n // 2
        for k in range(n):
            if i < n // 2 and (j >= n or (yield load(keys, i)) <= (yield load(keys, j))):
                v = yield load(keys, i)
                i += 1
            else:
                v = yield load(keys, j)
                j += 1
            yield store(merged, k, v)


def run_d_radix_sort(device: Device, seed: int) -> None:
    """Device-wide sort: per-block radix passes, then a merge kernel."""
    scratch = _alloc_scratch(device)
    keys = device.alloc("keys", _N, init=0)
    values = _input_values(_N)
    keys.load_list(values)
    merged = device.alloc("merged", _N, init=0)
    device.launch(_sort_tile_kernel, _GRID, _BLOCK, args=(scratch, keys), seed=seed)
    device.launch(_merge_tiles_kernel, 1, _BLOCK, args=(keys, merged, _N), seed=seed + 1)
    assert merged.to_list() == sorted(values), "d_radix_sort produced bad order"


def _select_if_kernel(ctx, data, out, cursor, threshold):
    v = yield load(data, ctx.tid)
    yield compute(2)
    if v >= threshold:
        slot = yield atomic_add(cursor, 0, 1)
        yield store(out, slot, v)


def run_d_select_if(device: Device, seed: int) -> None:
    """Device-wide select-if through an atomic output cursor."""
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    out = device.alloc("out", _N, init=-1)
    cursor = device.alloc("cursor", 1, init=0)
    device.launch(_select_if_kernel, _GRID, _BLOCK, args=(data, out, cursor, 9), seed=seed)
    kept = sorted(v for v in values if v >= 9)
    got = sorted(v for v in out.to_list() if v >= 0)
    assert got == kept, "d_sel_if selected the wrong elements"


def _select_flagged_kernel(ctx, data, flags_in, out, cursor):
    v = yield load(data, ctx.tid)
    f = yield load(flags_in, ctx.tid)
    if f:
        slot = yield atomic_add(cursor, 0, 1)
        yield store(out, slot, v)


def run_d_select_flagged(device: Device, seed: int) -> None:
    """Device-wide select by a separate flags array."""
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    flags_in = device.alloc("flags_in", _N, init=0)
    flag_values = [i % 3 == 0 for i in range(_N)]
    flags_in.load_list([int(f) for f in flag_values])
    out = device.alloc("out", _N, init=-1)
    cursor = device.alloc("cursor", 1, init=0)
    device.launch(
        _select_flagged_kernel, _GRID, _BLOCK,
        args=(data, flags_in, out, cursor), seed=seed,
    )
    kept = sorted(v for v, f in zip(values, flag_values) if f)
    got = sorted(v for v in out.to_list() if v >= 0)
    assert got == kept, "d_sel_flag selected the wrong elements"


def _select_unique_kernel(ctx, data, out, cursor, n):
    # Keep run heads: element differs from its predecessor (input is
    # read-only, so neighbouring reads are race-free).
    v = yield load(data, ctx.tid)
    keep = ctx.tid == 0
    if ctx.tid > 0:
        prev = yield load(data, ctx.tid - 1)
        keep = prev != v
    if keep:
        slot = yield atomic_add(cursor, 0, 1)
        yield store(out, slot, v)


def run_d_select_unique(device: Device, seed: int) -> None:
    """Device-wide unique (run-length heads) over a sorted-ish input."""
    data = device.alloc("data", _N, init=0)
    values = sorted(_input_values(_N))
    data.load_list(values)
    out = device.alloc("out", _N, init=-1)
    cursor = device.alloc("cursor", 1, init=0)
    device.launch(_select_unique_kernel, _GRID, _BLOCK, args=(data, out, cursor, _N), seed=seed)
    expect = sorted(set(values))
    got = sorted(v for v in out.to_list() if v >= 0)
    assert got == expect, "d_sel_uniq produced the wrong set"


def _partition_if_kernel(ctx, data, out, accepted, rejected, threshold, n):
    v = yield load(data, ctx.tid)
    if v >= threshold:
        slot = yield atomic_add(accepted, 0, 1)
        yield store(out, slot, v)
    else:
        slot = yield atomic_add(rejected, 0, 1)
        yield store(out, n - 1 - slot, v)


def run_d_partition_if(device: Device, seed: int) -> None:
    """Device-wide partition: accepted to the front, rejected to the back."""
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    out = device.alloc("out", _N, init=-1)
    accepted = device.alloc("accepted", 1, init=0)
    rejected = device.alloc("rejected", 1, init=0)
    device.launch(
        _partition_if_kernel, _GRID, _BLOCK,
        args=(data, out, accepted, rejected, 9, _N), seed=seed,
    )
    n_accept = accepted.read(0)
    got = out.to_list()
    assert sorted(got[:n_accept]) == sorted(v for v in values if v >= 9)
    assert sorted(got[n_accept:]) == sorted(v for v in values if v < 9)


def _partition_flagged_kernel(ctx, data, flags_in, out, accepted, rejected, n):
    v = yield load(data, ctx.tid)
    f = yield load(flags_in, ctx.tid)
    if f:
        slot = yield atomic_add(accepted, 0, 1)
        yield store(out, slot, v)
    else:
        slot = yield atomic_add(rejected, 0, 1)
        yield store(out, n - 1 - slot, v)


def run_d_partition_flagged(device: Device, seed: int) -> None:
    """Device-wide partition by a flags array."""
    data = device.alloc("data", _N, init=0)
    values = _input_values(_N)
    data.load_list(values)
    flags_in = device.alloc("flags_in", _N, init=0)
    flag_values = [i % 2 == 0 for i in range(_N)]
    flags_in.load_list([int(f) for f in flag_values])
    out = device.alloc("out", _N, init=-1)
    accepted = device.alloc("accepted", 1, init=0)
    rejected = device.alloc("rejected", 1, init=0)
    device.launch(
        _partition_flagged_kernel, _GRID, _BLOCK,
        args=(data, flags_in, out, accepted, rejected, _N), seed=seed,
    )
    n_accept = accepted.read(0)
    got = out.to_list()
    assert sorted(got[:n_accept]) == sorted(v for v, f in zip(values, flag_values) if f)


def _find_kernel(ctx, keys, found, needle, n):
    # Binary search per thread over the (read-only) sorted tile.
    if ctx.tid == 0:
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            v = yield load(keys, mid)
            if v < needle:
                lo = mid + 1
            else:
                hi = mid
        yield store(found, 0, lo)


def run_d_sort_find(device: Device, seed: int) -> None:
    """Sort (block passes + merge), then binary-search a needle."""
    scratch = _alloc_scratch(device)
    keys = device.alloc("keys", _N, init=0)
    values = _input_values(_N)
    keys.load_list(values)
    merged = device.alloc("merged", _N, init=0)
    found = device.alloc("found", 1, init=-1)
    device.launch(_sort_tile_kernel, _GRID, _BLOCK, args=(scratch, keys), seed=seed)
    device.launch(_merge_tiles_kernel, 1, _BLOCK, args=(keys, merged, _N), seed=seed + 1)
    device.launch(_find_kernel, 1, _BLOCK, args=(merged, found, 10, _N), seed=seed + 2)
    expect = sorted(values)
    import bisect
    assert found.read(0) == bisect.bisect_left(expect, 10), "d_sort_find missed"


WORKLOADS = [
    Workload(
        name="cub_gridbar",
        suite="CUB",
        run=run_cub_gridbar,
        expected_races=1,
        expected_types=frozenset({"DR"}),
        description="CUB experimental grid barrier missing per-thread fence",
    ),
    Workload(name="b_reduce", suite="CUB", run=run_b_reduce,
             description="block-wide reduction (race-free)"),
    Workload(name="b_scan", suite="CUB", run=run_b_scan,
             description="block-wide inclusive scan (race-free)"),
    Workload(name="b_radix_sort", suite="CUB", run=run_b_radix_sort,
             description="block-wide radix sort (race-free)"),
    Workload(name="d_reduce", suite="CUB", run=run_d_reduce,
             description="device-wide reduction, two kernels (race-free)"),
    Workload(name="d_scan", suite="CUB", run=run_d_scan,
             description="device-wide scan, three kernels (race-free)"),
    Workload(name="d_radix_sort", suite="CUB", run=run_d_radix_sort,
             description="device-wide sort: tile sorts + merge (race-free)"),
    Workload(name="d_sel_if", suite="CUB", run=run_d_select_if,
             description="device-wide select-if via atomic cursor (race-free)"),
    Workload(name="d_sel_flag", suite="CUB", run=run_d_select_flagged,
             description="device-wide select by flags (race-free)"),
    Workload(name="d_sel_uniq", suite="CUB", run=run_d_select_unique,
             description="device-wide unique (race-free)"),
    Workload(name="d_part_if", suite="CUB", run=run_d_partition_if,
             description="device-wide partition-if (race-free)"),
    Workload(name="d_part_flag", suite="CUB", run=run_d_partition_flagged,
             description="device-wide partition by flags (race-free)"),
    Workload(name="d_sort_find", suite="CUB", run=run_d_sort_find,
             description="sort then binary search (race-free)"),
]
