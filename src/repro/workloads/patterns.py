"""Reusable kernel-DSL building blocks shared by the workloads.

Two families:

- **Locks** — the CUDA-guidebook spin lock that iGUARD's lock inference
  recognizes (``atomicCAS`` + fence to acquire, fence + ``atomicExch`` to
  release; section 6.3).

- **Flag signalling** — ``signal``/``wait_for`` impose a *runtime* order
  between two threads through an atomic flag **without fences**.  Because
  iGUARD (and Barracuda) establish happens-before through *fences*, a
  flag-ordered pair of conflicting accesses is still a race — but one that
  manifests in a fixed direction, which is how the racy workloads seed
  exactly the Table 4 number of racy sites deterministically.  The
  *fenced* variants (``signal_fenced``) are proper release signalling and
  are used by the race-free workloads.
"""

from __future__ import annotations

from repro.gpu.instructions import (
    Scope,
    atomic_add,
    atomic_cas,
    atomic_exch,
    atomic_load,
    fence_device,
)


def lock_acquire(locks, index: int, scope: Scope = Scope.DEVICE):
    """Spin-acquire ``locks[index]`` (atomicCAS loop + acquire fence)."""
    while (yield atomic_cas(locks, index, 0, 1, scope=scope)) != 0:
        pass
    yield fence_device()


def lock_release(locks, index: int, scope: Scope = Scope.DEVICE):
    """Release ``locks[index]`` (release fence + atomicExch)."""
    yield fence_device()
    yield atomic_exch(locks, index, 0, scope=scope)


def signal(flags, index: int):
    """Bump a flag *without* a release fence (orders execution only)."""
    yield atomic_add(flags, index, 1)


def signal_fenced(flags, index: int):
    """Proper release signalling: device fence, then bump the flag."""
    yield fence_device()
    yield atomic_add(flags, index, 1)


def wait_for(flags, index: int, target: int = 1):
    """Spin until ``flags[index] >= target`` (atomic polling)."""
    while (yield atomic_load(flags, index)) < target:
        pass


def wait_for_acquire(flags, index: int, target: int = 1):
    """Spin until the flag arrives, then fence (acquire side)."""
    while (yield atomic_load(flags, index)) < target:
        pass
    yield fence_device()
