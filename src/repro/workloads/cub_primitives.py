"""Block-level collective primitives, in the style of NVIDIA CUB.

CUB ships block-wide collectives (``BlockReduce``, ``BlockScan``,
``BlockRadixSort``) built from scratchpad traffic and ``__syncthreads``.
These are the kernels the paper's CUB workloads exercise; the Table 5 ones
must be *race-free under the detector*, which makes this module a good
stress test of the preliminary checks (every cross-thread handoff below is
ordered by a block barrier, i.e. must pass P5).

All primitives are generator subroutines used with ``yield from``; each
returns its result via the generator return value::

    total = yield from block_reduce(ctx, scratch, value)

``scratch`` is a global array with ``scratch_words_per_block(block_dim)``
words available per block (indexed through the block's private base).
"""

from __future__ import annotations

from repro.gpu.instructions import load, store, syncthreads


def scratch_words_per_block(block_dim: int) -> int:
    """Scratch capacity one block needs for any primitive in this module."""
    return 2 * block_dim + 2


def _base(ctx) -> int:
    return ctx.block_id * scratch_words_per_block(ctx.block_dim)


def block_reduce(ctx, scratch, value):
    """Block-wide sum; every thread receives the total.

    Pattern: deposit -> barrier -> leader folds -> barrier -> broadcast.
    """
    base = _base(ctx)
    me = ctx.tid_in_block
    yield store(scratch, base + me, value)
    yield syncthreads()
    if me == 0:
        total = 0
        for i in range(ctx.block_dim):
            v = yield load(scratch, base + i)
            total += v
        yield store(scratch, base + ctx.block_dim, total)
    yield syncthreads()
    total = yield load(scratch, base + ctx.block_dim)
    return total


def block_scan_inclusive(ctx, scratch, value):
    """Block-wide inclusive prefix sum (Hillis-Steele, double-buffered)."""
    base = _base(ctx)
    me = ctx.tid_in_block
    bufs = (base, base + ctx.block_dim)
    cur = 0
    yield store(scratch, bufs[cur] + me, value)
    yield syncthreads()
    offset = 1
    while offset < ctx.block_dim:
        v = yield load(scratch, bufs[cur] + me)
        if me >= offset:
            left = yield load(scratch, bufs[cur] + me - offset)
            v += left
        nxt = 1 - cur
        yield store(scratch, bufs[nxt] + me, v)
        yield syncthreads()
        cur = nxt
        offset *= 2
    result = yield load(scratch, bufs[cur] + me)
    return result


def block_scan_exclusive(ctx, scratch, value):
    """Block-wide exclusive prefix sum."""
    inclusive = yield from block_scan_inclusive(ctx, scratch, value)
    return inclusive - value


def block_radix_sort(ctx, scratch, keys_base, keys, key_bits: int):
    """Stable LSD radix sort of one key per thread, within the block.

    ``keys`` is the global array holding the block's tile starting at
    element ``keys_base + tid_in_block``.  Returns the thread's sorted key.
    """
    base = _base(ctx)
    me = ctx.tid_in_block
    key = yield load(keys, keys_base + me)
    for bit in range(key_bits):
        flag = (key >> bit) & 1
        # Rank the zeros, then the ones after them (stable partition).
        zeros_before = yield from block_scan_exclusive(ctx, scratch, 1 - flag)
        total_zeros = yield from block_reduce(ctx, scratch, 1 - flag)
        ones_before = yield from block_scan_exclusive(ctx, scratch, flag)
        rank = zeros_before if flag == 0 else total_zeros + ones_before
        yield store(keys, keys_base + rank, key)
        yield syncthreads()
        key = yield load(keys, keys_base + me)
        yield syncthreads()
    return key
