"""Kilo-TM: GPU hardware-transactional-memory workloads (MICRO'11).

The Kilo-TM paper's software benchmarks run transactions over shared
structures; iGUARD's evaluation used two of them:

- **interac** — an interacting-entities simulation whose transactions
  retry in tight validation loops.  Seeded races per Table 4: 4 (2 BR +
  2 DR).  The retry loops generate an enormous serialized event stream —
  this is the workload Barracuda "did not terminate" on, which the
  reproduction models through Barracuda's CPU-side event budget.
- **hashtable** — transactional hash-table inserts, 2 DR races (bucket
  counts exported without fences).

Transactions are word-locks: ``atomicCAS`` + fence to own a word, fence +
``atomicExch`` to release — the exact pair iGUARD infers as lock/unlock.
Both sides of every transactional access hold the same word lock, so the
transactional data itself is race-free; the seeded races live on the
unlocked summary words.
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_add,
    atomic_load,
    compute,
    load,
    store,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    lock_acquire,
    lock_release,
    signal,
    wait_for,
)


# ---------------------------------------------------------------------------
# interac
# ---------------------------------------------------------------------------


def _interac_kernel(ctx, entities, word_locks, energy, impulse, exports, flags, n, rounds):
    tid = ctx.tid
    lane = ctx.lane

    # BR x2: warp 0's leader publishes the block's energy and impulse
    # summaries; warp 1's leader reads both without a barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(energy, 0, 500)
        yield store(impulse, 0, 7)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        e = yield load(energy, 0)  # RACE (BR): missing __syncthreads
        i = yield load(impulse, 0)  # RACE (BR): missing __syncthreads
        yield store(exports, 2, e + i)

    # DR x2: block 1 exports two collision records; block 0 consumes them
    # with no device fence.
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield store(exports, 0, 60)
        yield store(exports, 1, 61)
        yield from signal(flags, 1)
    if ctx.block_id == 0 and ctx.tid_in_block == 1:
        yield from wait_for(flags, 1)
        a = yield load(exports, 0)  # RACE (DR): missing device fence
        b = yield load(exports, 1)  # RACE (DR): missing device fence
        yield store(exports, 3, a + b)

    # Real work: each round, a thread transactionally moves energy between
    # its entity and a partner.  The transaction takes the two word locks
    # in index order (no deadlock) and retries contention via the CAS spin
    # inside lock_acquire — the event-stream firehose that exhausts
    # Barracuda's CPU-side processing budget ("did not terminate").
    for r in range(rounds):
        a = tid % n
        b = (tid + r + 1) % n
        lo, hi = (a, b) if a < b else (b, a)
        yield from lock_acquire(word_locks, lo)
        yield from lock_acquire(word_locks, hi)
        ea = yield load(entities, a)
        eb = yield load(entities, b)
        yield compute(6)
        yield store(entities, a, ea - 1)
        yield store(entities, b, eb + 1)
        yield from lock_release(word_locks, hi)
        yield from lock_release(word_locks, lo)


def run_interac(device: Device, seed: int) -> None:
    """Host driver: 24 entities, 4 transaction rounds, 2 blocks."""
    n = 24
    entities = device.alloc("entities", n, init=100)
    word_locks = device.alloc("word_locks", n, init=0)
    energy = device.alloc("energy", 1, init=0)
    impulse = device.alloc("impulse", 1, init=0)
    exports = device.alloc("exports", 4, init=0)
    flags = device.alloc("flags", 2, init=0)
    device.launch(
        _interac_kernel,
        grid_dim=2,
        block_dim=16,
        args=(entities, word_locks, energy, impulse, exports, flags, n, 4),
        seed=seed,
        max_batches=600_000,
    )


# ---------------------------------------------------------------------------
# hashtable
# ---------------------------------------------------------------------------


def _hashtable_kernel(ctx, keys, table, bucket_count, stats, flags, n_buckets):
    tid = ctx.tid

    # Real work: transactional-style insert via device atomics — claim a
    # cell by probing with atomic adds on the per-bucket cursor.
    key = yield load(keys, tid)
    bucket = key % n_buckets
    slot = yield atomic_add(bucket_count, bucket, 1)
    yield compute(5)
    if slot < 4:
        yield store(table, bucket * 4 + slot, key)

    # DR x2: block 0's leader exports occupancy statistics without a
    # fence; block 1's leader folds them.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield store(stats, 0, 12)
        yield store(stats, 1, 34)
        yield from signal(flags, 0)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        a = yield load(stats, 0)  # RACE (DR): missing device fence
        b = yield load(stats, 1)  # RACE (DR): missing device fence
        yield store(stats, 2, a + b)


def run_hashtable(device: Device, seed: int) -> None:
    """Host driver: 64 inserts into 8 buckets, 2 blocks of 32."""
    n_buckets = 8
    n = 64
    keys = device.alloc("keys", n, init=0)
    keys.load_list([(i * 19 + 11) % 127 for i in range(n)])
    table = device.alloc("table", n_buckets * 4, init=0)
    bucket_count = device.alloc("bucket_count", n_buckets, init=0)
    stats = device.alloc("stats", 3, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _hashtable_kernel,
        grid_dim=2,
        block_dim=32,
        args=(keys, table, bucket_count, stats, flags, n_buckets),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="interac",
        suite="Kilo-TM",
        run=run_interac,
        expected_races=4,
        expected_types=frozenset({"BR", "DR"}),
        description="transactional entity interaction; Barracuda's DNT workload",
    ),
    Workload(
        name="hashtable",
        suite="Kilo-TM",
        run=run_hashtable,
        expected_races=2,
        expected_types=frozenset({"DR"}),
        description="transactional hash-table inserts, unfenced statistics",
    ),
]
