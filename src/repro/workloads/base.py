"""Workload descriptors and the common launch scaffolding."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional, Tuple

from repro.gpu.arch import GPUConfig, GiB
from repro.gpu.device import Device


#: The simulated evaluation GPU.  Capacity matches the paper's Titan RTX;
#: the warp width is reduced to 8 so that pure-Python execution of tens of
#: thousands of dynamic instructions per workload stays fast while still
#: exercising multi-warp blocks, divergence, and reconvergence.
SIM_GPU = GPUConfig(
    name="Simulated Titan RTX",
    num_sms=72,
    warp_size=8,
    max_threads_per_block=1024,
    lanes_per_sm=64,
    memory_bytes=24 * GiB,
    supports_its=True,
)


@dataclass(frozen=True)
class Workload:
    """One evaluation workload.

    Attributes:
        name: the Table 4/5 application name.
        suite: the Table 4/5 suite name.
        run: host driver — ``run(device, seed)`` allocates, launches the
            kernels, and optionally verifies outputs.
        expected_races: unique racy sites iGUARD should report (Table 4
            count; 0 for the Table 5 workloads).
        expected_types: the Table 4 race-type tags, e.g. {"AS", "BR"}.
        cg_race: the race stems from Cooperative Groups misuse (Table 4
            prints these as "CG (DR)").
        complex_binary: real-world multi-file library — Barracuda cannot
            embed a single PTX file for it and fails to run (Gunrock,
            LonestarGPU, SlabHash, cuML).
        seeds: scheduler seeds the harness unions race reports over; pinned
            for reproducibility.
        description: one-line description for reports.
        contention_heavy: appears in the Figure 12 contention study.
    """

    name: str
    suite: str
    run: Callable[[Device, int], None]
    expected_races: int = 0
    expected_types: FrozenSet[str] = frozenset()
    cg_race: bool = False
    complex_binary: bool = False
    seeds: Tuple[int, ...] = (1, 2, 3)
    description: str = ""
    contention_heavy: bool = False

    @property
    def has_races(self) -> bool:
        return self.expected_races > 0

    def type_tags(self) -> str:
        """Table 4 style type list, e.g. ``"AS, BR"`` or ``"CG (DR)"``."""
        tags = ", ".join(sorted(self.expected_types))
        return f"CG ({tags})" if self.cg_race else tags


@dataclass
class WorkloadResult:
    """Outcome of running one workload under one detector (or none)."""

    workload: str
    detector: str
    status: str  # "ok" | "unsupported" | "timeout" | "oom" | "partial"
    races: int = 0
    race_types: FrozenSet[str] = frozenset()
    race_sites: Tuple = ()
    overhead: float = 1.0
    native_time: float = 0.0
    total_time: float = 0.0
    breakdown: dict = field(default_factory=dict)
    detail: str = ""
    #: Cells lost to worker crashes / exhausted retries (status "partial"):
    #: human-readable labels, so a degraded suite run still reports what
    #: it *did* finish instead of dying report-less.
    failed_cells: Tuple = ()

    @property
    def ran(self) -> bool:
        return self.status == "ok"
