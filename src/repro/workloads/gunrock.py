"""Gunrock: a high-performance GPU graph framework (PPoPP'16).

iGUARD found 7 previously-unreported races in Gunrock (>7700 LOC); the
developers acknowledged 3 (section 7.1).  Four Gunrock primitives are
reproduced with the Table 4 seeding:

=========  =====  =====  =============================================
workload   races  types  racy pattern
=========  =====  =====  =============================================
louvain    3      ITS    warp-cooperative weight aggregation missing
                         ``__syncwarp`` between phases
pr_nibble  1      BR     push-based PPR frontier consumed in-block
                         before a barrier
sm         1      BR     subgraph-matching candidate list consumed
                         across warps without a barrier
color      2      BR     hash-priority coloring reading neighbour
                         priorities/colors written by another warp
=========  =====  =====  =============================================

Gunrock is a big multi-file template library: Barracuda cannot embed a
single PTX for it and fails to run (``complex_binary``).
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_add,
    atomic_load,
    compute,
    load,
    store,
    syncthreads,
    syncwarp,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import signal, wait_for


# ---------------------------------------------------------------------------
# louvain: community detection (modularity optimization).
# 3 ITS races: lanes reuse the warp's weight-aggregation row without a
# __syncwarp after the leader's fold.
# ---------------------------------------------------------------------------


def _louvain_kernel(ctx, adj_w, community, wrow, gain, flags, n):
    tid = ctx.tid
    lane = ctx.lane
    base = ctx.warp_id * ctx.warp_size

    # Real work: accumulate edge weights toward each lane's candidate
    # community (thread-private row slot), then fold per warp.
    acc = 0
    for j in range(4):
        w = yield load(adj_w, (tid * 4 + j) % n)
        acc += w
    yield store(wrow, base + lane, acc)
    yield syncwarp()

    if lane == 0:
        # Leader folds the warp's weights to pick the best community.
        best = 0
        for i in range(1, ctx.warp_size):
            w = yield load(wrow, base + i)
            if w > best:
                best = w
        yield store(gain, ctx.warp_id, best)
        yield from signal(flags, ctx.warp_id)
    elif lane in (1, 2, 3):
        # Lanes start the *next* phase, overwriting their weight slots —
        # with no __syncwarp after the leader's fold (three sites).
        yield from wait_for(flags, ctx.warp_id, 1)
        c = yield load(community, tid % n)
        if lane == 1:
            yield store(wrow, base + lane, c)  # RACE (ITS): missing syncwarp
        elif lane == 2:
            yield store(wrow, base + lane, c)  # RACE (ITS): missing syncwarp
        else:
            yield store(wrow, base + lane, c)  # RACE (ITS): missing syncwarp
    yield compute(6)


def run_louvain(device: Device, seed: int) -> None:
    """Host driver: 32-vertex graph, 2 blocks x 16 threads."""
    n = 32
    adj_w = device.alloc("adj_w", n * 4, init=1)
    community = device.alloc("community", n, init=0)
    community.load_list([i % 4 for i in range(n)])
    wrow = device.alloc("wrow", 32, init=0)
    gain = device.alloc("gain", 4, init=0)
    flags = device.alloc("flags", 4, init=0)
    device.launch(
        _louvain_kernel,
        grid_dim=2,
        block_dim=16,
        args=(adj_w, community, wrow, gain, flags, n),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# pr_nibble: push-based personalized PageRank.
# 1 BR race: a residual pushed by warp 0 is consumed by warp 1 of the same
# block with no intervening barrier.
# ---------------------------------------------------------------------------


def _pr_nibble_kernel(ctx, residual, pagerank, frontier, flags, n, alpha_num, alpha_den):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: each thread settles its own vertex: moves alpha * r into
    # its pagerank and pushes the rest to a neighbour via device atomics.
    if tid < n:
        r = yield atomic_load(residual, tid)
        take = (r * alpha_num) // alpha_den
        pr = yield load(pagerank, tid)
        yield store(pagerank, tid, pr + take)
        yield atomic_add(residual, (tid + 1) % n, r - take)
        yield compute(5)

    # Seeded BR: warp 0's leader writes the block's next-frontier head;
    # warp 1's leader consumes it with no barrier in between.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(frontier, 0, 17)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        v = yield load(frontier, 0)  # RACE (BR): missing __syncthreads
        yield store(frontier, 1, v)


def run_pr_nibble(device: Device, seed: int) -> None:
    """Host driver: 32-vertex PPR nibble, 2 blocks x 16 threads."""
    n = 32
    residual = device.alloc("residual", n, init=16)
    pagerank = device.alloc("pagerank", n, init=0)
    frontier = device.alloc("frontier", 2, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _pr_nibble_kernel,
        grid_dim=2,
        block_dim=16,
        args=(residual, pagerank, frontier, flags, n, 15, 100),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# sm: subgraph matching.
# 1 BR race: warp 0 appends candidate pairs; warp 1 filters them without a
# barrier.
# ---------------------------------------------------------------------------


def _sm_kernel(ctx, q_edges, d_edges, candidates, matched, flags, n_q, n_d):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: test each (query edge, data edge) pair this thread owns
    # and tally matches with device atomics.
    for i in range(2):
        pair = (tid * 2 + i) % (n_q * n_d)
        q = yield load(q_edges, pair % n_q)
        d = yield load(d_edges, pair % n_d)
        yield compute(4)
        if q == d:
            yield atomic_add(matched, 0, 1)

    # Seeded BR: warp 0's leader stages a candidate; warp 1's leader
    # verifies it with no intervening barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(candidates, 0, 5)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        v = yield load(candidates, 0)  # RACE (BR): missing __syncthreads
        yield store(candidates, 1, v)


def run_sm(device: Device, seed: int) -> None:
    """Host driver: 8 query edges against 16 data edges, 2 blocks."""
    q_edges = device.alloc("q_edges", 8, init=0)
    q_edges.load_list([i % 5 for i in range(8)])
    d_edges = device.alloc("d_edges", 16, init=0)
    d_edges.load_list([i % 7 for i in range(16)])
    candidates = device.alloc("candidates", 2, init=0)
    matched = device.alloc("matched", 1, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _sm_kernel,
        grid_dim=2,
        block_dim=16,
        args=(q_edges, d_edges, candidates, matched, flags, 8, 16),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# color: hash-priority graph coloring.
# 2 BR races: warp 1 reads priorities and tentative colors written by
# warp 0 of the same block without a barrier.
# ---------------------------------------------------------------------------


def _color_kernel(ctx, priorities_in, colors_out, scratch, flags, n):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: Jones-Plassmann round over a read-only priority snapshot.
    if tid < n:
        mine = yield load(priorities_in, tid)
        higher = 0
        for j in (1, 2):
            p = yield load(priorities_in, (tid + j) % n)
            if p > mine:
                higher += 1
        yield compute(4)
        yield store(colors_out, tid, higher)

    # Seeded BR x2: warp 0's leader publishes this round's max priority
    # and conflict count; warp 1's leader reads both with no barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(scratch, 0, 9)
        yield store(scratch, 1, 3)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        a = yield load(scratch, 0)  # RACE (BR): missing __syncthreads
        b = yield load(scratch, 1)  # RACE (BR): missing __syncthreads
        yield store(scratch, 2, a + b)


def run_color(device: Device, seed: int) -> None:
    """Host driver: 32-vertex coloring round, 2 blocks x 16 threads."""
    n = 32
    priorities_in = device.alloc("priorities_in", n, init=0)
    priorities_in.load_list([(i * 11 + 7) % 31 for i in range(n)])
    colors_out = device.alloc("colors_out", n, init=0)
    scratch = device.alloc("scratch", 3, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _color_kernel,
        grid_dim=2,
        block_dim=16,
        args=(priorities_in, colors_out, scratch, flags, n),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="louvain",
        suite="Gunrock",
        run=run_louvain,
        expected_races=3,
        expected_types=frozenset({"ITS"}),
        complex_binary=True,
        description="Louvain community detection, warp fold missing syncwarp",
    ),
    Workload(
        name="pr_nibble",
        suite="Gunrock",
        run=run_pr_nibble,
        expected_races=1,
        expected_types=frozenset({"BR"}),
        complex_binary=True,
        description="personalized PageRank push missing a block barrier",
    ),
    Workload(
        name="sm",
        suite="Gunrock",
        run=run_sm,
        expected_races=1,
        expected_types=frozenset({"BR"}),
        complex_binary=True,
        description="subgraph matching candidate handoff missing a barrier",
    ),
    Workload(
        name="color",
        suite="Gunrock",
        run=run_color,
        expected_races=2,
        expected_types=frozenset({"BR"}),
        complex_binary=True,
        description="hash-priority coloring scratch shared across warps",
    ),
]
