"""cuML: the grid-sync race in RAPIDS cuML (acknowledged by developers).

The paper reports that cuML's grid synchronization had the same
leader-only-fence defect as NVIDIA's CG library (section 7.1: "iGUARD
caught similar races in cuML's and CUB's grid sync implementation, which
developers have acknowledged").  ``cuML_gsync`` reproduces the pattern
inside a k-means-style centroid update: per-thread partial centroid sums
are written before the sync and folded after it.

cuML is a large multi-file library, so Barracuda cannot ingest it at all
(``complex_binary``).
"""

from __future__ import annotations

from repro.cg import GridBarrier, this_grid
from repro.gpu.device import Device
from repro.gpu.instructions import compute, load, store
from repro.workloads.base import Workload
from repro.workloads.patterns import signal, wait_for


def _cuml_gsync_kernel(ctx, barrier_state, points, sums, out, round_flag, k):
    tid = ctx.tid
    grid = this_grid(ctx, GridBarrier(barrier_state))

    # Real work: each thread assigns its point to a cluster and writes a
    # partial sum into its own slot of the (threads x k) matrix.
    p = yield load(points, tid)
    cluster = p % k
    yield compute(8)
    yield store(sums, tid * k + cluster, p)

    # cuML's iteration gate: every thread polls the shared round word —
    # the contention hotspot that puts this app in Figure 12.
    if tid == 0:
        yield from signal(round_flag, 0)
    yield from wait_for(round_flag, 0)

    # The library's grid sync with the leader-only fence.
    yield from grid.sync_racy()

    # Fold partial sums: thread j of block 0 folds column j across all
    # threads — reading slots written by non-leader threads of other
    # blocks, which were never fenced.
    if ctx.block_id == 0 and tid < k:
        acc = 0
        for t in range(ctx.num_threads):
            v = yield load(sums, t * k + tid)  # RACE (DR): cuML grid sync
            acc += v
        yield store(out, tid, acc)


def run_cuml_gsync(device: Device, seed: int) -> None:
    """Host driver: 64 points, 4 clusters, 2 blocks."""
    grid_dim, block_dim, k = 2, 32, 4
    n = grid_dim * block_dim
    barrier_state = device.alloc("grid_barrier", GridBarrier.NUM_WORDS, init=0)
    points = device.alloc("points", n, init=0)
    points.load_list([(i * 7 + 3) % 23 for i in range(n)])
    sums = device.alloc("sums", n * k, init=0)
    out = device.alloc("out", k, init=0)
    round_flag = device.alloc("round_flag", 1, init=0)
    device.launch(
        _cuml_gsync_kernel,
        grid_dim=grid_dim,
        block_dim=block_dim,
        args=(barrier_state, points, sums, out, round_flag, k),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="cuML_gsync",
        suite="cuML",
        run=run_cuml_gsync,
        expected_races=1,
        expected_types=frozenset({"DR"}),
        complex_binary=True,
        contention_heavy=True,
        description="cuML grid sync missing per-thread fence in centroid update",
    ),
]
