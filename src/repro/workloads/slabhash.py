"""SlabHash: a dynamic GPU hash table (Ashkiani et al., IPDPS'18).

SlabHash chains fixed-size "slabs" per bucket, allocating new slabs from a
global pool with an atomic bump pointer.  The reproduction implements the
bucket-insert path: threads hash keys into buckets, claim slots within a
slab with atomic CAS, and allocate a fresh slab when one fills.

Seeded race (Table 4: 1 DR): a thread that allocates a new slab *links* it
into the bucket list before initializing it is done being visible — the
slab's header store is not fenced before the next-pointer publication, so
a reader traversing the chain from another block can observe an
uninitialized header.
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_add,
    atomic_cas,
    atomic_load,
    compute,
    load,
    store,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import signal, wait_for

_SLAB_SLOTS = 4


def _slabhash_kernel(ctx, keys, buckets, slots, pool_next, headers, flags, n_buckets):
    tid = ctx.tid

    # Real work: insert one key.  Claim a slot in the key's bucket slab
    # with CAS; on conflict, probe the next slot (all device atomics).
    key = yield load(keys, tid)
    bucket = key % n_buckets
    yield compute(5)
    inserted = False
    for probe in range(_SLAB_SLOTS):
        slot = bucket * _SLAB_SLOTS + probe
        old = yield atomic_cas(slots, slot, 0, key)
        if old == 0 or old == key:
            inserted = True
            break
    if not inserted:
        # Overflow: count it in the bucket's overflow tally.
        yield atomic_add(buckets, bucket, 1)

    # Seeded race: the first thread allocates a fresh slab from the pool,
    # writes its header, and *publishes* it with an unfenced flag bump;
    # a reader in the other block walks to it and reads the header.
    if tid == 0:
        new_slab = yield atomic_add(pool_next, 0, 1)
        yield store(headers, new_slab, 7777)
        yield from signal(flags, 0)  # link published with no fence
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        slab = (yield atomic_load(pool_next, 0)) - 1
        v = yield load(headers, slab)  # RACE (DR): header not fenced
        yield store(headers, slab + 1, v)


def run_slabhash(device: Device, seed: int) -> None:
    """Host driver: insert 64 keys into 8 buckets, 2 blocks."""
    grid_dim, block_dim, n_buckets = 2, 32, 8
    n = grid_dim * block_dim
    keys = device.alloc("keys", n, init=0)
    keys.load_list([(i * 13 + 5) % 97 + 1 for i in range(n)])
    buckets = device.alloc("buckets", n_buckets, init=0)
    slots = device.alloc("slots", n_buckets * _SLAB_SLOTS, init=0)
    pool_next = device.alloc("pool_next", 1, init=0)
    headers = device.alloc("headers", 4, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _slabhash_kernel,
        grid_dim=grid_dim,
        block_dim=block_dim,
        args=(keys, buckets, slots, pool_next, headers, flags, n_buckets),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="slabhash_test",
        suite="SlabHash",
        run=run_slabhash,
        expected_races=1,
        expected_types=frozenset({"DR"}),
        complex_binary=True,
        description="GPU hash table publishing an unfenced slab header",
    ),
]
