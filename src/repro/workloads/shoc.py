"""SHoC: the Scalable Heterogeneous Computing benchmark suite (GPGPU'10).

iGUARD's evaluation uses SHoC's breadth-first search.  Table 4 reports 2
races in **shocbfs**, both intra-block (BR): the next-frontier size and
the level cursor are handed across warps of a block without a barrier.
The BFS itself (level expansion with an atomically-built next frontier)
is implemented for real and is race-free.
"""

from __future__ import annotations

from repro.gpu.device import Device
from repro.gpu.instructions import (
    atomic_add,
    atomic_cas,
    compute,
    load,
    store,
    syncthreads,
)
from repro.workloads.base import Workload
from repro.workloads.patterns import signal, wait_for


def _shocbfs_kernel(ctx, row_ptr, col_idx, visited, frontier, next_frontier,
                    next_size, meta, flags, frontier_len):
    tid = ctx.tid
    lane = ctx.lane

    # Real work: expand one frontier vertex per thread.  Claim unvisited
    # neighbours with CAS and append them to the next frontier through an
    # atomic cursor (the standard race-free BFS idiom).
    if tid < frontier_len:
        v = yield load(frontier, tid)
        start = yield load(row_ptr, v)
        end = yield load(row_ptr, v + 1)
        for e in range(start, end):
            nbr = yield load(col_idx, e)
            old = yield atomic_cas(visited, nbr, 0, 1)
            if old == 0:
                slot = yield atomic_add(next_size, 0, 1)
                yield store(next_frontier, slot, nbr)
        yield compute(4)
    yield syncthreads()

    # BR x2: warp 0's leader snapshots the block's frontier statistics;
    # warp 1's leader consumes them with no further barrier.
    if ctx.block_id == 0 and ctx.warp_in_block == 0 and lane == 0:
        yield store(meta, 0, 3)  # next level number
        yield store(meta, 1, 5)  # block's appended count
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.warp_in_block == 1 and lane == 0:
        yield from wait_for(flags, 0)
        level = yield load(meta, 0)  # RACE (BR): missing __syncthreads
        count = yield load(meta, 1)  # RACE (BR): missing __syncthreads
        yield store(meta, 2, level + count)


def run_shocbfs(device: Device, seed: int) -> None:
    """Host driver: one BFS level over a 24-vertex graph, 2 blocks."""
    n = 24
    # A ring with chords: vertex i -> i+1, i+5 (mod n).
    row_ptr = device.alloc("row_ptr", n + 1, init=0)
    row_ptr.load_list([2 * i for i in range(n + 1)])
    col_idx = device.alloc("col_idx", 2 * n, init=0)
    col_idx.load_list(
        [x for i in range(n) for x in ((i + 1) % n, (i + 5) % n)]
    )
    visited = device.alloc("visited", n, init=0)
    frontier = device.alloc("frontier", 8, init=0)
    frontier.load_list([0, 3, 6, 9, 12, 15, 18, 21])
    next_frontier = device.alloc("next_frontier", 2 * n, init=0)
    next_size = device.alloc("next_size", 1, init=0)
    meta = device.alloc("meta", 3, init=0)
    flags = device.alloc("flags", 1, init=0)
    device.launch(
        _shocbfs_kernel,
        grid_dim=2,
        block_dim=16,
        args=(row_ptr, col_idx, visited, frontier, next_frontier,
              next_size, meta, flags, 8),
        seed=seed,
    )


WORKLOADS = [
    Workload(
        name="shocbfs",
        suite="SHoC",
        run=run_shocbfs,
        expected_races=2,
        expected_types=frozenset({"BR"}),
        description="SHoC breadth-first search, unbarriered level metadata",
    ),
]
