"""The workload registry: every Table 4 and Table 5 application.

Suites appear in the paper's Table 4 order.  The registry is the single
source of truth for the experiment harness and the test suite: per
workload it records the expected unique-race count and type tags (Table
4), whether the race is CG-induced, and whether Barracuda can ingest the
binary at all.

Note on totals: the paper's text says "57 races in 21 GPU programs", while
its Table 4 lists 22 application rows whose counts sum to 57; we implement
all 22 rows.  With the 21 race-free workloads of Table 5 (12 CUB, 8
Rodinia, plus warpAA) the registry holds 43 workloads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import (
    cg_suite,
    cub,
    cuml,
    gunrock,
    kilotm,
    lonestar,
    nvlib,
    rodinia,
    scor,
    shoc,
    slabhash,
)
from repro.workloads.base import Workload

#: All workloads, grouped in Table 4 suite order then Table 5 extras.
REGISTRY: List[Workload] = (
    list(scor.WORKLOADS)
    + list(cg_suite.WORKLOADS)
    + list(nvlib.WORKLOADS)
    + list(gunrock.WORKLOADS)
    + list(lonestar.WORKLOADS)
    + list(slabhash.WORKLOADS)
    + list(cuml.WORKLOADS)
    + list(kilotm.WORKLOADS)
    + list(shoc.WORKLOADS)
    + list(cub.WORKLOADS)
    + list(rodinia.WORKLOADS)
)

_BY_NAME: Dict[str, Workload] = {w.name: w for w in REGISTRY}
if len(_BY_NAME) != len(REGISTRY):  # pragma: no cover - authoring guard
    raise RuntimeError("duplicate workload names in the registry")


def get_workload(name: str) -> Workload:
    """Look a workload up by its Table 4/5 name."""
    return _BY_NAME[name]


def racy_workloads() -> List[Workload]:
    """The Table 4 applications (with seeded races)."""
    return [w for w in REGISTRY if w.has_races]


def racefree_workloads() -> List[Workload]:
    """The Table 5 applications (the false-positive check)."""
    return [w for w in REGISTRY if not w.has_races]


def total_expected_races() -> int:
    """The paper's headline count: 57."""
    return sum(w.expected_races for w in REGISTRY)
