"""Table 4: races detected by Barracuda and iGUARD per application.

Reproduces the paper's central result: iGUARD detects 57 unique races
across the racy workloads, classified as IL (improper locking), AS
(insufficient atomic scope), ITS, BR (intra-block) and DR (inter-block /
device); Barracuda runs only a few suites, misses ITS races, and "does
not terminate" on Kilo-TM's interac.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import Barracuda
from repro.core import IGuard
from repro.experiments.reporting import render_table, title
from repro.obs.log import output
from repro.workloads import racy_workloads, run_suite


@dataclass
class Row:
    """One Table 4 line."""

    suite: str
    name: str
    barracuda: str
    iguard: int
    types: str


def run(workers: int = 1) -> List[Row]:
    """Execute every racy workload under both detectors.

    ``workers > 1`` fans the (workload, detector, seed) cells out over
    processes; the merged rows are identical to the serial ones.
    """
    workloads = racy_workloads()
    requests = []
    for workload in workloads:
        requests.append((workload, IGuard, None))
        requests.append((workload, Barracuda, (1,)))
    results = run_suite(requests, workers=workers)

    rows: List[Row] = []
    for index, workload in enumerate(workloads):
        ig = results[2 * index]
        bar = results[2 * index + 1]
        if bar.status == "unsupported":
            bar_cell = "Unsupported"
        elif bar.status == "timeout":
            bar_cell = f"{bar.races}*"  # * = did not terminate
        else:
            bar_cell = str(bar.races)
        types = ", ".join(sorted(ig.race_types))
        if workload.cg_race:
            types = f"CG ({types})"
        rows.append(
            Row(
                suite=workload.suite,
                name=workload.name,
                barracuda=bar_cell,
                iguard=ig.races,
                types=types,
            )
        )
    return rows


def total_races(rows: List[Row]) -> int:
    """The headline count (paper: 57)."""
    return sum(r.iguard for r in rows)


def render(rows: List[Row]) -> str:
    table = render_table(
        ["Suite", "Application", "Barracuda", "iGUARD", "Types"],
        [[r.suite, r.name, r.barracuda, r.iguard, r.types] for r in rows],
    )
    legend = (
        "IL: improper locking, AS: insufficient atomic scope, ITS: ITS-induced,\n"
        "BR: intra-block, DR: inter-block/device.  * did not terminate."
    )
    summary = (
        f"Total races detected by iGUARD: {total_races(rows)} "
        f"across {len(rows)} applications (paper: 57)."
    )
    return "\n".join([title("Table 4: races detected"), legend, "", table, "", summary])


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Table 4: races detected")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the suite executor (default: 1)",
    )
    args = parser.parse_args(argv)
    output(render(run(workers=args.workers)))


if __name__ == "__main__":
    main()
