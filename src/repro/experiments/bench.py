"""Wall-clock performance harness: ``python -m repro.experiments.bench``.

Unlike the tables and figures, which report *simulated cycles*, this
harness measures the reproduction's own speed — wall-clock events per
second of the detection hot path — over a fixed basket of workloads with
pinned scheduler seeds.  Its output is a ``BENCH_*.json`` artifact meant
to be checked in per PR, so the events/sec trajectory of the codebase is
observable and CI can hold the line against regressions.

Metrics, per (workload, seed) cell and aggregated per suite and overall:

- **events/sec** — memory-access events processed by the detector
  (checked + coalesced) divided by the wall-clock time of the run;
- **p50/p95 per-event cost** — microseconds per event across cells;
- **elision rate** — the share of checked accesses the same-epoch fast
  path elided (zero when the fast path is off or predates the knob).

The harness also runs a *replay equivalence check*: a recorded trace is
replayed through a fast-path-on and a fast-path-off detector and the
races, race types, and per-category cycle breakdowns are compared for
exact equality — the fast path's invariant is bit-identical detection
output with only wall-clock time allowed to change.

Modes (``--modes fast,slow``) toggle ``IGuardConfig.fast_path``.  On a
checkout that predates the knob, both modes degrade to the default
config, which is what makes the harness suitable for measuring a pre-PR
baseline with the *same* timing loop.

CI runs ``--smoke --check <baseline.json>``: a small basket, JSON
uploaded as an artifact, non-zero exit if events/sec regresses more than
30% against the checked-in smoke baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.errors import DeadlockError, TimeoutError_
from repro.gpu.device import Device
from repro.obs import (
    add_observability_args,
    begin_observability,
    finalize_observability,
)
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger, output
from repro.workloads import racy_workloads
from repro.workloads.base import SIM_GPU

#: Workloads (by Table 4 name) of the quick CI basket.  Chosen to cover
#: several suites while keeping the smoke job under a minute.
SMOKE_BASKET = ("matrix-mult", "reduction", "graph-color", "reduceMB")

#: Default regression tolerance for ``--check``: fail when events/sec
#: drops below (1 - 0.30) x the checked-in baseline.
REGRESSION_TOLERANCE = 0.30


def _detector_config(fast_path: bool) -> IGuardConfig:
    """The default config with the fast path toggled.

    Degrades gracefully on checkouts whose ``IGuardConfig`` predates the
    ``fast_path`` knob (used to measure pre-PR baselines with the same
    harness).
    """
    try:
        return replace(DEFAULT_CONFIG, fast_path=fast_path)
    except TypeError:
        return DEFAULT_CONFIG


@dataclass
class CellResult:
    """One (workload, seed) measurement."""

    suite: str
    workload: str
    seed: int
    events: int
    elided: int
    seconds: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0

    @property
    def us_per_event(self) -> float:
        return self.seconds * 1e6 / self.events if self.events else 0.0


def bench_cell(workload, seed: int, config: IGuardConfig, repeats: int = 1) -> CellResult:
    """Time one workload/seed run under a fresh detector.

    ``repeats`` > 1 re-runs the cell and keeps the fastest wall time (the
    standard way to suppress scheduler noise); events are identical
    across repeats because the seed pins the interleaving.
    """
    best: Optional[float] = None
    events = elided = 0
    for _ in range(max(1, repeats)):
        device = Device(SIM_GPU)
        tool = device.add_tool(IGuard(config=config))
        started = time.perf_counter()
        try:
            workload.run(device, seed)
        except (DeadlockError, TimeoutError_):
            pass  # legitimate racy outcomes; the cell's events still count
        elapsed = time.perf_counter() - started
        events = sum(
            s.accesses_checked + s.accesses_coalesced for s in tool.stats
        )
        elided = sum(getattr(s, "accesses_elided", 0) for s in tool.stats)
        best = elapsed if best is None else min(best, elapsed)
    return CellResult(
        suite=workload.suite,
        workload=workload.name,
        seed=seed,
        events=events,
        elided=elided,
        seconds=best or 0.0,
    )


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``values`` (fraction in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (position - lo)


def summarize(cells: Iterable[CellResult]) -> dict:
    """Aggregate cells into per-suite and overall metrics."""
    cells = list(cells)
    suites: Dict[str, dict] = {}
    for cell in cells:
        suite = suites.setdefault(
            cell.suite, {"events": 0, "seconds": 0.0, "elided": 0}
        )
        suite["events"] += cell.events
        suite["seconds"] += cell.seconds
        suite["elided"] += cell.elided
    for suite in suites.values():
        suite["events_per_sec"] = round(
            suite["events"] / suite["seconds"] if suite["seconds"] else 0.0, 1
        )
        suite["seconds"] = round(suite["seconds"], 4)
        suite["elision_rate"] = round(
            suite.pop("elided") / suite["events"] if suite["events"] else 0.0, 4
        )
    events = sum(c.events for c in cells)
    seconds = sum(c.seconds for c in cells)
    elided = sum(c.elided for c in cells)
    costs = [c.us_per_event for c in cells if c.events]
    return {
        "cells": len(cells),
        "events": events,
        "seconds": round(seconds, 4),
        "events_per_sec": round(events / seconds if seconds else 0.0, 1),
        "p50_us_per_event": round(_percentile(costs, 0.50), 4),
        "p95_us_per_event": round(_percentile(costs, 0.95), 4),
        "elision_rate": round(elided / events if events else 0.0, 4),
        "suites": suites,
    }


def run_mode(
    workloads, fast_path: bool, repeats: int = 1, seeds_limit: Optional[int] = None
) -> dict:
    """Measure every (workload, seed) cell of the basket in one mode."""
    config = _detector_config(fast_path)
    cells = []
    for workload in workloads:
        seeds = workload.seeds[:seeds_limit] if seeds_limit else workload.seeds
        for seed in seeds:
            cells.append(bench_cell(workload, seed, config, repeats=repeats))
    return summarize(cells)


# ---------------------------------------------------------------------------
# Replay equivalence: fast path on vs off must be bit-identical.
# ---------------------------------------------------------------------------


def _result_fingerprint(result) -> dict:
    """The detection output that must be invariant under the fast path."""
    return {
        "status": result.status,
        "races": result.races,
        "race_types": sorted(str(t) for t in result.race_types),
        "race_sites": list(result.race_sites),
        "native_time": result.native_time,
        "total_time": result.total_time,
        "breakdown": result.breakdown,
    }


def equivalence_check(workloads) -> dict:
    """Replay each workload's trace under fast-path-on and -off detectors.

    Returns ``{"checked": N, "identical": bool, "mismatches": [...]}``.
    Races, race types and the Figure 13 cycle breakdowns must be exactly
    equal — the fast path may only change wall-clock time.
    """
    from repro.engine.replay import capture_workload, replay_workload

    mismatches: List[str] = []
    for workload in workloads:
        trace = capture_workload(workload)
        fast = replay_workload(
            trace, lambda: IGuard(config=_detector_config(True)), workload.name
        )
        slow = replay_workload(
            trace, lambda: IGuard(config=_detector_config(False)), workload.name
        )
        if _result_fingerprint(fast) != _result_fingerprint(slow):
            mismatches.append(workload.name)
    return {
        "checked": len(list(workloads)),
        "identical": not mismatches,
        "mismatches": mismatches,
    }


# ---------------------------------------------------------------------------
# Shard scaling: events/sec of the in-process sharded replay driver.
# ---------------------------------------------------------------------------

#: Shard counts the scaling measurement sweeps.
SHARD_COUNTS = (1, 2, 4, 8)


def measure_shard_scaling(
    workloads,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    repeats: int = 1,
    seeds_limit: int = 1,
) -> dict:
    """Measure replay throughput at each shard count over captured traces.

    ``shards=1`` replays through the standard event-bus pipeline (what a
    serial run costs today); ``shards>1`` uses
    :func:`repro.core.sharding.replay_trace_sharded`, the in-process
    sharded driver whose per-shard queues drain through the tight
    ``check_run`` loop.  Race sites are compared across all counts — the
    sharded driver's contract is identical detection output — and the
    speedup of each count over the 1-shard pipeline is reported.
    """
    from repro.core.sharding import replay_trace_sharded
    from repro.engine.replay import capture_workload, replay

    totals = {n: {"events": 0, "seconds": 0.0} for n in shard_counts}
    sites_by_count: Dict[int, Dict[str, str]] = {n: {} for n in shard_counts}
    for workload in workloads:
        trace = capture_workload(workload)
        streams = [(seed, list(events)) for seed, events in trace.runs()]
        if seeds_limit:
            streams = streams[:seeds_limit]
        for _seed, events in streams:
            for count in shard_counts:
                best: Optional[float] = None
                cell_events = 0
                tool = None
                for _ in range(max(1, repeats)):
                    if count == 1:
                        tool = IGuard()
                        started = time.perf_counter()
                        replay(events, tools=[tool])
                        elapsed = time.perf_counter() - started
                        cell_events = sum(
                            s.accesses_checked + s.accesses_coalesced
                            for s in tool.stats
                        )
                    else:
                        sharded = replay_trace_sharded(events, shards=count)
                        tool = sharded.tool
                        elapsed = sharded.seconds
                        cell_events = sharded.events
                    best = elapsed if best is None else min(best, elapsed)
                totals[count]["events"] += cell_events
                totals[count]["seconds"] += best or 0.0
                for ip, race_type in tool.races.sites():
                    sites_by_count[count].setdefault(ip, str(race_type))

    reference = sites_by_count[shard_counts[0]]
    identical = all(sites_by_count[n] == reference for n in shard_counts)
    per_count = {}
    for count in shard_counts:
        bucket = totals[count]
        per_count[str(count)] = {
            "events": bucket["events"],
            "seconds": round(bucket["seconds"], 4),
            "events_per_sec": round(
                bucket["events"] / bucket["seconds"]
                if bucket["seconds"]
                else 0.0,
                1,
            ),
        }
    base_eps = per_count[str(shard_counts[0])]["events_per_sec"]
    speedup = {
        str(count): (
            round(per_count[str(count)]["events_per_sec"] / base_eps, 2)
            if base_eps
            else None
        )
        for count in shard_counts
    }
    return {
        "shard_counts": list(shard_counts),
        "per_count": per_count,
        "speedup_vs_serial": speedup,
        "identical_sites": identical,
    }


# ---------------------------------------------------------------------------
# Observability overhead: what does the flight recorder itself cost?
# ---------------------------------------------------------------------------


def measure_obs_overhead(workloads, repeats: int = 1, seeds_limit: int = 1) -> dict:
    """Measure the metrics instrumentation's own wall-clock cost.

    Runs the fast-path basket twice — once with the metrics registry
    disabled and once enabled — over one seed per workload, and reports
    the events/sec of each plus the overhead as a separate percentage.
    Restores the registry's enabled state afterwards.
    """
    was_enabled = obs_metrics.metrics_enabled()
    try:
        obs_metrics.set_enabled(False)
        disabled = run_mode(
            workloads, fast_path=True, repeats=repeats, seeds_limit=seeds_limit
        )
        obs_metrics.set_enabled(True)
        enabled = run_mode(
            workloads, fast_path=True, repeats=repeats, seeds_limit=seeds_limit
        )
    finally:
        obs_metrics.set_enabled(was_enabled)
    off_eps = disabled["events_per_sec"]
    on_eps = enabled["events_per_sec"]
    return {
        "disabled_events_per_sec": off_eps,
        "enabled_events_per_sec": on_eps,
        "overhead_pct": (
            round((off_eps / on_eps - 1.0) * 100.0, 1) if on_eps else None
        ),
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def basket(smoke: bool = False):
    """The measured workloads: the Table 4 racy basket (or its smoke cut)."""
    workloads = racy_workloads()
    if smoke:
        workloads = [w for w in workloads if w.name in SMOKE_BASKET]
    return workloads


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench",
        description="Wall-clock events/sec benchmark over the table4 basket.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small basket for CI ({', '.join(SMOKE_BASKET)})",
    )
    parser.add_argument(
        "--modes", default="fast,slow",
        help="comma-separated fast-path modes to measure (fast, slow)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per cell, fastest kept (default 1)",
    )
    parser.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="limit each workload to its first N pinned seeds",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the results JSON here (default: stdout only)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline JSON; exit 2 on a >30%% "
             "events/sec regression",
    )
    parser.add_argument(
        "--embed-baseline", default=None, metavar="PATH",
        help="embed a previously measured baseline JSON under "
             "'pre_pr_baseline' and report the speedup against it",
    )
    parser.add_argument(
        "--no-equivalence", action="store_true",
        help="skip the fast-vs-slow replay equivalence check",
    )
    parser.add_argument(
        "--no-shard-scaling", action="store_true",
        help="skip the sharded-replay throughput sweep "
             f"(shards in {{{', '.join(map(str, SHARD_COUNTS))}}})",
    )
    add_observability_args(parser)
    args = parser.parse_args(argv)
    begin_observability(args)
    logger = get_logger("bench")

    from repro.core.sharding import default_shards
    from repro.obs.log import log_run_config

    log_run_config(
        backend="iguard",
        shards=default_shards(),
        workers=1,
        fast_path=DEFAULT_CONFIG.fast_path,
        logger=logger,
    )

    workloads = basket(smoke=args.smoke)
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    unknown = [m for m in modes if m not in ("fast", "slow")]
    if unknown:
        parser.error(f"unknown mode(s): {', '.join(unknown)}")

    result = {
        "schema": 1,
        "harness": "repro.experiments.bench",
        "basket": "table4-racy-smoke" if args.smoke else "table4-racy",
        "workloads": [w.name for w in workloads],
        "repeats": args.repeats,
        "python": platform.python_version(),
        "modes": {},
    }
    for mode in modes:
        started = time.perf_counter()
        summary = run_mode(
            workloads,
            fast_path=(mode == "fast"),
            repeats=args.repeats,
            seeds_limit=args.seeds,
        )
        summary["wall_seconds"] = round(time.perf_counter() - started, 2)
        result["modes"][mode] = summary
        output(
            f"[{mode}] {summary['events']} events in {summary['seconds']}s "
            f"-> {summary['events_per_sec']:.0f} events/sec "
            f"(p50 {summary['p50_us_per_event']}us, "
            f"p95 {summary['p95_us_per_event']}us, "
            f"elision {summary['elision_rate']:.1%})"
        )
    if "fast" in result["modes"] and "slow" in result["modes"]:
        slow = result["modes"]["slow"]["events_per_sec"]
        fast = result["modes"]["fast"]["events_per_sec"]
        result["fast_over_slow"] = round(fast / slow, 2) if slow else None
        output(f"fast path speedup over fast-path-off: {result['fast_over_slow']}x")

    if obs_metrics.metrics_enabled():
        # The flight recorder's own cost, reported as a separate number so
        # instrumented runs are never compared against uninstrumented
        # baselines by accident.
        result["obs_overhead"] = measure_obs_overhead(
            workloads, repeats=args.repeats
        )
        overhead = result["obs_overhead"]
        output(
            f"observability overhead: {overhead['overhead_pct']}% "
            f"({overhead['disabled_events_per_sec']:.0f} -> "
            f"{overhead['enabled_events_per_sec']:.0f} events/sec "
            f"with metrics on)"
        )

    if not args.no_equivalence:
        result["equivalence"] = equivalence_check(workloads)
        status = "identical" if result["equivalence"]["identical"] else "MISMATCH"
        output(f"replay equivalence (fast vs slow): {status}")

    if not args.no_shard_scaling:
        result["shard_scaling"] = measure_shard_scaling(
            workloads, repeats=args.repeats
        )
        scaling = result["shard_scaling"]
        line = ", ".join(
            f"{count}: {scaling['per_count'][str(count)]['events_per_sec']:.0f}"
            f" ({scaling['speedup_vs_serial'][str(count)]}x)"
            for count in scaling["shard_counts"]
        )
        sites = "identical" if scaling["identical_sites"] else "MISMATCH"
        output(f"shard scaling events/sec {{shards: eps (speedup)}}: {line}")
        output(f"shard scaling race sites across counts: {sites}")

    if args.embed_baseline:
        with open(args.embed_baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        result["pre_pr_baseline"] = baseline
        base_eps = _headline_events_per_sec(baseline)
        new_eps = _headline_events_per_sec(result)
        if base_eps:
            result["speedup_vs_pre_pr"] = round(new_eps / base_eps, 2)
            output(f"speedup vs pre-PR baseline: {result['speedup_vs_pre_pr']}x")

    exit_code = 0
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_eps = _headline_events_per_sec(baseline)
        new_eps = _headline_events_per_sec(result)
        floor = (1.0 - REGRESSION_TOLERANCE) * base_eps
        result["check"] = {
            "baseline_events_per_sec": base_eps,
            "measured_events_per_sec": new_eps,
            "floor": round(floor, 1),
            "passed": new_eps >= floor,
        }
        if new_eps < floor:
            logger.error(
                "REGRESSION: %.0f events/sec is below the %.0f floor "
                "(%.0f baseline - 30%%)", new_eps, floor, base_eps,
            )
            exit_code = 2
        else:
            output(
                f"regression check passed: {new_eps:.0f} >= {floor:.0f} "
                f"events/sec floor"
            )
    if not result.get("equivalence", {}).get("identical", True):
        logger.error("EQUIVALENCE FAILURE: fast path changed detection output")
        exit_code = 3
    if not result.get("shard_scaling", {}).get("identical_sites", True):
        logger.error(
            "SHARDING FAILURE: sharded replay changed detection output"
        )
        exit_code = 3

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=False)
            handle.write("\n")
        output(f"wrote {args.output}")
    finalize_observability(args)
    return exit_code


def _headline_events_per_sec(result: dict) -> float:
    """The headline metric of a results JSON: the fast mode's events/sec
    (falling back to whichever single mode was measured)."""
    modes = result.get("modes", {})
    for name in ("fast", "slow"):
        if name in modes:
            return float(modes[name].get("events_per_sec", 0.0))
    return 0.0


if __name__ == "__main__":
    sys.exit(main())
