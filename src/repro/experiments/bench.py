"""Wall-clock performance harness: ``python -m repro.experiments.bench``.

Unlike the tables and figures, which report *simulated cycles*, this
harness measures the reproduction's own speed — wall-clock events per
second of the detection hot path — over a fixed basket of workloads with
pinned scheduler seeds.  Its output is a ``BENCH_*.json`` artifact meant
to be checked in per PR, so the events/sec trajectory of the codebase is
observable and CI can hold the line against regressions.

Metrics, per (workload, seed) cell and aggregated per suite and overall:

- **events/sec** — memory-access events processed by the detector
  (checked + coalesced) divided by the wall-clock time of the run;
- **p50/p95 per-event cost** — microseconds per event across cells;
- **elision rate** — the share of checked accesses the same-epoch fast
  path elided (zero when the fast path is off or predates the knob).

The harness also runs a *replay equivalence check*: a recorded trace is
replayed through a fast-path-on and a fast-path-off detector and the
races, race types, and per-category cycle breakdowns are compared for
exact equality — the fast path's invariant is bit-identical detection
output with only wall-clock time allowed to change.

Modes (``--modes fast,slow``) set ``IGuardConfig.fast_path``: ``fast``
measures the shipping default (``"auto"`` — per-kernel adaptive elision)
and ``slow`` forces the bookkeeping off.  On a checkout that predates
the knob, both modes degrade to the default config, which is what makes
the harness suitable for measuring a pre-PR baseline with the *same*
timing loop.

The harness also measures trace-container throughput: decode and
end-to-end replay events/sec of the JSONL codec vs the columnar ``.ctr``
container (``repro.engine.coltrace``), with race-site equality enforced
across formats.

Static check pruning (``IGuardConfig.static_prune``) gets its own
off-vs-on measurement: events/sec with and without the static analyzer's
safe-site hints, the fraction of accesses the hints elide, and a
per-cell race-site equality check (the pruning contract is byte-identical
detection output — a divergence exits 3 like any equivalence failure).

CI runs ``--smoke --check <baseline.json>``: a small basket, JSON
uploaded as an artifact.  Exit codes: 2 — events/sec regressed more
than 30% against the checked-in smoke baseline; 3 — any equivalence
check diverged (fast-path modes, shard counts, or container formats);
4 — ``fast_over_slow`` fell below 1.0 beyond the jitter allowance (the
adaptive fast path failed its never-slower contract).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.errors import DeadlockError, TimeoutError_
from repro.gpu.device import Device
from repro.obs import (
    add_observability_args,
    begin_observability,
    finalize_observability,
)
from repro.obs import metrics as obs_metrics
from repro.obs import profiler as obs_profiler
from repro.obs.log import get_logger, output
from repro.workloads import racy_workloads
from repro.workloads.base import SIM_GPU

#: Workloads (by Table 4 name) of the quick CI basket.  Chosen to cover
#: several suites while keeping the smoke job under a minute.
SMOKE_BASKET = ("matrix-mult", "reduction", "graph-color", "reduceMB")

#: Default regression tolerance for ``--check``: fail when events/sec
#: drops below (1 - 0.30) x the checked-in baseline.
REGRESSION_TOLERANCE = 0.30

#: Noise allowance for the fast-path gate.  The adaptive ("auto") mode's
#: contract is never-slower-than-off, i.e. ``fast_over_slow >= 1.0``, but
#: identical code measured twice on a CI container jitters a few percent
#: run to run even with interleaved repeats and keep-fastest.  Only a
#: shortfall beyond this allowance is a real regression (the pre-adaptive
#: always-on fast path measured 0.91x and must keep failing).
FAST_PATH_JITTER_ALLOWANCE = 0.05


def _detector_config(fast_path) -> IGuardConfig:
    """The default config with the fast path set to ``fast_path``.

    ``fast_path`` is ``"auto"``, ``True`` or ``False``.  Degrades
    gracefully on checkouts whose ``IGuardConfig`` predates the knob
    (used to measure pre-PR baselines with the same harness).
    """
    try:
        return replace(DEFAULT_CONFIG, fast_path=fast_path)
    except TypeError:
        return DEFAULT_CONFIG


def _fast_path_mode(fast_path) -> str:
    """The recorded label of a fast-path setting: auto, on, or off."""
    if fast_path == "auto":
        return "auto"
    return "on" if fast_path else "off"


@dataclass
class CellResult:
    """One (workload, seed) measurement."""

    suite: str
    workload: str
    seed: int
    events: int
    elided: int
    seconds: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0

    @property
    def us_per_event(self) -> float:
        return self.seconds * 1e6 / self.events if self.events else 0.0


def bench_cell(workload, seed: int, config: IGuardConfig, repeats: int = 1) -> CellResult:
    """Time one workload/seed run under a fresh detector.

    ``repeats`` > 1 re-runs the cell and keeps the fastest wall time (the
    standard way to suppress scheduler noise); events are identical
    across repeats because the seed pins the interleaving.  Later repeats
    warm-start each core with the previous repeat's per-kernel fast-path
    verdicts, so keep-fastest measures the steady state of the "auto"
    mode (a decided detector) rather than its one-time warm-up sampling.
    """
    best: Optional[float] = None
    events = elided = 0
    decisions: Optional[dict] = None
    for _ in range(max(1, repeats)):
        elapsed, events, elided, decisions = _run_cell_once(
            workload, seed, config, decisions
        )
        best = elapsed if best is None else min(best, elapsed)
    return CellResult(
        suite=workload.suite,
        workload=workload.name,
        seed=seed,
        events=events,
        elided=elided,
        seconds=best or 0.0,
    )


def _run_cell_once(workload, seed: int, config: IGuardConfig, decisions):
    """One timed run of a cell; returns (seconds, events, elided, decisions).

    ``decisions`` warm-starts the detector's per-kernel fast-path
    verdicts (the "auto" mode's steady state); the run's own verdicts
    are returned for the next repeat.
    """
    device = Device(SIM_GPU)
    tool = device.add_tool(IGuard(config=config))
    if decisions:
        for core in tool.cores:
            getattr(core, "fast_decisions", {}).update(decisions)
    started = time.perf_counter()
    try:
        workload.run(device, seed)
    except (DeadlockError, TimeoutError_):
        pass  # legitimate racy outcomes; the cell's events still count
    elapsed = time.perf_counter() - started
    events = sum(
        s.accesses_checked + s.accesses_coalesced for s in tool.stats
    )
    elided = sum(getattr(s, "accesses_elided", 0) for s in tool.stats)
    learned: dict = {}
    for core in tool.cores:
        learned.update(getattr(core, "fast_decisions", {}))
    return elapsed, events, elided, learned


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``values`` (fraction in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (position - lo)


def summarize(cells: Iterable[CellResult]) -> dict:
    """Aggregate cells into per-suite and overall metrics."""
    cells = list(cells)
    suites: Dict[str, dict] = {}
    for cell in cells:
        suite = suites.setdefault(
            cell.suite, {"events": 0, "seconds": 0.0, "elided": 0}
        )
        suite["events"] += cell.events
        suite["seconds"] += cell.seconds
        suite["elided"] += cell.elided
    break_even = getattr(DEFAULT_CONFIG, "fast_path_break_even", 0.0)
    for suite in suites.values():
        suite["events_per_sec"] = round(
            suite["events"] / suite["seconds"] if suite["seconds"] else 0.0, 1
        )
        suite["seconds"] = round(suite["seconds"], 4)
        suite["elision_rate"] = round(
            suite.pop("elided") / suite["events"] if suite["events"] else 0.0, 4
        )
        # The "auto" mode's break-even verdict, recorded per suite so a
        # bench JSON states which suites can pay for the fast path's
        # signature bookkeeping and which get it disabled.
        suite["break_even"] = break_even
        suite["above_break_even"] = suite["elision_rate"] >= break_even
    events = sum(c.events for c in cells)
    seconds = sum(c.seconds for c in cells)
    elided = sum(c.elided for c in cells)
    costs = [c.us_per_event for c in cells if c.events]
    return {
        "cells": len(cells),
        "events": events,
        "seconds": round(seconds, 4),
        "events_per_sec": round(events / seconds if seconds else 0.0, 1),
        "p50_us_per_event": round(_percentile(costs, 0.50), 4),
        "p95_us_per_event": round(_percentile(costs, 0.95), 4),
        "elision_rate": round(elided / events if events else 0.0, 4),
        "suites": suites,
    }


def run_mode(
    workloads, fast_path, repeats: int = 1, seeds_limit: Optional[int] = None
) -> dict:
    """Measure every (workload, seed) cell of the basket in one mode.

    ``fast_path`` is the config value: ``"auto"``, ``True`` or ``False``.
    """
    config = _detector_config(fast_path)
    cells = []
    for workload in workloads:
        seeds = workload.seeds[:seeds_limit] if seeds_limit else workload.seeds
        for seed in seeds:
            cells.append(bench_cell(workload, seed, config, repeats=repeats))
    summary = summarize(cells)
    summary["fast_path_mode"] = _fast_path_mode(fast_path)
    return summary


def run_modes(
    workloads,
    mode_values: Dict[str, object],
    repeats: int = 1,
    seeds_limit: Optional[int] = None,
) -> Dict[str, dict]:
    """Measure several fast-path modes with per-cell interleaved repeats.

    Measuring one whole mode after another biases the ratio: the later
    mode runs on a warmed-up process (hot caches, faulted-in pages) and
    looks a few percent faster regardless of the code under test — the
    container's run-to-run jitter is larger than the effect the
    ``fast_over_slow`` gate polices.  Here every repeat of a cell runs
    *all* modes back to back (after one untimed priming run), so each
    mode's keep-fastest time comes from identical conditions and the
    ratio is unbiased.
    """
    configs = {mode: _detector_config(v) for mode, v in mode_values.items()}
    cells: Dict[str, List[CellResult]] = {mode: [] for mode in mode_values}
    for workload in workloads:
        seeds = workload.seeds[:seeds_limit] if seeds_limit else workload.seeds
        for seed in seeds:
            first_config = next(iter(configs.values()))
            _run_cell_once(workload, seed, first_config, None)  # priming
            best: Dict[str, Optional[float]] = {m: None for m in configs}
            events = {m: 0 for m in configs}
            elided = {m: 0 for m in configs}
            decisions: Dict[str, Optional[dict]] = {m: None for m in configs}
            for _ in range(max(1, repeats)):
                for mode, config in configs.items():
                    elapsed, n_events, n_elided, learned = _run_cell_once(
                        workload, seed, config, decisions[mode]
                    )
                    decisions[mode] = learned
                    events[mode] = n_events
                    elided[mode] = n_elided
                    best[mode] = (
                        elapsed
                        if best[mode] is None
                        else min(best[mode], elapsed)
                    )
            for mode in configs:
                cells[mode].append(
                    CellResult(
                        suite=workload.suite,
                        workload=workload.name,
                        seed=seed,
                        events=events[mode],
                        elided=elided[mode],
                        seconds=best[mode] or 0.0,
                    )
                )
    summaries = {}
    for mode, value in mode_values.items():
        summary = summarize(cells[mode])
        summary["fast_path_mode"] = _fast_path_mode(value)
        summaries[mode] = summary
    return summaries


# ---------------------------------------------------------------------------
# Replay equivalence: fast path on vs off must be bit-identical.
# ---------------------------------------------------------------------------


def _result_fingerprint(result) -> dict:
    """The detection output that must be invariant under the fast path."""
    return {
        "status": result.status,
        "races": result.races,
        "race_types": sorted(str(t) for t in result.race_types),
        "race_sites": list(result.race_sites),
        "native_time": result.native_time,
        "total_time": result.total_time,
        "breakdown": result.breakdown,
    }


def equivalence_check(workloads) -> dict:
    """Replay each workload's trace under fast-path-on and -off detectors.

    Returns ``{"checked": N, "identical": bool, "mismatches": [...]}``.
    All three fast-path modes (``"auto"``, on, off) are replayed; races,
    race types and the Figure 13 cycle breakdowns must be exactly equal
    — the fast path may only change wall-clock time.
    """
    from repro.engine.replay import capture_workload, replay_workload

    mismatches: List[str] = []
    for workload in workloads:
        trace = capture_workload(workload)
        results = {
            mode: replay_workload(
                trace,
                lambda m=mode: IGuard(config=_detector_config(m)),
                workload.name,
            )
            for mode in ("auto", True, False)
        }
        reference = _result_fingerprint(results["auto"])
        if any(
            _result_fingerprint(result) != reference
            for result in results.values()
        ):
            mismatches.append(workload.name)
    return {
        "checked": len(list(workloads)),
        "identical": not mismatches,
        "mismatches": mismatches,
    }


# ---------------------------------------------------------------------------
# Shard scaling: events/sec of the in-process sharded replay driver.
# ---------------------------------------------------------------------------

#: Shard counts the scaling measurement sweeps.
SHARD_COUNTS = (1, 2, 4, 8)


def measure_shard_scaling(
    workloads,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    repeats: int = 1,
    seeds_limit: int = 1,
) -> dict:
    """Measure replay throughput at each shard count over captured traces.

    ``shards=1`` replays through the standard event-bus pipeline (what a
    serial run costs today); ``shards>1`` uses
    :func:`repro.core.sharding.replay_trace_sharded`, the in-process
    sharded driver whose per-shard queues drain through the tight
    ``check_run`` loop.  Race sites are compared across all counts — the
    sharded driver's contract is identical detection output — and the
    speedup of each count over the 1-shard pipeline is reported.
    """
    from repro.core.sharding import replay_trace_sharded
    from repro.engine.replay import capture_workload, replay

    totals = {
        n: {"events": 0, "seconds": 0.0, "routed": None, "queue_depth": 0}
        for n in shard_counts
    }
    sites_by_count: Dict[int, Dict[str, str]] = {n: {} for n in shard_counts}
    for workload in workloads:
        trace = capture_workload(workload)
        streams = [(seed, list(events)) for seed, events in trace.runs()]
        if seeds_limit:
            streams = streams[:seeds_limit]
        for _seed, events in streams:
            for count in shard_counts:
                best: Optional[float] = None
                cell_events = 0
                tool = None
                for _ in range(max(1, repeats)):
                    if count == 1:
                        tool = IGuard()
                        started = time.perf_counter()
                        replay(events, tools=[tool])
                        elapsed = time.perf_counter() - started
                        cell_events = sum(
                            s.accesses_checked + s.accesses_coalesced
                            for s in tool.stats
                        )
                    else:
                        sharded = replay_trace_sharded(events, shards=count)
                        tool = sharded.tool
                        elapsed = sharded.seconds
                        cell_events = sharded.events
                    best = elapsed if best is None else min(best, elapsed)
                bucket = totals[count]
                bucket["events"] += cell_events
                bucket["seconds"] += best or 0.0
                if count > 1:
                    # Routing forensics: how evenly the granule hash
                    # spread checked events over shards, and how deep a
                    # single shard's queue ever got before a drain.
                    routed = getattr(tool, "shard_routed_total", None)
                    if routed is not None:
                        if bucket["routed"] is None:
                            bucket["routed"] = [0] * count
                        for shard, routed_count in enumerate(routed):
                            bucket["routed"][shard] += routed_count
                    bucket["queue_depth"] = max(
                        bucket["queue_depth"],
                        getattr(tool, "queue_depth_max", 0),
                    )
                for ip, race_type in tool.races.sites():
                    sites_by_count[count].setdefault(ip, str(race_type))

    reference = sites_by_count[shard_counts[0]]
    identical = all(sites_by_count[n] == reference for n in shard_counts)
    per_count = {}
    for count in shard_counts:
        bucket = totals[count]
        entry = {
            "events": bucket["events"],
            "seconds": round(bucket["seconds"], 4),
            "events_per_sec": round(
                bucket["events"] / bucket["seconds"]
                if bucket["seconds"]
                else 0.0,
                1,
            ),
        }
        if bucket["routed"] is not None:
            routed = bucket["routed"]
            mean = sum(routed) / len(routed) if routed else 0.0
            entry["routed_per_shard"] = routed
            entry["imbalance"] = (
                round(max(routed) / mean, 3) if mean else None
            )
            entry["max_queue_depth"] = bucket["queue_depth"]
        per_count[str(count)] = entry
    base_eps = per_count[str(shard_counts[0])]["events_per_sec"]
    speedup = {
        str(count): (
            round(per_count[str(count)]["events_per_sec"] / base_eps, 2)
            if base_eps
            else None
        )
        for count in shard_counts
    }
    return {
        "shard_counts": list(shard_counts),
        "per_count": per_count,
        "speedup_vs_serial": speedup,
        "identical_sites": identical,
    }


# ---------------------------------------------------------------------------
# Trace throughput: JSONL vs the columnar container, decode and end-to-end.
# ---------------------------------------------------------------------------


def measure_trace_throughput(
    workloads, shards: int = 4, repeats: int = 1
) -> dict:
    """Measure trace decode and replay throughput in both container formats.

    Captures a one-seed trace per workload and saves it as both JSONL and
    columnar (``.ctr``), then times:

    - **decode** — stream the file back into event objects and discard
      them (``repro.engine.trace.stream_events``), isolating the codec;
    - **replay** — file to race report.  ``jsonl_bus`` is the pre-existing
      pipeline (``Trace.load`` + serial event-bus replay), ``jsonl_batched``
      loads eagerly and feeds the batched sharded drain, and ``columnar``
      streams chunks straight into the drain with vectorized shard routing
      (:func:`repro.core.sharding.replay_columnar_sharded`), never holding
      the whole trace in memory.

    Race sites must be identical across all three replay paths; the
    headline ``replay_speedup`` is columnar over ``jsonl_bus``.
    """
    import os
    import tempfile

    from repro.core.sharding import (
        replay_columnar_sharded,
        replay_trace_sharded,
    )
    from repro.engine.replay import capture_workload, replay
    from repro.engine.trace import Trace, stream_events

    decode = {
        fmt: {"events": 0, "seconds": 0.0} for fmt in ("jsonl", "columnar")
    }
    replay_paths = ("jsonl_bus", "jsonl_batched", "columnar")
    replays = {p: {"events": 0, "seconds": 0.0} for p in replay_paths}
    sites_by_path: Dict[str, Dict[str, str]] = {p: {} for p in replay_paths}
    with tempfile.TemporaryDirectory() as tmp:
        for workload in workloads:
            trace = capture_workload(workload, seeds=workload.seeds[:1])
            paths = {
                "jsonl": os.path.join(tmp, f"{workload.name}.jsonl"),
                "columnar": os.path.join(tmp, f"{workload.name}.ctr"),
            }
            for path in paths.values():
                trace.save(path)

            for fmt, path in paths.items():
                best: Optional[float] = None
                count = 0
                for _ in range(max(1, repeats)):
                    started = time.perf_counter()
                    count = sum(1 for _ in stream_events(path))
                    elapsed = time.perf_counter() - started
                    best = elapsed if best is None else min(best, elapsed)
                decode[fmt]["events"] += count
                decode[fmt]["seconds"] += best or 0.0

            for name in replay_paths:
                best = None
                cell_events = 0
                tool = None
                for _ in range(max(1, repeats)):
                    if name == "jsonl_bus":
                        started = time.perf_counter()
                        loaded = Trace.load(paths["jsonl"])
                        tool = IGuard()
                        replay(loaded.events, tools=[tool])
                        elapsed = time.perf_counter() - started
                        cell_events = sum(
                            s.accesses_checked + s.accesses_coalesced
                            for s in tool.stats
                        )
                    elif name == "jsonl_batched":
                        started = time.perf_counter()
                        loaded = Trace.load(paths["jsonl"])
                        sharded = replay_trace_sharded(
                            loaded.events, shards=shards
                        )
                        elapsed = time.perf_counter() - started
                        tool = sharded.tool
                        cell_events = sharded.events
                    else:
                        started = time.perf_counter()
                        sharded = replay_columnar_sharded(
                            paths["columnar"], shards=shards
                        )
                        elapsed = time.perf_counter() - started
                        tool = sharded.tool
                        cell_events = sharded.events
                    best = elapsed if best is None else min(best, elapsed)
                replays[name]["events"] += cell_events
                replays[name]["seconds"] += best or 0.0
                for ip, race_type in tool.races.sites():
                    sites_by_path[name].setdefault(ip, str(race_type))

    def _rates(bucket):
        return {
            "events": bucket["events"],
            "seconds": round(bucket["seconds"], 4),
            "events_per_sec": round(
                bucket["events"] / bucket["seconds"]
                if bucket["seconds"]
                else 0.0,
                1,
            ),
        }

    decode_out = {fmt: _rates(bucket) for fmt, bucket in decode.items()}
    replay_out = {name: _rates(bucket) for name, bucket in replays.items()}
    jsonl_decode = decode_out["jsonl"]["events_per_sec"]
    bus_eps = replay_out["jsonl_bus"]["events_per_sec"]
    reference = sites_by_path["jsonl_bus"]
    return {
        "shards": shards,
        "decode": decode_out,
        "decode_speedup": (
            round(decode_out["columnar"]["events_per_sec"] / jsonl_decode, 2)
            if jsonl_decode
            else None
        ),
        "replay": replay_out,
        "replay_speedup": (
            round(replay_out["columnar"]["events_per_sec"] / bus_eps, 2)
            if bus_eps
            else None
        ),
        "identical_sites": all(
            sites_by_path[name] == reference for name in replay_paths
        ),
    }


# ---------------------------------------------------------------------------
# Observability overhead: what does the flight recorder itself cost?
# ---------------------------------------------------------------------------


#: Sampling interval for the telemetry on-cost measurement: aggressive
#: (20 Hz vs the 1 Hz default) so the measured number is an upper bound.
SAMPLER_BENCH_INTERVAL = 0.05


def measure_obs_overhead(workloads, repeats: int = 1, seeds_limit: int = 1) -> dict:
    """Measure the observability stack's own wall-clock cost, per layer.

    Three measurements of the fast-path basket over one seed per
    workload: metrics registry **disabled**, metrics **enabled**, and
    metrics enabled **with the telemetry sampler running** at an
    aggressive interval (:data:`SAMPLER_BENCH_INTERVAL`, an upper bound
    on the default 1 Hz cost).  Each layer's overhead is reported as a
    separate percentage, so instrumented numbers are never compared
    against uninstrumented baselines by accident.

    ``telemetry_off_overhead_pct`` is reported as the structural 0.0 it
    is: telemetry is a pure reader — no detection-path call site knows
    the sampler exists, so with the sampler not running there is nothing
    to measure (the only off-cost anywhere is the executor's single
    ``HEARTBEATS.enabled`` boolean test per cell assignment).

    Restores the registry's enabled state afterwards.
    """
    from repro.obs.telemetry import TelemetrySampler

    was_enabled = obs_metrics.metrics_enabled()
    try:
        obs_metrics.set_enabled(False)
        disabled = run_mode(
            workloads, fast_path="auto", repeats=repeats, seeds_limit=seeds_limit
        )
        obs_metrics.set_enabled(True)
        enabled = run_mode(
            workloads, fast_path="auto", repeats=repeats, seeds_limit=seeds_limit
        )
        sampler = TelemetrySampler(interval=SAMPLER_BENCH_INTERVAL)
        sampler.start()
        try:
            sampled = run_mode(
                workloads, fast_path="auto", repeats=repeats,
                seeds_limit=seeds_limit,
            )
        finally:
            sampler.stop()
    finally:
        obs_metrics.set_enabled(was_enabled)
    off_eps = disabled["events_per_sec"]
    on_eps = enabled["events_per_sec"]
    sampler_eps = sampled["events_per_sec"]
    return {
        "disabled_events_per_sec": off_eps,
        "enabled_events_per_sec": on_eps,
        "overhead_pct": (
            round((off_eps / on_eps - 1.0) * 100.0, 1) if on_eps else None
        ),
        "telemetry_off_overhead_pct": 0.0,
        "sampler_events_per_sec": sampler_eps,
        "sampler_interval_s": SAMPLER_BENCH_INTERVAL,
        "sampler_overhead_pct": (
            round((on_eps / sampler_eps - 1.0) * 100.0, 1)
            if sampler_eps
            else None
        ),
        "sampler_ticks": len(sampler.samples()) + sampler.dropped,
    }


# ---------------------------------------------------------------------------
# Static check pruning: throughput with the analyzer's safe-site hints.
# ---------------------------------------------------------------------------


def _prune_config() -> IGuardConfig:
    """The default config with static check pruning on.

    Degrades gracefully on checkouts whose ``IGuardConfig`` predates the
    knob, mirroring :func:`_detector_config`.
    """
    try:
        return replace(DEFAULT_CONFIG, static_prune=True)
    except TypeError:
        return DEFAULT_CONFIG


def _prune_cell_once(workload, seed: int, config: IGuardConfig):
    """One timed run of a cell; returns (seconds, events, pruned, sites).

    ``events`` counts checked + coalesced + pruned accesses so both
    modes report the same totals: pruning reroutes an access onto the
    record-only path, it never drops one.
    """
    device = Device(SIM_GPU)
    tool = device.add_tool(IGuard(config=config))
    started = time.perf_counter()
    try:
        workload.run(device, seed)
    except (DeadlockError, TimeoutError_):
        pass
    elapsed = time.perf_counter() - started
    checked = sum(
        s.accesses_checked + s.accesses_coalesced for s in tool.stats
    )
    pruned = sum(getattr(s, "accesses_pruned", 0) for s in tool.stats)
    sites = sorted((str(ip), str(t)) for ip, t in tool.races.sites())
    return elapsed, checked + pruned, pruned, sites


def measure_static_prune(
    workloads, repeats: int = 1, seeds_limit: int = 1
) -> dict:
    """Measure detection throughput with static check pruning off vs on.

    Runs each (workload, seed) cell under the default config and under
    ``static_prune=True`` (the static analyzer's safe-site hints route
    provably race-free instruction sites onto the record-only path,
    skipping the Table 2 checks).  The two modes run interleaved per
    cell after one untimed priming run — the same debiasing scheme as
    :func:`run_modes` — with keep-fastest over ``repeats``.

    Race sites are compared per cell: the pruning contract is
    byte-identical detection output, so any divergence is reported under
    ``mismatches`` and fails the bench (exit 3).  ``fraction_pruned`` is
    the share of on-mode accesses the hints elided.
    """
    off_config = DEFAULT_CONFIG
    on_config = _prune_config()
    totals = {
        mode: {"events": 0, "seconds": 0.0, "pruned": 0}
        for mode in ("off", "on")
    }
    mismatches: List[str] = []
    for workload in workloads:
        seeds = workload.seeds[:seeds_limit] if seeds_limit else workload.seeds
        for seed in seeds:
            # Priming runs for both modes: the off run faults pages and
            # warms caches like run_modes' priming; the on run also
            # populates the process-wide extraction cache, so the timed
            # on-mode measures the steady state (hint lookup), not the
            # one-time per-kernel analysis cost.
            _prune_cell_once(workload, seed, off_config)
            _prune_cell_once(workload, seed, on_config)
            best: Dict[str, Optional[float]] = {"off": None, "on": None}
            cell: Dict[str, tuple] = {}
            for _ in range(max(1, repeats)):
                for mode, config in (("off", off_config), ("on", on_config)):
                    elapsed, events, pruned, sites = _prune_cell_once(
                        workload, seed, config
                    )
                    cell[mode] = (events, pruned, sites)
                    best[mode] = (
                        elapsed
                        if best[mode] is None
                        else min(best[mode], elapsed)
                    )
            for mode in ("off", "on"):
                events, pruned, _sites = cell[mode]
                totals[mode]["events"] += events
                totals[mode]["seconds"] += best[mode] or 0.0
                totals[mode]["pruned"] += pruned
            if cell["off"][2] != cell["on"][2]:
                mismatches.append(f"{workload.name}/{seed}")
    out = {}
    for mode in ("off", "on"):
        bucket = totals[mode]
        out[mode] = {
            "events": bucket["events"],
            "seconds": round(bucket["seconds"], 4),
            "events_per_sec": round(
                bucket["events"] / bucket["seconds"]
                if bucket["seconds"]
                else 0.0,
                1,
            ),
            "accesses_pruned": bucket["pruned"],
        }
    off_eps = out["off"]["events_per_sec"]
    on_eps = out["on"]["events_per_sec"]
    on_events = out["on"]["events"]
    return {
        "off": out["off"],
        "on": out["on"],
        "speedup": round(on_eps / off_eps, 2) if off_eps else None,
        "fraction_pruned": round(
            out["on"]["accesses_pruned"] / on_events if on_events else 0.0, 4
        ),
        "identical_sites": not mismatches,
        "mismatches": mismatches,
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def basket(smoke: bool = False):
    """The measured workloads: the Table 4 racy basket (or its smoke cut)."""
    workloads = racy_workloads()
    if smoke:
        workloads = [w for w in workloads if w.name in SMOKE_BASKET]
    return workloads


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench",
        description="Wall-clock events/sec benchmark over the table4 basket.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small basket for CI ({', '.join(SMOKE_BASKET)})",
    )
    parser.add_argument(
        "--modes", default="fast,slow",
        help="comma-separated fast-path modes to measure (fast, slow)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per cell, fastest kept (default 1)",
    )
    parser.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="limit each workload to its first N pinned seeds",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the results JSON here (default: stdout only)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline JSON; exit 2 on a >30%% "
             "events/sec regression",
    )
    parser.add_argument(
        "--embed-baseline", default=None, metavar="PATH",
        help="embed a previously measured baseline JSON under "
             "'pre_pr_baseline' and report the speedup against it",
    )
    parser.add_argument(
        "--no-equivalence", action="store_true",
        help="skip the fast-vs-slow replay equivalence check",
    )
    parser.add_argument(
        "--no-shard-scaling", action="store_true",
        help="skip the sharded-replay throughput sweep "
             f"(shards in {{{', '.join(map(str, SHARD_COUNTS))}}})",
    )
    parser.add_argument(
        "--no-trace-throughput", action="store_true",
        help="skip the JSONL-vs-columnar trace decode/replay measurement",
    )
    parser.add_argument(
        "--no-static-prune", action="store_true",
        help="skip the static check-pruning off-vs-on measurement",
    )
    parser.add_argument(
        "--attribution", action="store_true",
        help="run the per-phase sampling profiler and embed its self-time "
             "table under 'attribution' in the results JSON (opt-in so "
             "profiler overhead never pollutes the timed numbers)",
    )
    parser.add_argument(
        "--flamegraph-out", default=None, metavar="PATH",
        help="with --attribution: write collapsed stacks here "
             "(flamegraph.pl / speedscope input)",
    )
    add_observability_args(parser)
    args = parser.parse_args(argv)
    if args.flamegraph_out and not args.attribution:
        parser.error("--flamegraph-out requires --attribution")
    begin_observability(args)
    logger = get_logger("bench")

    from repro.core.sharding import default_shards
    from repro.obs.log import log_run_config

    log_run_config(
        backend="iguard",
        shards=default_shards(),
        workers=1,
        fast_path=DEFAULT_CONFIG.fast_path,
        logger=logger,
    )

    workloads = basket(smoke=args.smoke)
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    unknown = [m for m in modes if m not in ("fast", "slow")]
    if unknown:
        parser.error(f"unknown mode(s): {', '.join(unknown)}")

    result = {
        "schema": 3,
        "harness": "repro.experiments.bench",
        "basket": "table4-racy-smoke" if args.smoke else "table4-racy",
        "workloads": [w.name for w in workloads],
        "repeats": args.repeats,
        "python": platform.python_version(),
        "fast_path_default": _fast_path_mode(DEFAULT_CONFIG.fast_path),
        "modes": {},
    }
    # "fast" measures the shipping default ("auto": per-kernel adaptive
    # elision); "slow" forces the bookkeeping off.  The modes run
    # interleaved per cell so the fast/slow ratio is unbiased by process
    # warm-up order.
    mode_values = {m: ("auto" if m == "fast" else False) for m in modes}
    if args.attribution:
        obs_profiler.start_profiler()
    started = time.perf_counter()
    with obs_profiler.phase("bench:modes"):
        summaries = run_modes(
            workloads, mode_values, repeats=args.repeats, seeds_limit=args.seeds
        )
    wall = round(time.perf_counter() - started, 2)
    for mode in modes:
        summary = summaries[mode]
        summary["wall_seconds"] = wall
        result["modes"][mode] = summary
        output(
            f"[{mode}] {summary['events']} events in {summary['seconds']}s "
            f"-> {summary['events_per_sec']:.0f} events/sec "
            f"(p50 {summary['p50_us_per_event']}us, "
            f"p95 {summary['p95_us_per_event']}us, "
            f"elision {summary['elision_rate']:.1%})"
        )
    if "fast" in result["modes"] and "slow" in result["modes"]:
        slow = result["modes"]["slow"]["events_per_sec"]
        fast = result["modes"]["fast"]["events_per_sec"]
        result["fast_over_slow"] = round(fast / slow, 2) if slow else None
        output(f"fast path speedup over fast-path-off: {result['fast_over_slow']}x")

    if obs_metrics.metrics_enabled():
        # The flight recorder's own cost, reported as a separate number so
        # instrumented runs are never compared against uninstrumented
        # baselines by accident.
        with obs_profiler.phase("bench:obs_overhead"):
            result["obs_overhead"] = measure_obs_overhead(
                workloads, repeats=args.repeats
            )
        overhead = result["obs_overhead"]
        output(
            f"observability overhead: {overhead['overhead_pct']}% "
            f"({overhead['disabled_events_per_sec']:.0f} -> "
            f"{overhead['enabled_events_per_sec']:.0f} events/sec "
            f"with metrics on)"
        )
        output(
            f"telemetry overhead: {overhead['telemetry_off_overhead_pct']}% "
            f"with the sampler off (pure reader, no hot-path hooks); "
            f"sampler on-cost at {overhead['sampler_interval_s']}s interval: "
            f"{overhead['sampler_overhead_pct']}% "
            f"({overhead['enabled_events_per_sec']:.0f} -> "
            f"{overhead['sampler_events_per_sec']:.0f} events/sec)"
        )

    if not args.no_equivalence:
        with obs_profiler.phase("bench:equivalence"):
            result["equivalence"] = equivalence_check(workloads)
        status = "identical" if result["equivalence"]["identical"] else "MISMATCH"
        output(f"replay equivalence (fast vs slow): {status}")

    if not args.no_shard_scaling:
        with obs_profiler.phase("bench:shard_scaling"):
            result["shard_scaling"] = measure_shard_scaling(
                workloads, repeats=args.repeats
            )
        scaling = result["shard_scaling"]
        line = ", ".join(
            f"{count}: {scaling['per_count'][str(count)]['events_per_sec']:.0f}"
            f" ({scaling['speedup_vs_serial'][str(count)]}x)"
            for count in scaling["shard_counts"]
        )
        sites = "identical" if scaling["identical_sites"] else "MISMATCH"
        output(f"shard scaling events/sec {{shards: eps (speedup)}}: {line}")
        output(f"shard scaling race sites across counts: {sites}")

    if not args.no_trace_throughput:
        with obs_profiler.phase("bench:trace_throughput"):
            result["trace_throughput"] = measure_trace_throughput(
                workloads, repeats=args.repeats
            )
        throughput = result["trace_throughput"]
        output(
            "trace decode events/sec: "
            f"jsonl {throughput['decode']['jsonl']['events_per_sec']:.0f}, "
            f"columnar {throughput['decode']['columnar']['events_per_sec']:.0f} "
            f"({throughput['decode_speedup']}x)"
        )
        output(
            "trace replay events/sec: "
            f"jsonl-bus {throughput['replay']['jsonl_bus']['events_per_sec']:.0f}, "
            "jsonl-batched "
            f"{throughput['replay']['jsonl_batched']['events_per_sec']:.0f}, "
            f"columnar {throughput['replay']['columnar']['events_per_sec']:.0f} "
            f"({throughput['replay_speedup']}x vs bus)"
        )
        sites = "identical" if throughput["identical_sites"] else "MISMATCH"
        output(f"trace replay race sites across formats: {sites}")

    if not args.no_static_prune:
        with obs_profiler.phase("bench:static_prune"):
            result["static_prune"] = measure_static_prune(
                workloads, repeats=args.repeats
            )
        prune = result["static_prune"]
        output(
            "static prune events/sec: "
            f"off {prune['off']['events_per_sec']:.0f}, "
            f"on {prune['on']['events_per_sec']:.0f} "
            f"({prune['speedup']}x, "
            f"{prune['fraction_pruned']:.1%} of accesses elided)"
        )
        sites = "identical" if prune["identical_sites"] else "MISMATCH"
        output(f"static prune race sites off vs on: {sites}")

    if args.embed_baseline:
        with open(args.embed_baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        result["pre_pr_baseline"] = baseline
        base_eps = _headline_events_per_sec(baseline)
        new_eps = _headline_events_per_sec(result)
        if base_eps:
            result["speedup_vs_pre_pr"] = round(new_eps / base_eps, 2)
            output(f"speedup vs pre-PR baseline: {result['speedup_vs_pre_pr']}x")

    exit_code = 0
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_eps = _headline_events_per_sec(baseline)
        new_eps = _headline_events_per_sec(result)
        floor = (1.0 - REGRESSION_TOLERANCE) * base_eps
        result["check"] = {
            "baseline_events_per_sec": base_eps,
            "measured_events_per_sec": new_eps,
            "floor": round(floor, 1),
            "passed": new_eps >= floor,
        }
        if new_eps < floor:
            logger.error(
                "REGRESSION: %.0f events/sec is below the %.0f floor "
                "(%.0f baseline - 30%%)", new_eps, floor, base_eps,
            )
            exit_code = 2
        else:
            output(
                f"regression check passed: {new_eps:.0f} >= {floor:.0f} "
                f"events/sec floor"
            )
    if not result.get("equivalence", {}).get("identical", True):
        logger.error("EQUIVALENCE FAILURE: fast path changed detection output")
        exit_code = 3
    if not result.get("shard_scaling", {}).get("identical_sites", True):
        logger.error(
            "SHARDING FAILURE: sharded replay changed detection output"
        )
        exit_code = 3
    if not result.get("trace_throughput", {}).get("identical_sites", True):
        logger.error(
            "FORMAT FAILURE: columnar replay changed detection output"
        )
        exit_code = 3
    if not result.get("static_prune", {}).get("identical_sites", True):
        logger.error(
            "PRUNING FAILURE: static check pruning changed detection output"
        )
        exit_code = 3
    fast_over_slow = result.get("fast_over_slow")
    if (
        fast_over_slow is not None
        and fast_over_slow < 1.0 - FAST_PATH_JITTER_ALLOWANCE
    ):
        # The adaptive fast path's whole contract: "auto" must never be
        # slower than fast-path-off, because below break-even it turns
        # the bookkeeping off.  A ratio under 1.0 beyond measurement
        # jitter means the warm-up or decision logic is costing more
        # than it saves.
        logger.error(
            "FAST PATH REGRESSION: auto mode is %.2fx fast-path-off "
            "(must be >= 1.0 beyond the %.0f%% jitter allowance)",
            fast_over_slow, FAST_PATH_JITTER_ALLOWANCE * 100,
        )
        exit_code = exit_code or 4

    if args.attribution:
        profiler = obs_profiler.stop_profiler()
        result["attribution"] = profiler.attribution()
        attribution = result["attribution"]
        output(
            f"attribution: {attribution['samples']} samples at "
            f"{attribution['interval_s'] * 1e3:.0f}ms over "
            f"{attribution['wall_seconds']:.1f}s wall"
        )
        for name, row in attribution["phases"].items():
            output(
                f"  {name}: {row['seconds']:.2f}s self "
                f"({row['share']:.1%}, {row['samples']} samples)"
            )
        if args.flamegraph_out:
            stacks = profiler.write_collapsed(args.flamegraph_out)
            output(
                f"wrote {stacks} collapsed stacks to {args.flamegraph_out}"
            )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=False)
            handle.write("\n")
        output(f"wrote {args.output}")
    finalize_observability(args)
    return exit_code


def _headline_events_per_sec(result: dict) -> float:
    """The headline metric of a results JSON: the fast mode's events/sec
    (falling back to whichever single mode was measured)."""
    modes = result.get("modes", {})
    for name in ("fast", "slow"):
        if name in modes:
            return float(modes[name].get("events_per_sec", 0.0))
    return 0.0


if __name__ == "__main__":
    sys.exit(main())
