"""Plain-text rendering helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_overhead(value: float) -> str:
    """Format a slowdown factor the way the paper labels its bars."""
    return f"{value:.1f}x"


def title(text: str) -> str:
    """A underlined section title."""
    return f"{text}\n{'=' * len(text)}"
