"""Table 1: feature and requirement matrix of GPU race detectors.

The paper's qualitative comparison.  Rather than hard-coding the matrix,
the rows for the detectors implemented in this repository (Barracuda,
CURD, ScoRD mode, iGUARD) are *probed*: tiny kernels exercising each
feature run under each detector, and the cell records whether the feature
was handled.  The rows for detectors that exist only as literature
(HaccRG, Simulee) are quoted from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import CURD, Barracuda, ScoRD
from repro.core import IGuard
from repro.errors import ReproError, UnsupportedFeatureError
from repro.experiments.reporting import render_table, title
from repro.gpu.arch import TEST_GPU
from repro.gpu.device import Device
from repro.gpu.instructions import (
    Scope,
    atomic_add,
    fence,
    load,
    store,
    syncwarp,
)
from repro.obs.log import output
from repro.workloads.patterns import signal, wait_for

FEATURES = ["Sc. fence", "Sc. atomic", "ITS", "CG"]

#: Literature-only rows, quoted from the paper's Table 1.
LITERATURE_ROWS = {
    "Simulee": {
        "Sc. fence": "No", "Sc. atomic": "No", "ITS": "No", "CG": "No",
        "Perf. overhead": "Med", "Needs recompile": "Yes", "Extra H/W": "No",
    },
    "HaccRG": {
        "Sc. fence": "No", "Sc. atomic": "No", "ITS": "No", "CG": "No",
        "Perf. overhead": "Low", "Needs recompile": "No", "Extra H/W": "Yes",
    },
}

STATIC_ATTRIBUTES = {
    "Barracuda": {"Perf. overhead": "High", "Needs recompile": "Yes", "Extra H/W": "No"},
    "CURD": {"Perf. overhead": "Med*", "Needs recompile": "Yes", "Extra H/W": "No"},
    "ScoRD": {"Perf. overhead": "Low", "Needs recompile": "No", "Extra H/W": "Yes"},
    "iGUARD": {"Perf. overhead": "Med", "Needs recompile": "No", "Extra H/W": "No"},
}


def _scoped_fence_kernel(ctx, data, flags, sink):
    # Producer stores and publishes with a *block*-scope fence; consumer
    # is in another block: a scoped-fence race a capable detector reports.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield store(data, 0, 1)
        yield fence(Scope.BLOCK)
        yield atomic_add(flags, 0, 1)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        v = yield load(data, 0)
        yield store(sink, 0, v)


def _scoped_atomic_kernel(ctx, data, flags, sink):
    # data[0] doubles as the insufficiently-scoped counter.
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(data, 0, 1, scope=Scope.BLOCK)
        yield from signal(flags, 0)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        v = yield load(data, 0)
        yield store(sink, 0, v)


def _its_kernel(ctx, data, flags, sink):
    # Missing __syncwarp between lanes of one warp (Figure 2's shape).
    if ctx.warp_id == 0 and ctx.lane == 1:
        yield store(data, 0, 7)
        yield from signal(flags, 0)
    if ctx.warp_id == 0 and ctx.lane == 0:
        yield from wait_for(flags, 0)
        v = yield load(data, 0)
        yield store(sink, 0, v)
    yield syncwarp()


def _cg_kernel(ctx, data, flags, sink):
    # Cooperative Groups composes everything: intra-block phases use
    # block-scope atomics, tiles hand data across lanes under ITS, and a
    # grid-level sync crosses blocks.  Full CG support means catching BOTH
    # seeded races below (the paper: "none detect races due to CG, since
    # one needs to fully support atomics, fences, and ITS").
    if ctx.block_id == 0 and ctx.tid_in_block == 0:
        yield atomic_add(flags, 1, 0, scope=Scope.BLOCK)  # intra-block phase
    # Race 1 (ITS): a tile handoff with no tile.sync().
    if ctx.warp_id == 0 and ctx.lane == 1:
        yield store(data, 1, 5)
        yield from signal(flags, 0)
    if ctx.warp_id == 0 and ctx.lane == 0:
        yield from wait_for(flags, 0)
        v = yield load(data, 1)
        yield store(sink, 0, v)
    # Race 2 (DR): a non-leader write crossing the grid "sync" where only
    # the leader fenced (the Figure 10 pattern).
    if ctx.block_id == 0 and ctx.tid_in_block == 1:
        yield store(data, 0, 9)
        yield from signal(flags, 0)
    if ctx.block_id == 0 and ctx.tid_in_block == 2:
        yield fence(Scope.DEVICE)
        yield atomic_add(flags, 1, 1)
    if ctx.block_id == 1 and ctx.tid_in_block == 0:
        yield from wait_for(flags, 0)
        v = yield load(data, 0)
        yield store(sink, 1, v)


_PROBES = {
    "Sc. fence": (_scoped_fence_kernel, 1),
    "Sc. atomic": (_scoped_atomic_kernel, 1),
    "ITS": (_its_kernel, 1),
    "CG": (_cg_kernel, 2),
}


def _probe(tool_factory, kernel, needed_sites: int) -> str:
    """Run one feature probe; 'Yes' if all seeded races are reported."""
    device = Device(TEST_GPU)
    tool = device.add_tool(tool_factory())
    data = device.alloc("data", 2, init=0)
    flags = device.alloc("flags", 2, init=0)
    sink = device.alloc("sink", 2, init=0)
    try:
        for seed in (1, 2, 3, 4):
            device.launch(
                kernel, grid_dim=2, block_dim=8, args=(data, flags, sink), seed=seed
            )
    except UnsupportedFeatureError:
        return "No"
    except ReproError:
        return "No"
    return "Yes" if tool.races.num_sites >= needed_sites else "No"


def run() -> Dict[str, Dict[str, str]]:
    """Build the full matrix (probed + literature rows)."""
    matrix: Dict[str, Dict[str, str]] = {}
    for name, factory in (
        ("Barracuda", Barracuda),
        ("CURD", CURD),
        ("Simulee", None),
        ("HaccRG", None),
        ("ScoRD", ScoRD),
        ("iGUARD", IGuard),
    ):
        if factory is None:
            matrix[name] = dict(LITERATURE_ROWS[name])
            continue
        row = {
            feat: _probe(factory, kern, needed)
            for feat, (kern, needed) in _PROBES.items()
        }
        row.update(STATIC_ATTRIBUTES[name])
        matrix[name] = row
    return matrix


def render(matrix: Dict[str, Dict[str, str]]) -> str:
    attributes = FEATURES + ["Perf. overhead", "Needs recompile", "Extra H/W"]
    headers = ["Features / requirements"] + list(matrix.keys())
    rows = [[attr] + [matrix[d].get(attr, "-") for d in matrix] for attr in attributes]
    note = "*CURD's perf. is Med only for syncthreads-only kernels."
    return "\n".join(
        [title("Table 1: detector feature matrix"), render_table(headers, rows), note]
    )


def main() -> None:
    output(render(run()))


if __name__ == "__main__":
    main()
