"""Figure 13: breakdown of application runtime under detection.

Per benchmark suite (averaged over its workloads), the share of total
runtime contributed by: Native execution, NVBit binary analysis, Setup
(metadata allocation/pre-faulting), Instrumentation (injected-call
trampolines), Detection (race checks + metadata traffic), and Misc.
The paper's observations to reproduce: NVBit itself is often a key
contributor; the CG suite is dominated by Detection (lots of
synchronization, little compute); short-running CUB workloads are
dominated by Instrumentation-side costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import IGuard
from repro.experiments.reporting import render_table, title
from repro.instrument.timing import Category
from repro.obs.log import output
from repro.workloads import REGISTRY, run_workload

CATEGORIES = [c.value for c in Category]


@dataclass
class SuiteBreakdown:
    """Average runtime fractions for one suite."""

    suite: str
    fractions: Dict[str, float]


def run() -> List[SuiteBreakdown]:
    """Average the per-category runtime fractions per suite."""
    by_suite: Dict[str, List[Dict[str, float]]] = {}
    for workload in REGISTRY:
        result = run_workload(workload, IGuard, seeds=(1,))
        if not result.ran or not result.breakdown:
            continue
        total = sum(result.breakdown.values())
        if total <= 0:
            continue
        fractions = {k: v / total for k, v in result.breakdown.items()}
        by_suite.setdefault(workload.suite, []).append(fractions)
    rows = []
    for suite, entries in by_suite.items():
        averaged = {
            cat: sum(e.get(cat, 0.0) for e in entries) / len(entries)
            for cat in CATEGORIES
        }
        rows.append(SuiteBreakdown(suite=suite, fractions=averaged))
    return rows


def render(rows: List[SuiteBreakdown]) -> str:
    table = render_table(
        ["Suite"] + [c.capitalize() for c in CATEGORIES],
        [
            [r.suite] + [f"{100 * r.fractions.get(c, 0.0):.0f}%" for c in CATEGORIES]
            for r in rows
        ],
    )
    return "\n".join(
        [title("Figure 13: runtime breakdown with detection (per suite)"), table]
    )


def main() -> None:
    output(render(run()))


if __name__ == "__main__":
    main()
