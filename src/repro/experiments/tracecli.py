"""Trace tooling: ``iguard-experiments trace <capture|convert|info|replay>``.

The trace container subcommands, one surface for both on-disk formats
(JSONL and the columnar ``.ctr``/``.ctr.gz`` of
:mod:`repro.engine.coltrace` — the format is always chosen by the file
extension):

- ``capture`` — run a workload natively and record its event stream;
- ``convert`` — translate a trace between formats, either direction;
- ``info`` — summarize a trace file (format, events by type, runs);
- ``replay`` — run a detector over a trace file and print (or write as
  canonical JSON) the merged workload report.  ``--batched`` replays
  through the batch-sharded adapters instead of per-event dispatch;
  reports are byte-identical either way, and byte-identical across the
  two container formats, which is what CI's convert-replay-compare step
  enforces.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.obs import (
    add_observability_args,
    begin_observability,
    finalize_observability,
)
from repro.obs.log import get_logger, output


def _cmd_capture(args) -> int:
    from repro.engine.replay import capture_workload
    from repro.workloads.registry import get_workload

    workload = get_workload(args.workload)
    seeds = (
        tuple(int(s) for s in args.seeds.split(",")) if args.seeds else None
    )
    trace = capture_workload(workload, seeds=seeds)
    trace.save(args.out)
    output(f"captured {len(trace.events)} events to {args.out}")
    return 0


def _cmd_convert(args) -> int:
    from repro.engine.trace import Trace

    trace = Trace.load(args.src, salvage=args.salvage)
    trace.save(args.dst)
    suffix = ""
    if getattr(trace, "corruption", None) is not None:
        suffix = (
            f" (salvaged prefix; source corrupt: {trace.corruption.reason})"
        )
    output(f"converted {len(trace.events)} events to {args.dst}{suffix}")
    return 0


def _cmd_info(args) -> int:
    from repro.engine.coltrace import is_columnar_path
    from repro.engine.trace import RunMarker, Trace
    from repro.gpu.arch import GPUConfig

    trace = Trace.load(args.path, salvage=args.salvage)
    by_type: dict = {}
    runs = 0
    for event in trace.events:
        by_type[type(event).__name__] = by_type.get(type(event).__name__, 0) + 1
        if isinstance(event, RunMarker):
            runs += 1
    fmt = "columnar" if is_columnar_path(args.path) else "jsonl"
    output(f"{args.path}: {fmt}, {len(trace.events)} events, {runs} run(s)")
    for name in sorted(by_type):
        output(f"  {name}: {by_type[name]}")
    config = next(
        (e for e in trace.events if isinstance(e, GPUConfig)), None
    )
    if config is not None:
        output(f"  device: {config.name}")
    if getattr(trace, "corruption", None) is not None:
        output(f"  corruption: {trace.corruption.reason}")
    return 0


def _replay_factory(detector: str, shards: Optional[int], batched: bool):
    from repro.core.detector import IGuard
    from repro.workloads.runner import DetectorFactory

    if detector == "fasttrack":
        from repro.baselines import FastTrack

        if batched:
            from repro.core.sharding import BatchShardedFastTrack

            return DetectorFactory(BatchShardedFastTrack, shards=shards)
        return DetectorFactory(FastTrack, shards=shards)
    if batched:
        from repro.core.sharding import BatchShardedIGuard

        return DetectorFactory(BatchShardedIGuard, shards=shards)
    return DetectorFactory(IGuard, shards=shards)


def _cmd_replay(args) -> int:
    from repro.engine.replay import replay_workload
    from repro.engine.trace import Trace

    trace = Trace.load(args.path)
    factory = _replay_factory(args.detector, args.shards, args.batched)
    result = replay_workload(trace, factory, args.workload_name)
    output(
        f"{result.workload} under {result.detector}: "
        f"status={result.status} races={result.races} "
        f"overhead={result.overhead:.2f}x"
    )
    for ip, race_type in result.race_sites:
        output(f"  [{race_type}] {ip}")
    if args.report_json:
        # The runner's canonical report payload, verbatim: sharded,
        # batched, serial, JSONL and columnar replays of the same trace
        # all produce byte-identical files.
        payload = {
            "workload": result.workload,
            "detector": result.detector,
            "status": result.status,
            "races": result.races,
            "race_sites": [[ip, t] for ip, t in result.race_sites],
            "overhead": result.overhead,
            "native_time": result.native_time,
            "total_time": result.total_time,
            "breakdown": dict(sorted(result.breakdown.items())),
            "detail": result.detail,
        }
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="iguard-experiments trace",
        description="Capture, convert, inspect and replay trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    capture = sub.add_parser(
        "capture", help="record a workload's event stream to a trace file"
    )
    capture.add_argument(
        "--workload", required=True, metavar="NAME",
        help="a Table 4/5 workload name (see repro.workloads.REGISTRY)",
    )
    capture.add_argument(
        "--out", required=True, metavar="PATH",
        help="output trace (.jsonl[.gz] or .ctr[.gz], by extension)",
    )
    capture.add_argument(
        "--seeds", default=None, metavar="S1,S2",
        help="scheduler seeds (default: the workload's pinned seeds)",
    )

    convert = sub.add_parser(
        "convert", help="translate a trace between JSONL and columnar"
    )
    convert.add_argument("src", help="source trace file")
    convert.add_argument(
        "dst", help="destination trace file (format by extension)"
    )
    convert.add_argument(
        "--salvage", action="store_true",
        help="recover the longest valid prefix of a corrupt source",
    )

    info = sub.add_parser("info", help="summarize a trace file")
    info.add_argument("path", help="trace file to inspect")
    info.add_argument(
        "--salvage", action="store_true",
        help="summarize the recoverable prefix of a corrupt trace",
    )

    replay = sub.add_parser(
        "replay", help="run a detector over a trace file"
    )
    replay.add_argument("path", help="trace file to replay")
    replay.add_argument(
        "--detector", default="iguard", choices=["iguard", "fasttrack"],
    )
    replay.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition per-launch check work across N detector shards",
    )
    replay.add_argument(
        "--batched", action="store_true",
        help="drain per-shard queues in batches at synchronization "
             "boundaries instead of dispatching per event "
             "(byte-identical reports)",
    )
    replay.add_argument(
        "--workload-name", default="replay", metavar="NAME",
        help="workload name to stamp into the report",
    )
    replay.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the merged result as canonical JSON to PATH",
    )

    for command in (capture, convert, info, replay):
        add_observability_args(command)

    args = parser.parse_args(argv)
    begin_observability(args)
    get_logger("trace")  # configure the facade before any subcommand logs
    handler = {
        "capture": _cmd_capture,
        "convert": _cmd_convert,
        "info": _cmd_info,
        "replay": _cmd_replay,
    }[args.command]
    code = handler(args)
    finalize_observability(args)
    return code


if __name__ == "__main__":
    sys.exit(main())
