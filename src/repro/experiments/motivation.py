"""Section 1 motivation: the cost of scopes.

"On a recent NVIDIA Titan RTX GPU, the block-scope threadfence ... is 21x
faster than the device scope fence" — the whole reason scoped
synchronization exists, and the reason insufficient scopes are such a
tempting bug.  The microbenchmark times a fence-heavy kernel under both
scopes in the cost model and reports the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import render_table, title
from repro.gpu.arch import TEST_GPU
from repro.gpu.device import Device
from repro.gpu.instructions import Scope, fence, load, store
from repro.obs.log import output


def _fence_kernel(ctx, data, scope, iterations):
    # A fence-bound kernel, like the microbenchmarks GPU vendors use to
    # quote fence latencies: one producer store, then back-to-back fences.
    v = yield load(data, ctx.tid)
    yield store(data, ctx.tid, v + 1)
    for _ in range(iterations):
        yield fence(scope)


@dataclass
class Result:
    """Fence microbenchmark outcome."""

    block_time: float
    device_time: float

    @property
    def ratio(self) -> float:
        return self.device_time / self.block_time


def run(iterations: int = 16) -> Result:
    """Time the same kernel with block- vs device-scope fences."""
    times = {}
    for scope in (Scope.BLOCK, Scope.DEVICE):
        device = Device(TEST_GPU)
        data = device.alloc("data", 64, init=0)
        run_ = device.launch(
            _fence_kernel, grid_dim=2, block_dim=16,
            args=(data, scope, iterations), seed=1,
        )
        times[scope] = run_.timing.native_time
    return Result(block_time=times[Scope.BLOCK], device_time=times[Scope.DEVICE])


def render(result: Result) -> str:
    table = render_table(
        ["Fence scope", "Kernel time (model cycles)"],
        [
            ["block (__threadfence_block)", f"{result.block_time:.0f}"],
            ["device (__threadfence)", f"{result.device_time:.0f}"],
        ],
    )
    return "\n".join(
        [
            title("Motivation: scoped fence cost"),
            table,
            "",
            f"Device-scope fence kernel is {result.ratio:.1f}x slower "
            "(paper: the block-scope fence is 21x faster).",
        ]
    )


def main() -> None:
    output(render(run()))


if __name__ == "__main__":
    main()
