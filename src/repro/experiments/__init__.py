"""Experiment harness: regenerate every table and figure of the paper.

One module per artifact:

==========================  =============================================
module                      reproduces
==========================  =============================================
``repro.experiments.table1``    Table 1 — detector feature matrix
``repro.experiments.table4``    Table 4 — races detected (iGUARD vs Barracuda)
``repro.experiments.table5``    Table 5 — race-free applications (no false positives)
``repro.experiments.figure11``  Figure 11 — performance overheads (racy + race-free)
``repro.experiments.figure12``  Figure 12 — contention-optimization ablation
``repro.experiments.figure13``  Figure 13 — runtime breakdown per suite
``repro.experiments.figure14``  Figure 14 — memory-footprint scaling (UVM vs pinned)
``repro.experiments.motivation``  section 1 — scoped fence cost ratio
==========================  =============================================

Each module exposes ``run()`` returning structured results and ``render()``
producing the printable table; ``python -m repro.experiments.<name>`` (or
the ``iguard-experiments`` console script) prints it.
"""

from repro.experiments import (  # noqa: F401  (re-exported for discovery)
    figure11,
    figure12,
    figure13,
    figure14,
    motivation,
    table1,
    table4,
    table5,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "table4": table4,
    "table5": table5,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "motivation": motivation,
}
