"""Figure 14: overhead scaling with application memory footprint.

The paper scales d_reduce's input from 1 GB to 16 GB on the 24 GB Titan
RTX.  Barracuda pins half of device memory for its buffers plus shadow
space proportional to the input — beyond 8 GB it simply fails with
out-of-memory.  iGUARD allocates its 4x metadata through UVM: as long as
application + metadata fit, it pre-faults everything and overhead stays
flat; beyond that, metadata pages fault and migrate on demand and the
overhead *grows gracefully* instead of failing.

The simulated kernel touches points spread uniformly across the virtual
footprint (one strided element per touch), so the metadata page working
set scales with the footprint exactly as the real workload's does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines import Barracuda
from repro.core import IGuard
from repro.errors import OutOfMemoryError
from repro.experiments.reporting import fmt_overhead, render_table, title
from repro.gpu.arch import GiB
from repro.gpu.device import Device
from repro.gpu.instructions import atomic_add, compute, load
from repro.obs.log import output
from repro.workloads.base import SIM_GPU

FOOTPRINTS_GB = (1, 2, 4, 8, 16)
_GRID, _BLOCK = 8, 32
_POINTS_PER_THREAD = 8


def _scaling_kernel(ctx, big, partials, stride_words, points):
    """d_reduce over a strided sample of a huge array."""
    tid = ctx.tid
    total = 0
    for i in range(points):
        index = (tid * points + i) * stride_words
        v = yield load(big, index)
        yield compute(200)
        total += v
    yield atomic_add(partials, ctx.block_id, total)


@dataclass
class Point:
    """One footprint's pair of bars."""

    footprint_gb: int
    iguard: Optional[float]
    iguard_faults: int
    barracuda: Optional[float]  # None = out of memory


def _run_one(footprint_bytes: int, tool_factory) -> "tuple[Optional[float], int]":
    device = Device(SIM_GPU)
    tool = device.add_tool(tool_factory()) if tool_factory else None
    num_words = footprint_bytes // 4
    touches = _GRID * _BLOCK * _POINTS_PER_THREAD
    stride_words = max(1, num_words // touches)
    try:
        big = device.alloc("big", num_words, init=None)
    except OutOfMemoryError:
        return None, 0
    partials = device.alloc("partials", _GRID, init=0)
    try:
        run = device.launch(
            _scaling_kernel,
            grid_dim=_GRID,
            block_dim=_BLOCK,
            args=(big, partials, stride_words, _POINTS_PER_THREAD),
            seed=1,
        )
    except OutOfMemoryError:
        return None, 0
    faults = 0
    if tool is not None and getattr(tool, "stats", None):
        faults = tool.stats[-1].uvm_faults
    return run.overhead, faults


def run(footprints_gb=FOOTPRINTS_GB) -> List[Point]:
    """Sweep footprints under both detectors."""
    points = []
    for gb in footprints_gb:
        footprint = gb * GiB
        ig_overhead, faults = _run_one(footprint, IGuard)
        bar_overhead, _ = _run_one(footprint, Barracuda)
        points.append(
            Point(
                footprint_gb=gb,
                iguard=ig_overhead,
                iguard_faults=faults,
                barracuda=bar_overhead,
            )
        )
    return points


def render(points: List[Point]) -> str:
    rows = []
    for p in points:
        rows.append(
            [
                f"{p.footprint_gb} GB",
                fmt_overhead(p.iguard) if p.iguard else "Out of memory",
                p.iguard_faults,
                fmt_overhead(p.barracuda) if p.barracuda else "Out of memory",
            ]
        )
    table = render_table(
        ["Footprint", "iGUARD", "iGUARD page faults", "Barracuda"], rows
    )
    return "\n".join(
        [
            title("Figure 14: overhead vs application memory footprint (24 GB GPU)"),
            table,
            "",
            "Barracuda's pinned buffers make it fail outright past 8 GB; "
            "iGUARD's UVM-backed metadata degrades gracefully instead.",
        ]
    )


def main() -> None:
    output(render(run()))


if __name__ == "__main__":
    main()
