"""Figure 12: the metadata-contention optimizations ablation.

For the workloads that hammer shared variables, compare iGUARD's overhead
with and without the section 6.5 optimizations (opportunistic coalescing
of same-warp metadata accesses + dynamically-adjusted exponential
backoff).  The paper reports a 7x average improvement for this subset,
with conjugGMB dropping from 706x to 6x.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import geometric_mean
from typing import List

from repro.core import IGuard
from repro.core.config import DEFAULT_CONFIG
from repro.experiments.reporting import fmt_overhead, render_table, title
from repro.obs.log import output
from repro.workloads import REGISTRY, run_workload


@dataclass
class Row:
    """One workload's pair of bars."""

    name: str
    baseline: float  # no coalescing, no dynamic backoff
    optimized: float

    @property
    def improvement(self) -> float:
        return self.baseline / self.optimized


def contention_workloads():
    """The Figure 12 subset (marked in the registry)."""
    return [w for w in REGISTRY if w.contention_heavy]


def run() -> List[Row]:
    """Measure both configurations for every contention-heavy workload."""
    base_config = DEFAULT_CONFIG.without_optimizations()
    rows = []
    for workload in contention_workloads():
        optimized = run_workload(workload, lambda: IGuard(), seeds=(1,))
        baseline = run_workload(
            workload, lambda: IGuard(base_config), seeds=(1,)
        )
        rows.append(
            Row(
                name=workload.name,
                baseline=baseline.overhead,
                optimized=optimized.overhead,
            )
        )
    return rows


def mean_improvement(rows: List[Row]) -> float:
    """Geometric-mean speedup from the optimizations (paper: ~7x)."""
    return geometric_mean(r.improvement for r in rows)


def render(rows: List[Row]) -> str:
    table = render_table(
        ["Application", "Baseline", "With optimizations", "Improvement"],
        [
            [r.name, fmt_overhead(r.baseline), fmt_overhead(r.optimized),
             f"{r.improvement:.1f}x"]
            for r in rows
        ],
    )
    return "\n".join(
        [
            title("Figure 12: overhead with and without contention optimizations"),
            table,
            "",
            f"Geometric-mean improvement: {mean_improvement(rows):.1f}x "
            "(paper: ~7x average for this subset; conjugGMB 706x -> 6x)",
        ]
    )


def main() -> None:
    output(render(run()))


if __name__ == "__main__":
    main()
