"""Figure 11: performance overheads of iGUARD vs Barracuda (log scale).

Two panels, exactly as in the paper:

- **(a)** the applications *with* races (Table 4): Barracuda is
  "Unsupported" on most suites (scoped atomics, CG, multi-file
  libraries) and times out on interac;
- **(b)** the race-free applications (Table 5): here Barracuda runs on
  everything and the paper's averages live (Barracuda ~61x vs iGUARD
  ~4.2x; 15x gap headline).

The experiment prints each bar (slowdown over no detection) plus the
aggregate statistics the paper quotes.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from statistics import geometric_mean, mean
from typing import Dict, List, Optional

from repro.baselines import Barracuda
from repro.core import IGuard
from repro.experiments.reporting import fmt_overhead, render_table, title
from repro.obs.log import output
from repro.workloads import racefree_workloads, racy_workloads, run_suite


@dataclass
class Bar:
    """One pair of bars for one application."""

    suite: str
    name: str
    iguard: float
    barracuda: Optional[float]  # None = Unsupported / Timeout / OOM
    barracuda_status: str = "ok"


@dataclass
class Panel:
    """One sub-figure."""

    label: str
    bars: List[Bar] = field(default_factory=list)

    def iguard_mean(self) -> float:
        return mean(b.iguard for b in self.bars)

    def barracuda_mean(self) -> Optional[float]:
        ran = [b.barracuda for b in self.bars if b.barracuda is not None]
        return mean(ran) if ran else None

    def speedup_over_barracuda(self) -> Optional[float]:
        pairs = [(b.iguard, b.barracuda) for b in self.bars if b.barracuda]
        if not pairs:
            return None
        return geometric_mean(bar / ig for ig, bar in pairs)


def _measure(workloads, workers: int = 1) -> List[Bar]:
    requests = []
    for workload in workloads:
        requests.append((workload, IGuard, (1,)))
        requests.append((workload, Barracuda, (1,)))
    results = run_suite(requests, workers=workers)
    bars = []
    for index, workload in enumerate(workloads):
        ig = results[2 * index]
        bar = results[2 * index + 1]
        bars.append(
            Bar(
                suite=workload.suite,
                name=workload.name,
                iguard=ig.overhead,
                barracuda=bar.overhead if bar.ran else None,
                barracuda_status=bar.status,
            )
        )
    return bars


def run(workers: int = 1) -> Dict[str, Panel]:
    """Measure both panels."""
    return {
        "a": Panel(
            label="(a) applications with races",
            bars=_measure(racy_workloads(), workers=workers),
        ),
        "b": Panel(
            label="(b) applications without races",
            bars=_measure(racefree_workloads(), workers=workers),
        ),
    }


def render(panels: Dict[str, Panel]) -> str:
    sections = [title("Figure 11: performance overhead (slowdown over no detection)")]
    for panel in panels.values():
        rows = []
        for b in panel.bars:
            bar_cell = (
                fmt_overhead(b.barracuda)
                if b.barracuda is not None
                else b.barracuda_status.capitalize()
            )
            rows.append([b.suite, b.name, fmt_overhead(b.iguard), bar_cell])
        sections.append(panel.label)
        sections.append(
            render_table(["Suite", "Application", "iGUARD", "Barracuda"], rows)
        )
        stats = [f"iGUARD average: {fmt_overhead(panel.iguard_mean())}"]
        if panel.barracuda_mean() is not None:
            stats.append(
                f"Barracuda average (where it ran): "
                f"{fmt_overhead(panel.barracuda_mean())}"
            )
            stats.append(
                f"iGUARD speedup over Barracuda (geomean): "
                f"{panel.speedup_over_barracuda():.1f}x"
            )
        sections.append("; ".join(stats))
        sections.append("")
    return "\n".join(sections)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Figure 11: performance overheads"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the suite executor (default: 1)",
    )
    args = parser.parse_args(argv)
    output(render(run(workers=args.workers)))


if __name__ == "__main__":
    main()
