"""Table 5: applications without any reported races.

The false-positive check: iGUARD must stay silent on every race-free
workload ("iGUARD correctly reported 57 races ... without any false
positives").  The experiment runs each Table 5 application under iGUARD
over multiple scheduler seeds and reports any race found — the expected
output is an empty misreport list.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List

from repro.core import IGuard
from repro.experiments.reporting import render_table, title
from repro.obs.log import output
from repro.workloads import racefree_workloads, run_suite


@dataclass
class Row:
    """One Table 5 line."""

    suite: str
    name: str
    races: int
    status: str


def run(extra_seeds=(7, 11), workers: int = 1) -> List[Row]:
    """Run every race-free workload; extra seeds widen schedule coverage."""
    workloads = racefree_workloads()
    requests = [
        (workload, IGuard, tuple(workload.seeds) + tuple(extra_seeds))
        for workload in workloads
    ]
    results = run_suite(requests, workers=workers)
    return [
        Row(
            suite=workload.suite,
            name=workload.name,
            races=result.races,
            status=result.status,
        )
        for workload, result in zip(workloads, results)
    ]


def false_positives(rows: List[Row]) -> List[Row]:
    """Rows where iGUARD reported anything (should be empty)."""
    return [r for r in rows if r.races > 0]


def render(rows: List[Row]) -> str:
    table = render_table(
        ["Suite", "Application", "iGUARD races", "Status"],
        [[r.suite, r.name, r.races, r.status] for r in rows],
    )
    bad = false_positives(rows)
    verdict = (
        "No false positives." if not bad
        else f"FALSE POSITIVES in: {', '.join(r.name for r in bad)}"
    )
    return "\n".join(
        [title("Table 5: race-free applications"), table, "", verdict]
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Table 5: race-free applications"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the suite executor (default: 1)",
    )
    args = parser.parse_args(argv)
    output(render(run(workers=args.workers)))


if __name__ == "__main__":
    main()
