"""Machine-readable artifacts: export experiment results as JSON.

``iguard-experiments`` prints the paper-style tables for humans; this
module serializes the same results for scripts (plotting, regression
tracking across versions of the reproduction).  Every experiment's
``run()`` output is converted to plain dict/list structures.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any

from repro.experiments import ALL_EXPERIMENTS


def _plain(value: Any) -> Any:
    """Recursively convert experiment results to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(_plain(k)): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def export(name: str) -> Any:
    """Run one experiment and return its result as plain data."""
    module = ALL_EXPERIMENTS[name]
    return _plain(module.run())


def export_all() -> dict:
    """Run every experiment; returns ``{experiment name: result data}``."""
    return {name: export(name) for name in ALL_EXPERIMENTS}


def dump(path: str, names=None) -> dict:
    """Write selected experiments (default: all) to a JSON file."""
    names = list(names) if names else list(ALL_EXPERIMENTS)
    data = {name: export(name) for name in names}
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    return data
