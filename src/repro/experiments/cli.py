"""Command-line entry point: ``iguard-experiments [name ...]``.

Runs the requested experiments (default: all of them) and prints the
paper-style tables.  Available names: table1, table4, table5, figure11,
figure12, figure13, figure14, motivation.

Two non-experiment subcommands ride the same entry point:

- ``iguard-experiments explain <race-site>`` — race forensics: replay a
  recorded trace and reconstruct why a race was reported
  (:mod:`repro.obs.forensics`);
- ``iguard-experiments trace <capture|convert|info|replay>`` — trace
  container tooling for both on-disk formats, JSONL and columnar
  (:mod:`repro.experiments.tracecli`);
- ``iguard-experiments fuzz`` / ``iguard-experiments minimize`` — the
  differential fuzz campaign, triage-corpus replay, and ddmin
  re-minimization (:mod:`repro.faults.fuzz`);
- ``iguard-experiments lint <workload|--all>`` — static race analysis
  over workload kernels, with fix hints and a JSON report
  (:mod:`repro.analysis.lint`);
- the observability flags (``--log-level``, ``--metrics-out``,
  ``--trace-out``) apply to any experiment run.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.obs import (
    add_observability_args,
    begin_observability,
    finalize_observability,
)
from repro.obs.log import get_logger, output


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        # Forensics has its own argument surface; dispatch before the
        # experiment parser can reject its options.
        from repro.obs.forensics import main as explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "trace":
        # Trace capture/convert/info/replay, same early dispatch.
        from repro.experiments.tracecli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "fuzz":
        # Differential fuzz campaign / corpus replay, same early dispatch.
        from repro.faults.fuzz import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "minimize":
        # ddmin re-minimization of a triage-corpus entry.
        from repro.faults.fuzz import minimize_main

        return minimize_main(argv[1:])
    if argv and argv[0] == "lint":
        # Static race analysis over workload kernels.
        from repro.analysis.lint import main as lint_main

        return lint_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="iguard-experiments",
        description="Regenerate the iGUARD paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help=f"experiments to run (default: all); one of "
             f"{', '.join(ALL_EXPERIMENTS)}, or the 'explain'/'trace'/"
             f"'fuzz'/'lint' subcommands (see e.g. "
             f"'iguard-experiments lint --help')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for experiments whose suite executor "
             "supports parallel fan-out (default: 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="set IGUARD_SHARDS: every detector the experiments build "
             "partitions its per-launch check work across N shards "
             "(byte-identical tables for any N)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject worker faults via an IGUARD_CHAOS spec, e.g. "
             "'crash=0.25,hang=0.1,seed=11' (see repro.faults.chaos)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="hard per-cell timeout for the suite executor: kill and "
             "retry cells running longer than SEC seconds",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal completed suite cells to PATH (crash-safe resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve cells already journaled in --checkpoint instead of "
             "re-running them (byte-identical merged results)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        default=None,
        type=int,
        metavar="N",
        help="run under cProfile and print the top N functions by "
             "cumulative time after each experiment (default N: 25)",
    )
    add_observability_args(parser)
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    # Chaos/shards/timeout/checkpoint arm process-wide state the suite
    # executor and detector constructors consult, so no experiment driver
    # needs new parameters.
    if args.shards is not None:
        import os

        from repro.core import sharding

        os.environ[sharding.ENV_VAR] = str(args.shards)
    if args.chaos is not None:
        import os

        from repro.faults import chaos as chaos_module

        os.environ[chaos_module.ENV_VAR] = args.chaos
    if args.cell_timeout is not None:
        import os

        from repro.engine.parallel import CELL_TIMEOUT_ENV

        os.environ[CELL_TIMEOUT_ENV] = str(args.cell_timeout)
    if args.checkpoint:
        from repro.engine import checkpoint as ckpt

        ckpt.set_active(ckpt.CellJournal(args.checkpoint, resume=args.resume))
    begin_observability(args)
    logger = get_logger("cli")
    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in names:
        module = ALL_EXPERIMENTS[name]
        logger.debug("starting experiment %s", name)
        started = time.time()

        def run_experiment(module=module):
            # Experiment mains grew an argv parameter as they gained
            # flags; the rest keep their zero-argument signature.
            if "argv" in inspect.signature(module.main).parameters:
                module.main(["--workers", str(args.workers)])
            else:
                module.main()

        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            run_experiment()
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative")
            output(f"\n--- cProfile: {name} (top {args.profile}) ---")
            stats.print_stats(args.profile)
        else:
            run_experiment()
        # The completion line is part of the CLI's stdout contract
        # (tests and drivers grep for it), so it stays on the result
        # channel rather than the stderr log.
        output(f"\n[{name} completed in {time.time() - started:.1f}s]\n")
    finalize_observability(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
