"""Command-line entry point: ``iguard-experiments [name ...]``.

Runs the requested experiments (default: all of them) and prints the
paper-style tables.  Available names: table1, table4, table5, figure11,
figure12, figure13, figure14, motivation.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="iguard-experiments",
        description="Regenerate the iGUARD paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help=f"experiments to run (default: all); one of "
             f"{', '.join(ALL_EXPERIMENTS)}",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for experiments whose suite executor "
             "supports parallel fan-out (default: 1)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        default=None,
        type=int,
        metavar="N",
        help="run under cProfile and print the top N functions by "
             "cumulative time after each experiment (default N: 25)",
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in names:
        module = ALL_EXPERIMENTS[name]
        started = time.time()

        def run_experiment(module=module):
            # Experiment mains grew an argv parameter as they gained
            # flags; the rest keep their zero-argument signature.
            if "argv" in inspect.signature(module.main).parameters:
                module.main(["--workers", str(args.workers)])
            else:
                module.main()

        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            run_experiment()
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative")
            print(f"\n--- cProfile: {name} (top {args.profile}) ---")
            stats.print_stats(args.profile)
        else:
            run_experiment()
        print(f"\n[{name} completed in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
