"""Resource budgets for adversarial inputs (``IGUARD_MEM_BUDGET`` et al).

A fuzzed or hostile input must never be able to OOM the process: every
unbounded structure the event stream can grow — metadata tables, the
columnar string pool, shard queues — is capped by an operator-set byte
budget, degrading exactly like ``IGuardConfig.metadata_max_entries``
does (bounded recall loss, never a false positive, never an abort).

Environment knobs (all read per call so tests can monkeypatch):

``IGUARD_MEM_BUDGET``
    Total byte budget for detector metadata growth and the columnar
    writer's string-pool memo.  Accepts a plain byte count or a
    ``k``/``m``/``g`` suffix (``64m``).  Unset or ``0`` = unbounded
    (the historical behavior).
``IGUARD_QUEUE_CAP``
    Maximum events the batched sharded drivers may hold queued before
    forcing an early drain (backpressure: the producer does the work).
    Early drains are output-identical — runs are order-equivalent
    between sync mutations and deferred records re-sort at launch end.
``IGUARD_QUARANTINE``
    Maximum poison events absorbed per process before quarantine gives
    up and lets the exception abort the run (see
    :mod:`repro.faults.quarantine`).  ``0`` disables quarantine.
"""

from __future__ import annotations

import os
from typing import Optional

MEM_BUDGET_VAR = "IGUARD_MEM_BUDGET"
QUEUE_CAP_VAR = "IGUARD_QUEUE_CAP"
QUARANTINE_VAR = "IGUARD_QUARANTINE"

#: Default cap on queued events in the batched sharded drivers.  Far
#: above what any pinned workload queues between sync points, so the
#: default changes nothing observable — it only bounds adversarial
#: single-launch streams with no sync mutations at all.
DEFAULT_QUEUE_CAP = 1 << 16

#: Poison events absorbed before quarantine re-raises (fail loud once a
#: stream is *systematically* poisoned rather than carrying one bad
#: record).
DEFAULT_QUARANTINE_LIMIT = 64

#: Decoder hard ceilings, independent of any budget: one JSONL line and
#: one columnar numpy block.  Fuzzed headers declaring terabyte blocks
#: must die in the decoder, not in the allocator.
MAX_LINE_BYTES = 8 << 20
MAX_BLOCK_BYTES = 256 << 20
#: String-pool ceilings for the columnar reader (count and total bytes).
MAX_POOL_STRINGS = 1 << 22
MAX_POOL_BYTES = 256 << 20

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(spec: str) -> int:
    """Parse ``"1048576"`` / ``"64m"`` / ``"2g"`` into a byte count."""
    text = spec.strip().lower()
    scale = 1
    if text and text[-1] in _SUFFIXES:
        scale = _SUFFIXES[text[-1]]
        text = text[:-1]
    value = int(float(text)) * scale
    if value < 0:
        raise ValueError(f"byte budget cannot be negative: {spec!r}")
    return value


def mem_budget() -> Optional[int]:
    """The ``IGUARD_MEM_BUDGET`` byte budget, or None when unbounded."""
    spec = os.environ.get(MEM_BUDGET_VAR, "").strip()
    if not spec:
        return None
    try:
        value = parse_bytes(spec)
    except ValueError:
        return None
    return value or None


def queue_cap() -> int:
    """Pending-event cap for the batched sharded drivers."""
    spec = os.environ.get(QUEUE_CAP_VAR, "").strip()
    if not spec:
        return DEFAULT_QUEUE_CAP
    try:
        value = int(spec)
    except ValueError:
        return DEFAULT_QUEUE_CAP
    return value if value > 0 else DEFAULT_QUEUE_CAP


def quarantine_limit() -> int:
    """Poison events absorbed before quarantine re-raises (0 = off)."""
    spec = os.environ.get(QUARANTINE_VAR, "").strip()
    if not spec:
        return DEFAULT_QUARANTINE_LIMIT
    try:
        return max(0, int(spec))
    except ValueError:
        return DEFAULT_QUARANTINE_LIMIT


def line_limit() -> int:
    """Largest JSONL trace line the decoder will attempt to parse."""
    budget = mem_budget()
    return min(MAX_LINE_BYTES, budget) if budget else MAX_LINE_BYTES


def block_limit() -> int:
    """Largest columnar numpy block the decoder will allocate."""
    budget = mem_budget()
    return min(MAX_BLOCK_BYTES, budget) if budget else MAX_BLOCK_BYTES


def pool_byte_limit() -> int:
    """Largest total string-pool payload the columnar reader accepts."""
    budget = mem_budget()
    return min(MAX_POOL_BYTES, budget) if budget else MAX_POOL_BYTES
