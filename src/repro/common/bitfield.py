"""Packed bit-field structures.

iGUARD's memory metadata is a 16-byte record whose fields are packed into
two 64-bit words (paper, Figure 4).  To keep the reproduction bit-exact we
pack and unpack metadata through the same field layout instead of storing a
loose Python object.  :class:`BitStruct` describes a 64-bit word as an
ordered list of named :class:`BitField` ranges and converts between integers
and dictionaries of field values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class BitField:
    """A contiguous bit range ``[lo, hi]`` (inclusive) within a 64-bit word."""

    name: str
    hi: int
    lo: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi <= 63):
            raise ConfigError(f"bad bit range for {self.name}: [{self.hi}:{self.lo}]")

    @property
    def width(self) -> int:
        """Number of bits occupied by the field."""
        return self.hi - self.lo + 1

    @property
    def mask(self) -> int:
        """Mask of the field's bits, already shifted into word position."""
        return ((1 << self.width) - 1) << self.lo

    @property
    def max_value(self) -> int:
        """Largest value representable in the field."""
        return (1 << self.width) - 1

    def extract(self, word: int) -> int:
        """Read this field out of ``word``."""
        return (word >> self.lo) & ((1 << self.width) - 1)

    def insert(self, word: int, value: int) -> int:
        """Return ``word`` with this field replaced by ``value``.

        The value is truncated to the field width, which is exactly the
        wrap-around behaviour of iGUARD's narrow hardware-style counters
        (the paper discusses 6-8 bit counters wrapping in section 6.7).
        """
        value &= (1 << self.width) - 1
        return (word & ~self.mask) | (value << self.lo)


class BitStruct:
    """An ordered set of non-overlapping :class:`BitField` ranges in a word."""

    def __init__(self, name: str, fields: Iterable[BitField]):
        self.name = name
        self.fields: Tuple[BitField, ...] = tuple(fields)
        self._by_name: Dict[str, BitField] = {}
        used = 0
        for field in self.fields:
            if field.name in self._by_name:
                raise ConfigError(f"duplicate field {field.name} in {name}")
            if used & field.mask:
                raise ConfigError(f"overlapping field {field.name} in {name}")
            used |= field.mask
            self._by_name[field.name] = field

    def field(self, name: str) -> BitField:
        """Look up a field by name."""
        return self._by_name[name]

    def pack(self, **values: int) -> int:
        """Pack keyword field values into a 64-bit integer word."""
        word = 0
        for name, value in values.items():
            word = self._by_name[name].insert(word, value)
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Unpack a word into a ``{field name: value}`` dictionary."""
        return {f.name: f.extract(word) for f in self.fields}

    def get(self, word: int, name: str) -> int:
        """Extract a single named field from ``word``."""
        return self._by_name[name].extract(word)

    def set(self, word: int, name: str, value: int) -> int:
        """Return ``word`` with field ``name`` set to ``value`` (truncated)."""
        return self._by_name[name].insert(word, value)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"{f.name}[{f.hi}:{f.lo}]" for f in self.fields)
        return f"BitStruct({self.name}: {spans})"
