"""Packed bit-field structures.

iGUARD's memory metadata is a 16-byte record whose fields are packed into
two 64-bit words (paper, Figure 4).  To keep the reproduction bit-exact we
pack and unpack metadata through the same field layout instead of storing a
loose Python object.  :class:`BitStruct` describes a 64-bit word as an
ordered list of named :class:`BitField` ranges and converts between integers
and dictionaries of field values.

Two access paths share one layout description:

- the *reference* path (:meth:`BitStruct.pack` / :meth:`BitStruct.unpack`)
  walks fields one by one through dictionaries — readable, and the ground
  truth the property tests compare against;
- the *compiled* path (:attr:`BitStruct.encode` / :attr:`BitStruct.decode_all`
  plus :meth:`compile_getter` / :meth:`compile_setter` / :meth:`compile_decoder`)
  bakes every mask and shift into one ``eval``-built closure, so a whole
  word packs or unpacks in a single expression with zero per-field name
  lookups.  The hot metadata code in :mod:`repro.core.metadata` runs on
  the compiled path; both are equivalent bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class BitField:
    """A contiguous bit range ``[lo, hi]`` (inclusive) within a 64-bit word."""

    name: str
    hi: int
    lo: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi <= 63):
            raise ConfigError(f"bad bit range for {self.name}: [{self.hi}:{self.lo}]")

    @property
    def width(self) -> int:
        """Number of bits occupied by the field."""
        return self.hi - self.lo + 1

    @property
    def mask(self) -> int:
        """Mask of the field's bits, already shifted into word position."""
        return ((1 << self.width) - 1) << self.lo

    @property
    def max_value(self) -> int:
        """Largest value representable in the field."""
        return (1 << self.width) - 1

    def extract(self, word: int) -> int:
        """Read this field out of ``word``."""
        return (word >> self.lo) & ((1 << self.width) - 1)

    def insert(self, word: int, value: int) -> int:
        """Return ``word`` with this field replaced by ``value``.

        The value is truncated to the field width, which is exactly the
        wrap-around behaviour of iGUARD's narrow hardware-style counters
        (the paper discusses 6-8 bit counters wrapping in section 6.7).
        """
        value &= (1 << self.width) - 1
        return (word & ~self.mask) | (value << self.lo)


class BitStruct:
    """An ordered set of non-overlapping :class:`BitField` ranges in a word."""

    def __init__(self, name: str, fields: Iterable[BitField]):
        self.name = name
        self.fields: Tuple[BitField, ...] = tuple(fields)
        self._by_name: Dict[str, BitField] = {}
        used = 0
        for field in self.fields:
            if field.name in self._by_name:
                raise ConfigError(f"duplicate field {field.name} in {name}")
            if used & field.mask:
                raise ConfigError(f"overlapping field {field.name} in {name}")
            used |= field.mask
            self._by_name[field.name] = field
        #: Compiled whole-word codecs (equivalent to pack/unpack).
        self.encode: Callable[..., int] = self._compile_encoder()
        self.decode_all: Callable[[int], Tuple[int, ...]] = (
            self.compile_decoder(*(f.name for f in self.fields))
        )

    # -- compiled codecs -------------------------------------------------

    @staticmethod
    def _shifted(arg: str, field: BitField) -> str:
        """Source of ``(arg & width_mask) << lo`` with trivial shifts elided."""
        masked = f"({arg} & {field.max_value})"
        return f"{masked} << {field.lo}" if field.lo else masked

    @staticmethod
    def _extracted(field: BitField) -> str:
        """Source of ``(word >> lo) & width_mask`` with trivial shifts elided."""
        shifted = f"word >> {field.lo}" if field.lo else "word"
        return f"({shifted}) & {field.max_value}"

    def _compile_encoder(self) -> Callable[..., int]:
        """A closure packing every field (positionally, declaration order)
        into one word: ``encode(v0, v1, ...) == pack(name0=v0, ...)``."""
        if not self.fields:
            return lambda: 0
        args = ", ".join(f"v{i}" for i in range(len(self.fields)))
        body = " | ".join(
            f"({self._shifted(f'v{i}', field)})"
            for i, field in enumerate(self.fields)
        )
        return eval(f"lambda {args}: {body}", {"__builtins__": {}})

    def compile_decoder(self, *names: str) -> Callable[[int], Tuple[int, ...]]:
        """A closure extracting the named fields as one tuple.

        ``struct.decode_all(word)`` (all fields, declaration order) is the
        precompiled instance; subsets serve hot readers that want a few
        fields without dict building.
        """
        parts = ", ".join(self._extracted(self._by_name[n]) for n in names)
        if len(names) == 1:
            parts += ","
        return eval(f"lambda word: ({parts})", {"__builtins__": {}})

    def compile_getter(self, name: str) -> Callable[[int], int]:
        """A closure extracting one named field (compiled :meth:`get`)."""
        return eval(
            f"lambda word: {self._extracted(self._by_name[name])}",
            {"__builtins__": {}},
        )

    def compile_setter(self, *names: str) -> Callable[..., int]:
        """A closure overwriting the named fields in one expression.

        ``setter(word, v0, v1, ...)`` equals chaining :meth:`set` for each
        name in order (values truncated to field width, other bits kept).
        """
        fields = [self._by_name[n] for n in names]
        keep = (1 << 64) - 1
        for field in fields:
            keep &= ~field.mask
        args = ", ".join(f"v{i}" for i in range(len(fields)))
        body = " | ".join(
            [f"(word & {keep})"]
            + [f"({self._shifted(f'v{i}', field)})" for i, field in enumerate(fields)]
        )
        return eval(f"lambda word, {args}: {body}", {"__builtins__": {}})

    def field(self, name: str) -> BitField:
        """Look up a field by name."""
        return self._by_name[name]

    def pack(self, **values: int) -> int:
        """Pack keyword field values into a 64-bit integer word."""
        word = 0
        for name, value in values.items():
            word = self._by_name[name].insert(word, value)
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Unpack a word into a ``{field name: value}`` dictionary."""
        return {f.name: f.extract(word) for f in self.fields}

    def get(self, word: int, name: str) -> int:
        """Extract a single named field from ``word``."""
        return self._by_name[name].extract(word)

    def set(self, word: int, name: str, value: int) -> int:
        """Return ``word`` with field ``name`` set to ``value`` (truncated)."""
        return self._by_name[name].insert(word, value)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"{f.name}[{f.hi}:{f.lo}]" for f in self.fields)
        return f"BitStruct({self.name}: {spans})"
