"""Deterministic hash helpers.

iGUARD stores an 18-bit hash of a lock variable's address in each lock-table
entry (paper, Figure 7) and a 16-bit, 2-way Bloom-filter summary of held
locks in the memory metadata (section 6.2).  Both need cheap, deterministic
integer hashes; we use the finalizer of SplitMix64, a well-known 64-bit
mixing function with good avalanche behaviour.
"""

from __future__ import annotations

from functools import lru_cache

_MASK64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """SplitMix64 finalizer: a bijective 64-bit mixing function."""
    x &= _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


@lru_cache(maxsize=1 << 15)
def address_hash18(address: int) -> int:
    """The 18-bit lock-table address hash of Figure 7.

    Hardware would select address bits rather than run a mixing function;
    we hash the 4-byte granule index by identity, which keeps nearby lock
    variables distinguishable (important for the Bloom summary below).
    Memoized so the handful of lock addresses a kernel hammers map to one
    canonical small int instead of re-deriving per acquire/release.
    """
    return (address >> 2) & ((1 << 18) - 1)


def bloom_hashes16(value: int) -> "tuple[int, int]":
    """Two bit positions in [0, 16) for the lock Bloom summary.

    The paper describes the ``Locks`` field as a "16-bit summary (2-way
    bloom filter) of lock addresses": each lock sets two bits of a 16-bit
    word, and race check R5 tests summaries for a shared bit.  We assign
    the *pair* {2k, 2k+1} with k = value mod 8, so locks whose table
    hashes differ mod 8 have fully disjoint summaries.  Independent random
    hashes would instead collide for ~23% of lock pairs — hiding real
    lockset races behind phantom intersections — while this structured
    encoding keeps the Bloom guarantee that matters (a genuinely shared
    lock always shares bits, so R5 still cannot false-positive).
    """
    k = value & 0x7
    return (2 * k, 2 * k + 1)
