"""Deterministic random number generation for schedulers and workloads.

The ITS scheduler explores interleavings by making seeded pseudo-random
choices.  We use SplitMix64 rather than :mod:`random` so that scheduler
state is tiny, cheap to fork, and completely reproducible regardless of the
interpreter's global RNG state.
"""

from __future__ import annotations

from repro.common.hashing import mix64

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class SplitMix64:
    """A tiny, fast, seedable PRNG (SplitMix64)."""

    __slots__ = ("state",)

    def __init__(self, seed: int = 0):
        self.state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self.state = (self.state + _GOLDEN) & _MASK64
        return mix64(self.state)

    def randint(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)``; ``bound`` must be > 0."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        return seq[self.randint(len(seq))]

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates shuffle of a mutable sequence."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def fork(self, salt: int) -> "SplitMix64":
        """Derive an independent stream, e.g. one per warp."""
        return SplitMix64(mix64(self.state ^ mix64(salt)))
