"""Shared low-level utilities: bitfields, hashing, Bloom filters, RNG."""

from repro.common.bitfield import BitField, BitStruct
from repro.common.bloom import BloomFilter16
from repro.common.hashing import address_hash18, mix64
from repro.common.rng import SplitMix64

__all__ = [
    "BitField",
    "BitStruct",
    "BloomFilter16",
    "address_hash18",
    "mix64",
    "SplitMix64",
]
