"""A 16-bit, 2-way Bloom filter for lock summaries.

The memory metadata's ``Locks`` field (paper, Figure 4 and section 6.2) is a
16-bit, 2-way Bloom filter of the lock addresses held by the last writer of
a memory location.  Race condition R5 (Table 2) declares a missing-lock race
when the bitwise intersection of the stored summary with the current
accessor's summary is empty while at least one of them is non-empty.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.hashing import bloom_hashes16


class BloomFilter16:
    """A fixed-size 16-bit Bloom filter with two hash functions.

    The filter is intentionally tiny: it must fit in the ``Locks`` bit-field
    of the packed metadata word.  Because of that it can produce false
    *intersections* (two disjoint lock sets appearing to share a lock) but
    never false *disjointness* — a shared lock always shares bits — which is
    the property race check R5 relies on (no false positives from R5).
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0):
        self.bits = bits & 0xFFFF

    @classmethod
    def of(cls, addresses: Iterable[int]) -> "BloomFilter16":
        """Build a filter summarizing a collection of lock addresses."""
        bloom = cls()
        for address in addresses:
            bloom.add(address)
        return bloom

    def add(self, address: int) -> None:
        """Insert a lock address into the summary."""
        b1, b2 = bloom_hashes16(address)
        self.bits |= (1 << b1) | (1 << b2)
        self.bits &= 0xFFFF

    def might_contain(self, address: int) -> bool:
        """Whether the summary may contain ``address`` (no false negatives)."""
        b1, b2 = bloom_hashes16(address)
        return bool(self.bits & (1 << b1)) and bool(self.bits & (1 << b2))

    def intersects(self, other: "BloomFilter16") -> bool:
        """Whether the two summaries share any bit."""
        return bool(self.bits & other.bits)

    @property
    def empty(self) -> bool:
        """Whether no lock has ever been inserted."""
        return self.bits == 0

    def __int__(self) -> int:
        return self.bits

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BloomFilter16):
            return self.bits == other.bits
        if isinstance(other, int):
            return self.bits == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomFilter16(0b{self.bits:016b})"
