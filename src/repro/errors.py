"""Exception hierarchy for the iGUARD reproduction.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class LaunchError(ReproError):
    """A kernel launch was malformed (bad grid/block dimensions, etc.)."""


class MemoryError_(ReproError):
    """A simulated memory operation failed (OOM, bad address, ...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class OutOfMemoryError(MemoryError_):
    """The simulated device ran out of memory."""


class InvalidAddressError(MemoryError_):
    """An access touched an address outside any allocation."""


class DeadlockError(ReproError):
    """All runnable threads are blocked (e.g. divergent ``syncthreads``)."""


class TimeoutError_(ReproError):
    """A kernel exceeded its step budget (the paper's parameterized timeout)."""


class UnsupportedFeatureError(ReproError):
    """A detector was asked to handle a feature it does not support.

    Barracuda raises this for scoped atomics and for binaries it cannot
    ingest, mirroring the failures reported in the paper's evaluation.
    """


class KernelSourceError(ReproError):
    """A kernel function was not a generator or misused the DSL."""


class TraceCorruptionError(ReproError):
    """A recorded trace file was truncated or corrupt.

    Carries enough structure for a caller to salvage the readable prefix:
    ``line`` is the 1-based line number of the first bad record and
    ``last_good_offset`` the byte offset (of the decoded text stream, so
    it is meaningful for gzipped traces too) just past the last record
    that decoded cleanly.
    """

    def __init__(self, path, line: int, last_good_offset: int, reason: str,
                 events_recovered: int = 0):
        super().__init__(
            f"{path}: corrupt trace at line {line} "
            f"(byte offset {last_good_offset}): {reason}"
        )
        self.path = str(path)
        self.line = line
        self.last_good_offset = last_good_offset
        self.reason = reason
        self.events_recovered = events_recovered


class WorkerCrashError(ReproError):
    """A suite-executor worker process died while running a cell."""


class RetryExhaustedError(ReproError):
    """A suite cell kept failing after the executor's bounded retries.

    ``attempts`` counts executions (initial try + retries); ``last_error``
    is a human-readable description of the final failure.
    """

    def __init__(self, label: str, attempts: int, last_error: str):
        super().__init__(
            f"cell {label!r} failed after {attempts} attempt(s): {last_error}"
        )
        self.label = label
        self.attempts = attempts
        self.last_error = last_error
