"""Exception hierarchy for the iGUARD reproduction.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class LaunchError(ReproError):
    """A kernel launch was malformed (bad grid/block dimensions, etc.)."""


class MemoryError_(ReproError):
    """A simulated memory operation failed (OOM, bad address, ...).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class OutOfMemoryError(MemoryError_):
    """The simulated device ran out of memory."""


class InvalidAddressError(MemoryError_):
    """An access touched an address outside any allocation."""


class DeadlockError(ReproError):
    """All runnable threads are blocked (e.g. divergent ``syncthreads``)."""


class TimeoutError_(ReproError):
    """A kernel exceeded its step budget (the paper's parameterized timeout)."""


class UnsupportedFeatureError(ReproError):
    """A detector was asked to handle a feature it does not support.

    Barracuda raises this for scoped atomics and for binaries it cannot
    ingest, mirroring the failures reported in the paper's evaluation.
    """


class KernelSourceError(ReproError):
    """A kernel function was not a generator or misused the DSL."""
