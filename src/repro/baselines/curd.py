"""CURD: Barracuda's compiler-directed fast path (PLDI'18).

CURD observes that traditional bulk-synchronous kernels synchronize with
*threadblock barriers only*.  For those, compiler-inserted source
instrumentation aggregates race checks per barrier interval, cutting the
overhead to ~3x.  The moment a kernel uses an atomic or a fence, CURD
"falls back to Barracuda for everything else" — the full serialized
CPU-side pass, with all of Barracuda's costs and limitations.

We model this adaptively: events are charged at the cheap fast-path rate
until the first atomic or fence appears, after which the launch is
permanently in fallback mode (and the events seen so far are recharged at
Barracuda rates, as the real tool would have run them under Barracuda all
along).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.barracuda import Barracuda, BarracudaCosts
from repro.gpu.events import MemoryEvent, AccessKind, SyncEvent, SyncKind
from repro.instrument.nvbit import LaunchInfo
from repro.instrument.timing import Category


@dataclass(frozen=True)
class CURDCosts(BarracudaCosts):
    """Fast-path cost constants on top of the Barracuda base costs."""

    #: Serial CPU cycles per event on the barrier-only fast path: checks
    #: are aggregated per barrier interval instead of per access.
    fast_cpu_per_event: float = 0.08


class CURD(Barracuda):
    """CURD = cheap barrier-only detection + Barracuda fallback."""

    name = "CURD"

    def __init__(
        self,
        costs: CURDCosts = CURDCosts(),
        event_budget: int = 12_000,
        shards=None,
    ):
        super().__init__(costs=costs, event_budget=event_budget, shards=shards)
        self.fallback = False
        self._fast_path_events = 0

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        super().on_launch_begin(launch)
        self.fallback = False
        self._fast_path_events = 0

    def _enter_fallback(self, launch: LaunchInfo) -> None:
        """First atomic/fence: this kernel runs under Barracuda proper."""
        if not self.fallback:
            self.fallback = True
            # Recharge the fast-path events at the Barracuda rate.
            delta = self.costs.cpu_per_event - self.costs.fast_cpu_per_event
            launch.timing.charge(
                Category.DETECTION, delta * self._fast_path_events, serial=True
            )

    def _charge_event(self, launch: LaunchInfo) -> None:
        if self.fallback:
            super()._charge_event(launch)
            return
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )
        launch.timing.charge(
            Category.DETECTION,
            self.costs.ship_per_event + self.costs.fast_cpu_per_event,
            serial=True,
        )
        self.events_processed += 1
        self._fast_path_events += 1

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        if event.kind is AccessKind.ATOMIC:
            self._enter_fallback(launch)
        super().on_memory(event, launch)

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        if event.kind is SyncKind.FENCE:
            self._enter_fallback(launch)
        super().on_sync(event, launch)
