"""FastTrack: a pure happens-before oracle over the same HB engine.

Barracuda's blind spots are *tool* policies, not happens-before limits:
it ignores ``syncwarp`` (pre-Volta lockstep assumption), declares all
same-warp accesses ordered, aborts on block-scope atomics, reserves half
of device memory, and gives up past an event budget.  This backend is
the same :class:`repro.core.engine.HBCore` state machine with every one
of those policies removed — an idealized FastTrack (PLDI'09) detector
with ITS awareness — useful as a cross-check oracle against iGUARD's
metadata-based checks and as the fifth backend of the sharded suite:

- ``syncwarp`` joins the warp's vector clocks (ITS-aware), so
  intra-warp races missing a warp barrier are visible;
- no lockstep assumption: same-warp accesses race unless ordered;
- block-scope atomics synchronize through per-block location clocks
  instead of aborting;
- no memory reservation, no event budget, and no cost model beyond a
  uniform per-event charge (it is an oracle, not a performance claim).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.engine import HBCore, HBSyncState
from repro.core.report import RaceLog
from repro.errors import ConfigError
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category


class FastTrack(Tool):
    """An idealized ITS-aware FastTrack detector (oracle, no cost model)."""

    name = "FastTrack"
    #: Uniform per-event detection charge: enough to make timing totals
    #: well-formed, deliberately not calibrated against any real tool.
    CHECK_COST = 1.0

    def __init__(self, shards: Optional[int] = None):
        if shards is None:
            from repro.core.sharding import default_shards

            shards = default_shards()
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.device = None
        self.races = RaceLog(capacity=16_384)
        self.sync = HBSyncState()
        self.cores: List[HBCore] = [
            HBCore(
                its=True,
                same_warp_ordered=False,
                sync=self.sync,
                shard_id=i,
            )
            for i in range(shards)
        ]
        for core in self.cores:
            core.report_sink = self._report_sink

    def _report_sink(self, record, md) -> bool:
        return self.races.report(record)

    def _shard_of(self, address: int) -> int:
        if self.shards == 1:
            return 0
        from repro.core.sharding import shard_of

        return shard_of(address, self.shards)

    # ------------------------------------------------------------------

    def attach(self, device) -> None:
        self.device = device

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        self.sync = HBSyncState()
        for core in self.cores:
            core.rebind_sync(self.sync)
            core.begin_launch(launch)

    def on_launch_end(self, launch: LaunchInfo) -> None:
        for core in self.cores:
            core.finish_launch(launch)
        self.races.flush()

    def on_timeout(self, launch: LaunchInfo) -> None:
        self.on_launch_end(launch)

    # ------------------------------------------------------------------

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        launch.timing.charge(Category.DETECTION, self.CHECK_COST)
        self._sync_barrier()
        self.cores[0].apply_sync(event, launch)

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        launch.timing.charge(Category.DETECTION, self.CHECK_COST)
        if event.kind is AccessKind.ATOMIC:
            self._sync_barrier()
            self.cores[0].atomic_sync(event)
            return
        self._dispatch(self._shard_of(event.address), event, launch)

    def _dispatch(self, shard: int, event: MemoryEvent, launch: LaunchInfo) -> None:
        """Run the routed check now.  Batched drivers override to queue."""
        self.cores[shard].handle(event, event.address, launch)

    def _sync_barrier(self) -> None:
        """Quiesce shard queues before a sync-state mutation (see IGuard)."""

    # ------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        """Unique racy sites detected."""
        return self.races.num_sites
