"""Baseline race detectors the paper compares against.

- :mod:`repro.baselines.barracuda` — Barracuda (PLDI'17): instruments GPU
  kernels but ships the event stream to the CPU, where a serialized
  happens-before (vector-clock) pass detects races.  No scoped atomics, no
  ITS/syncwarp support, cannot ingest large multi-file binaries, reserves
  half of device memory for its buffers.
- :mod:`repro.baselines.curd` — CURD (PLDI'18): Barracuda plus a cheap
  compiler-directed fast path for kernels that use *only* threadblock
  barriers; falls back to Barracuda for everything else.
- :mod:`repro.baselines.fasttrack` — an idealized ITS-aware FastTrack
  (PLDI'09) oracle over the same happens-before engine, with Barracuda's
  tool-policy limitations (lockstep assumption, scoped-atomic abort,
  memory reservation, event budget) removed.
- ScoRD (ISCA'20) is iGUARD's own detection logic minus ITS and lockset in
  dedicated hardware; it is reproduced as a configuration of the detector
  (:meth:`repro.core.config.IGuardConfig.scord_mode`) with a hardware-like
  cost model in :mod:`repro.baselines.scord`.
"""

from repro.baselines.barracuda import Barracuda
from repro.baselines.curd import CURD
from repro.baselines.fasttrack import FastTrack
from repro.baselines.scord import ScoRD

__all__ = ["Barracuda", "CURD", "FastTrack", "ScoRD"]
