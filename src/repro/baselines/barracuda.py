"""Barracuda: the CPU-side happens-before baseline (PLDI'17).

Barracuda instruments GPU binaries (at PTX level) to *log* memory and
synchronization events, serializes the log, and ships it to the CPU where
a happens-before detector processes it one event at a time.  That design
is exactly what iGUARD's evaluation contrasts against:

- all detection work is **serialized** on the CPU — no GPU parallelism —
  which is where the 10-1000x overheads come from;
- **scoped atomics are unsupported**: workloads using ``atomic*_block``
  abort (the paper could not run ScoR or the CG suite under Barracuda);
- **ITS is unsupported**: Barracuda assumes pre-Volta lockstep warps, so
  same-warp accesses are considered ordered and missing-``syncwarp``
  races are invisible (``syncwarp`` itself is ignored);
- **half of device memory is reserved** for its buffers, so applications
  with footprints beyond 50% of capacity fail to start (Figure 14);
- large event streams (e.g. Kilo-TM's ``interac`` with its spin loops)
  exhaust the processing budget: the run "does not terminate".

The happens-before engine is FastTrack-style: per-thread vector clocks,
per-address write epoch + read epoch/VC, release/acquire edges through
(fence, atomic) pairs, and barrier joins at each ``syncthreads``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.baselines.vectorclock import AccessHistory, VectorClock
from repro.core.report import RaceLog, RaceRecord, RaceType
from repro.errors import OutOfMemoryError, TimeoutError_, UnsupportedFeatureError
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent, SyncKind
from repro.gpu.instructions import Scope
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category


@dataclass(frozen=True)
class BarracudaCosts:
    """Cycle constants for Barracuda's runtime (calibrated for shape)."""

    #: Recompilation / runtime linking, charged per launch: a small fixed
    #: part plus a duration-proportional part (same scaling rationale as
    #: the iGUARD detector's host costs).
    recompile_fixed: float = 30.0
    recompile_fraction: float = 0.5
    #: Injected logging code, runs in parallel on the GPU.
    instrument_per_event: float = 5.0
    #: Serializing one event out of the GPU into the shared buffer.
    ship_per_event: float = 0.5
    #: CPU-side happens-before processing of one event (serial!).  This
    #: single constant is the heart of the comparison: all of Barracuda's
    #: race detection funnels through it with no parallelism at all.
    cpu_per_event: float = 24.0


@dataclass
class _ThreadState:
    """Per-thread vector clock plus pending release snapshots."""

    vc: VectorClock = field(default_factory=VectorClock)
    release_dev: Optional[VectorClock] = None
    release_blk: Optional[VectorClock] = None


@dataclass
class _LocationSync:
    """Release clocks carried by an atomic location."""

    dev: VectorClock = field(default_factory=VectorClock)
    blk: Dict[int, VectorClock] = field(default_factory=dict)


class Barracuda(Tool):
    """The Barracuda baseline as an instrumentation tool."""

    name = "Barracuda"
    #: Fraction of device memory pinned for Barracuda's buffers.
    MEMORY_RESERVATION = 0.5
    #: Extra device memory Barracuda needs per byte of application
    #: footprint (shadow/log space), on top of the fixed reservation.
    SHADOW_FACTOR = 0.6

    def __init__(
        self,
        costs: BarracudaCosts = BarracudaCosts(),
        event_budget: int = 12_000,
    ):
        self.costs = costs
        self.event_budget = event_budget
        self.device = None
        self.races = RaceLog(capacity=16_384)
        self.events_processed = 0
        self.gave_up = False
        self._threads: Dict[int, _ThreadState] = {}
        self._histories: Dict[int, AccessHistory] = {}
        self._locations: Dict[int, _LocationSync] = {}
        self._launch: Optional[LaunchInfo] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, device) -> None:
        self.device = device

    def on_alloc(self, allocation) -> None:
        """Enforce the pinned-buffer reservation at allocation time.

        The application's footprint plus Barracuda's proportional shadow
        space must fit in what the fixed 50% reservation leaves — this is
        the failure Figure 14 shows past 8 GB on a 24 GB GPU.
        """
        if self.device is None:
            return
        budget = self.device.memory.capacity_bytes * (1 - self.MEMORY_RESERVATION)
        needed = self.device.memory.bytes_allocated * (1 + self.SHADOW_FACTOR)
        if needed > budget:
            raise OutOfMemoryError(
                f"Barracuda reserves {int(self.MEMORY_RESERVATION * 100)}% of "
                f"device memory for buffers; allocation of "
                f"{allocation.name!r} plus shadow space needs "
                f"{int(needed)} bytes but only {int(budget)} remain"
            )

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        self._launch = launch
        self._threads = {}
        self._histories = {}
        self._locations = {}
        self.events_processed = 0
        self.gave_up = False
        launch.timing.charge(
            Category.NVBIT, self.costs.recompile_fixed, serial=True
        )

    def on_launch_end(self, launch: LaunchInfo) -> None:
        self.races.flush()
        launch.timing.charge(
            Category.NVBIT,
            self.costs.recompile_fraction * launch.timing.native_time,
            serial=True,
        )

    def on_timeout(self, launch: LaunchInfo) -> None:
        self.races.flush()

    # ------------------------------------------------------------------
    # Event costing and budget
    # ------------------------------------------------------------------

    def _charge_event(self, launch: LaunchInfo) -> None:
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )
        launch.timing.charge(
            Category.DETECTION,
            self.costs.ship_per_event + self.costs.cpu_per_event,
            serial=True,
        )
        self.events_processed += 1
        if self.events_processed > self.event_budget:
            self.gave_up = True
            raise TimeoutError_(
                f"Barracuda did not terminate: CPU-side detection exceeded "
                f"{self.event_budget} events on {launch.kernel_name!r}"
            )

    def _thread(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            state = _ThreadState()
            state.vc.bump(tid)
            self._threads[tid] = state
        return state

    # ------------------------------------------------------------------
    # Synchronization events
    # ------------------------------------------------------------------

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        self._charge_event(launch)
        if event.kind is SyncKind.SYNCTHREADS:
            self._barrier_join(event.where.block_id, launch)
        elif event.kind is SyncKind.SYNCWARP:
            # No ITS support: warp barriers are not modeled (lockstep is
            # assumed for whole warps instead).
            pass
        elif event.kind is SyncKind.FENCE:
            # CUDA fence semantics are per-thread: "the effect of a
            # threadfence is limited to writes of the calling thread only"
            # (section 7.1) — a fence does NOT transitively publish writes
            # the thread merely observed through a barrier.  The release
            # snapshot therefore carries only the calling thread's own
            # epoch, which is how Barracuda catches the leader-only-fence
            # grid-barrier bug.
            tid = event.where.global_tid
            state = self._thread(tid)
            snapshot = VectorClock({tid: state.vc.get(tid)})
            if event.scope.effective is Scope.DEVICE:
                state.release_dev = snapshot
                state.release_blk = snapshot
            else:
                state.release_blk = snapshot
            state.vc.bump(tid)

    def _barrier_join(self, block_id: int, launch: LaunchInfo) -> None:
        """syncthreads: join the clocks of every thread in the block."""
        base = block_id * launch.block_dim
        tids = range(base, base + launch.block_dim)
        joined = VectorClock()
        for tid in tids:
            joined.join(self._thread(tid).vc)
        for tid in tids:
            state = self._thread(tid)
            state.vc = joined.copy()
            state.vc.bump(tid)

    # ------------------------------------------------------------------
    # Memory events
    # ------------------------------------------------------------------

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        self._charge_event(launch)
        where = event.where
        tid = where.global_tid
        state = self._thread(tid)

        if event.kind is AccessKind.ATOMIC:
            if event.scope.effective is Scope.BLOCK:
                raise UnsupportedFeatureError(
                    "Barracuda does not support scoped atomic operations "
                    f"(block-scope atomic at {event.ip})"
                )
            self._atomic_sync(event, state)
            return

        history = self._histories.get(event.address)
        if history is None:
            history = AccessHistory()
            self._histories[event.address] = history

        clock = state.vc.get(tid)
        if event.kind is AccessKind.LOAD:
            self._check_read(event, state, history, launch)
            history.record_read(tid, clock, where.warp_id, state.vc)
        else:
            self._check_write(event, state, history, launch)
            history.record_write(tid, clock, where.warp_id)

    def _atomic_sync(self, event: MemoryEvent, state: _ThreadState) -> None:
        """Atomics are synchronization: release-acquire through the location."""
        where = event.where
        location = self._locations.get(event.address)
        if location is None:
            location = _LocationSync()
            self._locations[event.address] = location
        # Acquire: the atomic reads the location, picking up releases.
        state.vc.join(location.dev)
        blk = location.blk.get(where.block_id)
        if blk is not None:
            state.vc.join(blk)
        # Release: a fence executed earlier publishes writes through this
        # atomic.  Without a prior fence nothing is released — which is
        # how Barracuda catches missing-threadfence races.
        if state.release_dev is not None:
            location.dev.join(state.release_dev)
        if state.release_blk is not None:
            location.blk.setdefault(where.block_id, VectorClock()).join(
                state.release_blk
            )

    def _check_read(self, event, state, history: AccessHistory, launch) -> None:
        w = history.write_epoch
        if w is None:
            return
        if history.write_warp == event.where.warp_id:
            return  # lockstep assumption: same-warp accesses are ordered
        if not state.vc.dominates_epoch(w):
            self._report(event, launch)

    def _check_write(self, event, state, history: AccessHistory, launch) -> None:
        warp = event.where.warp_id
        w = history.write_epoch
        if (
            w is not None
            and history.write_warp != warp
            and not state.vc.dominates_epoch(w)
        ):
            self._report(event, launch)
            return
        for _tid, _clock, read_warp in history.concurrent_readers(state.vc):
            if read_warp != warp:
                self._report(event, launch)
                return

    def _report(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        where = event.where
        # Barracuda does not classify races by GPU-specific cause; records
        # are tagged with the generic device-level race type.
        record = RaceRecord(
            race_type=RaceType.INTER_BLOCK,
            kernel=launch.kernel_name,
            ip=event.ip,
            access=event.kind.value,
            address=event.address,
            location=launch.device.memory.describe(event.address),
            warp_id=where.warp_id,
            lane=where.lane,
            block_id=where.block_id,
            prev_warp_id=-1,
            prev_lane=-1,
        )
        self.races.report(record)

    # ------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        """Unique racy sites found by the CPU-side pass."""
        return self.races.num_sites
