"""Barracuda: the CPU-side happens-before baseline (PLDI'17).

Barracuda instruments GPU binaries (at PTX level) to *log* memory and
synchronization events, serializes the log, and ships it to the CPU where
a happens-before detector processes it one event at a time.  That design
is exactly what iGUARD's evaluation contrasts against:

- all detection work is **serialized** on the CPU — no GPU parallelism —
  which is where the 10-1000x overheads come from;
- **scoped atomics are unsupported**: workloads using ``atomic*_block``
  abort (the paper could not run ScoR or the CG suite under Barracuda);
- **ITS is unsupported**: Barracuda assumes pre-Volta lockstep warps, so
  same-warp accesses are considered ordered and missing-``syncwarp``
  races are invisible (``syncwarp`` itself is ignored);
- **half of device memory is reserved** for its buffers, so applications
  with footprints beyond 50% of capacity fail to start (Figure 14);
- large event streams (e.g. Kilo-TM's ``interac`` with its spin loops)
  exhaust the processing budget: the run "does not terminate".

The happens-before engine itself — FastTrack-style per-thread vector
clocks, per-address write epoch + read epoch/VC, release/acquire edges
through (fence, atomic) pairs, barrier joins at each ``syncthreads`` —
lives in :class:`repro.core.engine.HBCore`; this class is the Tool
adapter that owns Barracuda's *tool* behaviours (event costing, the
processing budget, the memory reservation, the unsupported-feature
aborts) and feeds the core(s).  Like :class:`repro.core.detector.IGuard`
it shards by routing key: memory accesses route to the shard owning
their address, atomics (release/acquire synchronization) and sync events
apply once to the happens-before state all shards share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.engine import HBCore, HBSyncState
from repro.core.report import RaceLog
from repro.errors import ConfigError, OutOfMemoryError, TimeoutError_, UnsupportedFeatureError
from repro.gpu.events import AccessKind, MemoryEvent, SyncEvent
from repro.gpu.instructions import Scope
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category


@dataclass(frozen=True)
class BarracudaCosts:
    """Cycle constants for Barracuda's runtime (calibrated for shape)."""

    #: Recompilation / runtime linking, charged per launch: a small fixed
    #: part plus a duration-proportional part (same scaling rationale as
    #: the iGUARD detector's host costs).
    recompile_fixed: float = 30.0
    recompile_fraction: float = 0.5
    #: Injected logging code, runs in parallel on the GPU.
    instrument_per_event: float = 5.0
    #: Serializing one event out of the GPU into the shared buffer.
    ship_per_event: float = 0.5
    #: CPU-side happens-before processing of one event (serial!).  This
    #: single constant is the heart of the comparison: all of Barracuda's
    #: race detection funnels through it with no parallelism at all.
    cpu_per_event: float = 24.0


class Barracuda(Tool):
    """The Barracuda baseline as an instrumentation tool."""

    name = "Barracuda"
    #: Fraction of device memory pinned for Barracuda's buffers.
    MEMORY_RESERVATION = 0.5
    #: Extra device memory Barracuda needs per byte of application
    #: footprint (shadow/log space), on top of the fixed reservation.
    SHADOW_FACTOR = 0.6
    #: HBCore configuration of this backend (see the core's docstring).
    ITS_SUPPORT = False
    SAME_WARP_ORDERED = True

    def __init__(
        self,
        costs: BarracudaCosts = BarracudaCosts(),
        event_budget: int = 12_000,
        shards: Optional[int] = None,
    ):
        self.costs = costs
        self.event_budget = event_budget
        if shards is None:
            from repro.core.sharding import default_shards

            shards = default_shards()
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.device = None
        self.races = RaceLog(capacity=16_384)
        self.events_processed = 0
        self.gave_up = False
        self.sync = HBSyncState()
        self.cores: List[HBCore] = [
            HBCore(
                its=self.ITS_SUPPORT,
                same_warp_ordered=self.SAME_WARP_ORDERED,
                sync=self.sync,
                shard_id=i,
            )
            for i in range(shards)
        ]
        for core in self.cores:
            core.report_sink = self._report_sink
        self._launch: Optional[LaunchInfo] = None

    # ------------------------------------------------------------------
    # Delegation / report plumbing
    # ------------------------------------------------------------------

    def _report_sink(self, record, md) -> bool:
        return self.races.report(record)

    def _shard_of(self, address: int) -> int:
        if self.shards == 1:
            return 0
        from repro.core.sharding import shard_of

        return shard_of(address, self.shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, device) -> None:
        self.device = device

    def on_alloc(self, allocation) -> None:
        """Enforce the pinned-buffer reservation at allocation time.

        The application's footprint plus Barracuda's proportional shadow
        space must fit in what the fixed 50% reservation leaves — this is
        the failure Figure 14 shows past 8 GB on a 24 GB GPU.
        """
        if self.device is None:
            return
        budget = self.device.memory.capacity_bytes * (1 - self.MEMORY_RESERVATION)
        needed = self.device.memory.bytes_allocated * (1 + self.SHADOW_FACTOR)
        if needed > budget:
            raise OutOfMemoryError(
                f"Barracuda reserves {int(self.MEMORY_RESERVATION * 100)}% of "
                f"device memory for buffers; allocation of "
                f"{allocation.name!r} plus shadow space needs "
                f"{int(needed)} bytes but only {int(budget)} remain"
            )

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        self._launch = launch
        self.events_processed = 0
        self.gave_up = False
        self.sync = HBSyncState()
        for core in self.cores:
            core.rebind_sync(self.sync)
            core.begin_launch(launch)
        launch.timing.charge(
            Category.NVBIT, self.costs.recompile_fixed, serial=True
        )

    def on_launch_end(self, launch: LaunchInfo) -> None:
        for core in self.cores:
            core.finish_launch(launch)
        self.races.flush()
        launch.timing.charge(
            Category.NVBIT,
            self.costs.recompile_fraction * launch.timing.native_time,
            serial=True,
        )

    def on_timeout(self, launch: LaunchInfo) -> None:
        for core in self.cores:
            core.finish_launch(launch)
        self.races.flush()

    # ------------------------------------------------------------------
    # Event costing and budget
    # ------------------------------------------------------------------

    def _charge_event(self, launch: LaunchInfo) -> None:
        launch.timing.charge(
            Category.INSTRUMENTATION, self.costs.instrument_per_event
        )
        launch.timing.charge(
            Category.DETECTION,
            self.costs.ship_per_event + self.costs.cpu_per_event,
            serial=True,
        )
        self.events_processed += 1
        if self.events_processed > self.event_budget:
            self.gave_up = True
            raise TimeoutError_(
                f"Barracuda did not terminate: CPU-side detection exceeded "
                f"{self.event_budget} events on {launch.kernel_name!r}"
            )

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def on_sync(self, event: SyncEvent, launch: LaunchInfo) -> None:
        self._charge_event(launch)
        self._sync_barrier()
        self.cores[0].apply_sync(event, launch)

    def on_memory(self, event: MemoryEvent, launch: LaunchInfo) -> None:
        self._charge_event(launch)

        if event.kind is AccessKind.ATOMIC:
            if event.scope.effective is Scope.BLOCK:
                raise UnsupportedFeatureError(
                    "Barracuda does not support scoped atomic operations "
                    f"(block-scope atomic at {event.ip})"
                )
            # Atomics are release/acquire synchronization: they mutate the
            # shared happens-before state, so batched drivers drain first.
            self._sync_barrier()
            self.cores[0].atomic_sync(event)
            return

        self._dispatch(self._shard_of(event.address), event, launch)

    def _dispatch(self, shard: int, event: MemoryEvent, launch: LaunchInfo) -> None:
        """Run the routed check now.  Batched drivers override to queue."""
        self.cores[shard].handle(event, event.address, launch)

    def _sync_barrier(self) -> None:
        """Quiesce shard queues before a sync-state mutation (see IGuard)."""

    # ------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        """Unique racy sites found by the CPU-side pass."""
        return self.races.num_sites
