"""Sparse vector clocks and FastTrack-style epochs.

Barracuda reduces GPU race detection to CPU race detection: the serialized
event log is processed with classic happens-before machinery.  We implement
the FastTrack optimization (Flanagan & Freund, PLDI'09, cited by the paper
in its last-accessor discussion): most accesses are compared against an
*epoch* — a single (thread, clock) pair — and full vector-clock reads are
only needed for read-shared locations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

Epoch = Tuple[int, int]  # (thread id, clock)


class VectorClock:
    """A sparse vector clock: missing components are zero."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None):
        self.clocks = dict(clocks) if clocks else {}

    def get(self, tid: int) -> int:
        return self.clocks.get(tid, 0)

    def bump(self, tid: int) -> None:
        """Increment one component (a thread's own clock tick)."""
        self.clocks[tid] = self.clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place element-wise maximum."""
        for tid, clock in other.clocks.items():
            if clock > self.clocks.get(tid, 0):
                self.clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def dominates_epoch(self, epoch: Epoch) -> bool:
        """Whether the epoch happens-before this clock (e ⊑ VC)."""
        tid, clock = epoch
        return clock <= self.clocks.get(tid, 0)

    def epoch_of(self, tid: int) -> Epoch:
        """This thread's current epoch."""
        return (tid, self.clocks.get(tid, 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC({self.clocks})"


class AccessHistory:
    """FastTrack per-address state: a write epoch plus read epoch-or-VC."""

    __slots__ = ("write_epoch", "write_warp", "read_epoch", "read_warp", "read_vc")

    def __init__(self):
        self.write_epoch: Optional[Epoch] = None
        self.write_warp: int = -1
        self.read_epoch: Optional[Epoch] = None
        self.read_warp: int = -1
        #: Read-shared mode: map tid -> (clock, warp id).
        self.read_vc: Optional[Dict[int, Tuple[int, int]]] = None

    def record_read(self, tid: int, clock: int, warp: int, thread_vc: VectorClock) -> None:
        """Record a read, promoting to read-shared when needed."""
        if self.read_vc is not None:
            self._prune_reads(thread_vc)
            self.read_vc[tid] = (clock, warp)
            return
        if self.read_epoch is None or self.read_epoch[0] == tid:
            self.read_epoch = (tid, clock)
            self.read_warp = warp
            return
        if thread_vc.dominates_epoch(self.read_epoch):
            # The previous read happens-before this one: keep one epoch.
            self.read_epoch = (tid, clock)
            self.read_warp = warp
            return
        # Concurrent readers: switch to read-shared (a small VC).
        self.read_vc = {
            self.read_epoch[0]: (self.read_epoch[1], self.read_warp),
            tid: (clock, warp),
        }
        self.read_epoch = None

    def _prune_reads(self, thread_vc: VectorClock) -> None:
        """Drop read entries already ordered before the current thread.

        Keeps the read-shared set small for flag locations read by
        thousands of spinning threads.
        """
        if self.read_vc is not None and len(self.read_vc) > 64:
            self.read_vc = {
                tid: (clock, warp)
                for tid, (clock, warp) in self.read_vc.items()
                if clock > thread_vc.get(tid)
            }

    def record_write(self, tid: int, clock: int, warp: int) -> None:
        """Record a write; reads-before are subsumed."""
        self.write_epoch = (tid, clock)
        self.write_warp = warp
        self.read_epoch = None
        self.read_warp = -1
        self.read_vc = None

    def concurrent_readers(self, thread_vc: VectorClock):
        """Readers not ordered before the given clock: (tid, clock, warp)."""
        if self.read_vc is not None:
            for tid, (clock, warp) in self.read_vc.items():
                if clock > thread_vc.get(tid):
                    yield (tid, clock, warp)
        elif self.read_epoch is not None:
            if not thread_vc.dominates_epoch(self.read_epoch):
                yield (self.read_epoch[0], self.read_epoch[1], self.read_warp)
