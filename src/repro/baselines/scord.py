"""ScoRD: the hardware scoped-race detector (ISCA'20), as a mode of iGUARD.

ScoRD is the authors' earlier proposal: the same scoped-race detection
logic implemented in *new GPU hardware*.  iGUARD "borrows its race
detection logic to detect improper use of scopes", extending it with ITS
(the WarpBarID / ThreadID machinery) and the lockset technique.  ScoRD is
therefore naturally expressed as a configuration of our detector:

- ``its_support=False`` — no syncwarp tracking; same-warp accesses are
  assumed lockstep-ordered, so ITS races are missed (the paper found 5
  previously unreported ITS races in ScoRD's own benchmark suite);
- ``lockset=False`` — ScoRD uses happens-before for lock inference rather
  than locksets;
- hardware cost model — metadata is updated by dedicated units alongside
  the memory pipeline, so overheads stay below 1x-ish (Table 1: "Low").
"""

from __future__ import annotations

from repro.core.config import DEFAULT_CONFIG, IGuardConfig
from repro.core.contention import ContentionParams
from repro.core.detector import DetectorCosts, IGuard


#: Hardware-assist cost model: dedicated units hide almost all latency.
SCORD_COSTS = DetectorCosts(
    nvbit_fixed=0.0,
    nvbit_fraction=0.0,
    nvbit_per_instruction=0.0,
    setup_fixed=5.0,
    setup_fraction=0.02,
    misc_fixed=2.0,
    misc_fraction=0.01,
    instrument_per_event=0.0,
    check_per_access=1.5,
    sync_per_event=0.5,
    coalesced_skip=0.0,
)

#: Hardware arbitration replaces software spin locks on metadata.
SCORD_CONTENTION = ContentionParams(retry_cost=0.5, backoff_cost=0.2)


class ScoRD(IGuard):
    """iGUARD's logic in its ScoRD configuration with hardware costs."""

    name = "ScoRD"

    def __init__(self, config: IGuardConfig = DEFAULT_CONFIG, shards=None):
        super().__init__(
            config=config.scord_mode(),
            costs=SCORD_COSTS,
            contention_params=SCORD_CONTENTION,
            shards=shards,
        )
