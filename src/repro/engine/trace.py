"""Trace codec: the event stream as a serializable record/replay artifact.

A :class:`Trace` is the ordered list of typed events one or more executions
published on the bus — a :class:`~repro.gpu.arch.GPUConfig` header,
:class:`~repro.gpu.events.AllocEvent` /
:class:`~repro.gpu.events.LaunchEvent` /
:class:`~repro.gpu.events.MemoryEvent` /
:class:`~repro.gpu.events.SyncEvent` /
:class:`~repro.gpu.events.KernelEndEvent` records, with
:class:`RunMarker` boundaries between independently-executed runs (one per
scheduler seed).  The codec serializes each record to one compact JSON
line; ``.gz`` paths are transparently gzipped.

Capture once, analyze forever: the predictive-analysis literature (e.g.
*Predictive Data Race Detection for GPUs*) argues for exactly this —
detection over a fixed observed execution, reproducible and decoupled
from the cost of producing it.  :mod:`repro.engine.replay` consumes these
traces.
"""

from __future__ import annotations

import gzip
import json
import zlib
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.common.budget import line_limit
from repro.errors import ConfigError, TraceCorruptionError
from repro.gpu.arch import GPUConfig
from repro.gpu.events import (
    AccessKind,
    AllocEvent,
    KernelEndEvent,
    LaunchEvent,
    MemoryEvent,
    SyncEvent,
    SyncKind,
)
from repro.gpu.ids import ThreadLocation
from repro.gpu.instructions import AtomicOp, Scope
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category
from repro.obs.log import get_logger

#: Bumped whenever the record schema changes incompatibly.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunMarker:
    """Boundary between independently-executed runs within one trace."""

    seed: int


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------

_ACCESS_SHORT = {AccessKind.LOAD: "l", AccessKind.STORE: "s", AccessKind.ATOMIC: "a"}
_ACCESS_LONG = {v: k for k, v in _ACCESS_SHORT.items()}
_SYNC_SHORT = {SyncKind.SYNCTHREADS: "t", SyncKind.SYNCWARP: "w", SyncKind.FENCE: "f"}
_SYNC_LONG = {v: k for k, v in _SYNC_SHORT.items()}


def _enc_where(where: ThreadLocation) -> List[int]:
    return [
        where.global_tid,
        where.block_id,
        where.tid_in_block,
        where.warp_id,
        where.lane,
        where.warp_in_block,
    ]


def _dec_where(values) -> ThreadLocation:
    return ThreadLocation(
        global_tid=values[0],
        block_id=values[1],
        tid_in_block=values[2],
        warp_id=values[3],
        lane=values[4],
        warp_in_block=values[5],
    )


def _jsonable(value):
    """Event payload values the codec can carry losslessly, else ``repr``.

    Workload kernels store Python ints (and occasionally strings); anything
    exotic is degraded to its ``repr`` — visible in the trace rather than
    silently dropped.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def encode_event(event) -> dict:
    """One typed event -> one JSON-serializable record dict."""
    if isinstance(event, GPUConfig):
        return {"t": "gpu", "v": FORMAT_VERSION, **asdict(event)}
    if isinstance(event, RunMarker):
        return {"t": "run", "seed": event.seed}
    if isinstance(event, AllocEvent):
        return {"t": "alloc", "name": event.name, "base": event.base,
                "words": event.num_words}
    if isinstance(event, LaunchEvent):
        return {
            "t": "launch",
            "k": event.kernel_name,
            "g": event.grid_dim,
            "bd": event.block_dim,
            "ws": event.warp_size,
            "wpb": event.warps_per_block,
            "nt": event.num_threads,
            "seed": event.seed,
            "sic": event.static_instruction_count,
            "par": event.parallelism,
        }
    if isinstance(event, MemoryEvent):
        record = {
            "t": "m",
            "k": _ACCESS_SHORT[event.kind],
            "a": event.address,
            "w": _enc_where(event.where),
            "ip": event.ip,
            "am": sorted(event.active_mask),
            "b": event.batch,
        }
        if event.scope is not Scope.DEVICE:
            record["sc"] = int(event.scope)
        if event.atomic_op is not None:
            record["op"] = event.atomic_op.value
        if event.value_stored is not None:
            record["vs"] = _jsonable(event.value_stored)
        if event.value_loaded is not None:
            record["vl"] = _jsonable(event.value_loaded)
        if event.compare is not None:
            record["cmp"] = _jsonable(event.compare)
        return record
    if isinstance(event, SyncEvent):
        record = {
            "t": "y",
            "k": _SYNC_SHORT[event.kind],
            "w": _enc_where(event.where),
            "ip": event.ip,
            "am": sorted(event.active_mask),
            "b": event.batch,
        }
        if event.scope is not Scope.DEVICE:
            record["sc"] = int(event.scope)
        return record
    if isinstance(event, KernelEndEvent):
        return {
            "t": "end",
            "k": event.kernel_name,
            "to": event.timed_out,
            "np": event.native_parallel,
            "ns": event.native_serial,
            "ba": event.batches,
            "in": event.instructions,
        }
    raise TypeError(f"cannot encode trace event {event!r}")


def decode_event(record: dict):
    """One record dict -> the typed event it encodes."""
    kind = record.get("t")
    if kind == "gpu":
        fields = {k: v for k, v in record.items() if k not in ("t", "v")}
        return GPUConfig(**fields)
    if kind == "run":
        return RunMarker(seed=record["seed"])
    if kind == "alloc":
        return AllocEvent(
            name=record["name"], base=record["base"], num_words=record["words"]
        )
    if kind == "launch":
        return LaunchEvent(
            kernel_name=record["k"],
            grid_dim=record["g"],
            block_dim=record["bd"],
            warp_size=record["ws"],
            warps_per_block=record["wpb"],
            num_threads=record["nt"],
            seed=record["seed"],
            static_instruction_count=record["sic"],
            parallelism=record["par"],
        )
    if kind == "m":
        return MemoryEvent(
            kind=_ACCESS_LONG[record["k"]],
            address=record["a"],
            where=_dec_where(record["w"]),
            ip=record["ip"],
            active_mask=frozenset(record["am"]),
            scope=Scope(record.get("sc", int(Scope.DEVICE))),
            atomic_op=AtomicOp(record["op"]) if "op" in record else None,
            value_stored=record.get("vs"),
            value_loaded=record.get("vl"),
            compare=record.get("cmp"),
            batch=record["b"],
        )
    if kind == "y":
        return SyncEvent(
            kind=_SYNC_LONG[record["k"]],
            where=_dec_where(record["w"]),
            ip=record["ip"],
            active_mask=frozenset(record["am"]),
            scope=Scope(record.get("sc", int(Scope.DEVICE))),
            batch=record["b"],
        )
    if kind == "end":
        return KernelEndEvent(
            kernel_name=record["k"],
            timed_out=record["to"],
            native_parallel=record["np"],
            native_serial=record["ns"],
            batches=record["ba"],
            instructions=record["in"],
        )
    raise ValueError(f"unknown trace record type {kind!r}")


# ---------------------------------------------------------------------------
# The trace container
# ---------------------------------------------------------------------------


class Trace:
    """An ordered stream of typed events, serializable to JSONL."""

    def __init__(self, events: Iterable = ()):
        self.events: List = list(events)
        #: Set by ``load(salvage=True)`` when the file was truncated.
        self.corruption: Optional[TraceCorruptionError] = None

    def append(self, event) -> None:
        self.events.append(event)

    def extend(self, events: Iterable) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator:
        return iter(self.events)

    @property
    def gpu_config(self) -> Optional[GPUConfig]:
        """The recorded device configuration (the trace header), if any."""
        for event in self.events:
            if isinstance(event, GPUConfig):
                return event
        return None

    def runs(self) -> List[Tuple[int, List]]:
        """Split the stream at :class:`RunMarker` boundaries.

        Returns ``(seed, events)`` pairs, markers and the header excluded.
        A trace recorded without markers is one run with seed 0.
        """
        segments: List[Tuple[int, List]] = []
        current: Optional[List] = None
        seed = 0
        preamble: List = []
        for event in self.events:
            if isinstance(event, GPUConfig):
                continue
            if isinstance(event, RunMarker):
                if current is not None:
                    segments.append((seed, current))
                seed, current = event.seed, []
                continue
            if current is None:
                preamble.append(event)
            else:
                current.append(event)
        if current is not None:
            segments.append((seed, current))
        if preamble:
            # Events before any marker form an implicit first run.
            segments.insert(0, (0, preamble))
        return segments

    # -- serialization --------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines (one record per line)."""
        return "\n".join(
            json.dumps(encode_event(e), separators=(",", ":"))
            for e in self.events
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        return cls(
            decode_event(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        )

    def save(self, path) -> None:
        """Write the trace to ``path``.

        The extension picks the codec: ``.ctr`` / ``.ctr.gz`` write the
        columnar container (:mod:`repro.engine.coltrace`), anything else
        the JSONL codec (gzipped when it ends in ``.gz``).
        """
        if str(path).endswith((".ctr", ".ctr.gz")):
            from repro.engine.coltrace import save_columnar

            save_columnar(self.events, path)
            return
        opener = gzip.open if str(path).endswith(".gz") else open
        with opener(path, "wt", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(
                    json.dumps(encode_event(event), separators=(",", ":"))
                )
                handle.write("\n")

    @classmethod
    def load(cls, path, salvage: bool = False) -> "Trace":
        """Read a trace written by :meth:`save`.

        A truncated or corrupt file (a crash mid-record, a bad byte, a
        clipped gzip stream) raises :class:`TraceCorruptionError` carrying
        the line number and the byte offset of the last intact record.
        With ``salvage=True`` the intact prefix is returned instead — the
        corruption details are attached as ``trace.corruption`` so replay
        consumers can tell a salvaged trace from a complete one.

        ``.ctr`` / ``.ctr.gz`` paths read the columnar container with the
        same salvage contract (the recovery granule is a chunk of rows
        rather than a line; the error's ``line`` is the block ordinal).
        """
        if str(path).endswith((".ctr", ".ctr.gz")):
            from repro.engine.coltrace import read_events

            events, corruption = read_events(path, salvage=salvage)
            if corruption is not None:
                get_logger("trace").warning(
                    "salvaged %d event(s) from %s (%s)",
                    len(events), path, corruption,
                )
            trace = cls(events)
            trace.corruption = corruption
            return trace
        opener = gzip.open if str(path).endswith(".gz") else open
        events: List = []
        line_number = 0
        last_good_offset = 0
        corruption: Optional[TraceCorruptionError] = None
        cap = line_limit()
        try:
            with opener(path, "rt", encoding="utf-8") as handle:
                while True:
                    # Bounded reads: a decompression bomb or corrupt
                    # length field cannot materialize an arbitrarily
                    # long "line" before the cap is checked.
                    line = handle.readline(cap + 1)
                    if not line:
                        break
                    line_number += 1
                    stripped = line.strip()
                    if stripped:
                        try:
                            if len(line) > cap:
                                raise ValueError(
                                    f"line exceeds the {cap}-byte "
                                    f"decoder limit"
                                )
                            events.append(decode_event(json.loads(stripped)))
                        except (
                            json.JSONDecodeError, KeyError, ValueError,
                            TypeError, IndexError, RecursionError,
                            ConfigError,
                        ) as exc:
                            corruption = TraceCorruptionError(
                                path, line_number, last_good_offset,
                                f"{type(exc).__name__}: {exc}",
                                events_recovered=len(events),
                            )
                            break
                    last_good_offset += len(line.encode("utf-8"))
        except (
            EOFError, UnicodeDecodeError, gzip.BadGzipFile, zlib.error,
            OSError,
        ) as exc:
            # A clipped gzip stream, corrupt deflate bytes (zlib.error
            # bypasses BadGzipFile), or undecodable text surfaces from
            # the reader itself, not from a parsed line.
            corruption = TraceCorruptionError(
                path, line_number + 1, last_good_offset,
                f"{type(exc).__name__}: {exc}",
                events_recovered=len(events),
            )
        if corruption is not None:
            if not salvage:
                raise corruption
            get_logger("trace").warning(
                "salvaged %d event(s) from %s (%s)",
                len(events), path, corruption,
            )
            trace = cls(events)
            trace.corruption = corruption
            return trace
        return cls(events)


def stream_events(path) -> Iterator:
    """Lazily yield a saved trace's events without loading it whole.

    Dispatches on extension like :meth:`Trace.load`: columnar paths
    decode chunk by chunk, JSONL paths line by line.  Corruption raises
    :class:`TraceCorruptionError` mid-iteration (no salvage mode — lazy
    consumers that want salvage should use ``Trace.load``).
    """
    if str(path).endswith((".ctr", ".ctr.gz")):
        from repro.engine.coltrace import stream_events as stream_columnar

        yield from stream_columnar(path)
        return
    opener = gzip.open if str(path).endswith(".gz") else open
    line_number = 0
    last_good_offset = 0
    cap = line_limit()
    try:
        with opener(path, "rt", encoding="utf-8") as handle:
            while True:
                line = handle.readline(cap + 1)
                if not line:
                    break
                line_number += 1
                stripped = line.strip()
                if stripped:
                    try:
                        if len(line) > cap:
                            raise ValueError(
                                f"line exceeds the {cap}-byte decoder limit"
                            )
                        yield decode_event(json.loads(stripped))
                    except (
                        json.JSONDecodeError, KeyError, ValueError,
                        TypeError, IndexError, RecursionError,
                        ConfigError,
                    ) as exc:
                        raise TraceCorruptionError(
                            path, line_number, last_good_offset,
                            f"{type(exc).__name__}: {exc}",
                        ) from exc
                last_good_offset += len(line.encode("utf-8"))
    except (
        EOFError, UnicodeDecodeError, gzip.BadGzipFile, zlib.error, OSError,
    ) as exc:
        raise TraceCorruptionError(
            path, line_number + 1, last_good_offset,
            f"{type(exc).__name__}: {exc}",
        ) from exc


# ---------------------------------------------------------------------------
# The recording sink
# ---------------------------------------------------------------------------


class TraceSink(Tool):
    """A zero-overhead sink recording the full typed stream into a Trace.

    Attach with ``device.add_sink(TraceSink())`` (or ``add_tool``; it
    charges nothing either way).  The device configuration is written as a
    header on attach, so the trace is self-contained.
    """

    name = "trace"

    def __init__(self, trace: Optional[Trace] = None, header: bool = True):
        self.trace = trace if trace is not None else Trace()
        self._header = header

    def attach(self, device) -> None:
        if self._header:
            self.trace.append(device.config)
            self._header = False

    def mark_run(self, seed: int) -> None:
        """Insert a run boundary (fresh device/tool semantics on replay)."""
        self.trace.append(RunMarker(seed))

    def on_alloc(self, allocation) -> None:
        self.trace.append(AllocEvent.of(allocation))

    def on_launch_begin(self, launch: LaunchInfo) -> None:
        self.trace.append(
            LaunchEvent(
                kernel_name=launch.kernel_name,
                grid_dim=launch.grid_dim,
                block_dim=launch.block_dim,
                warp_size=launch.warp_size,
                warps_per_block=launch.warps_per_block,
                num_threads=launch.num_threads,
                seed=launch.seed,
                static_instruction_count=launch.static_instruction_count,
                parallelism=launch.timing.parallelism,
            )
        )

    def on_memory(self, event, launch) -> None:
        self.trace.append(event)

    def on_sync(self, event, launch) -> None:
        self.trace.append(event)

    def on_kernel_end(self, run, launch) -> None:
        native = launch.timing.accounts[Category.NATIVE]
        self.trace.append(
            KernelEndEvent(
                kernel_name=run.kernel_name,
                timed_out=run.timed_out,
                native_parallel=native.parallel,
                native_serial=native.serial,
                batches=run.batches,
                instructions=run.instructions,
            )
        )
