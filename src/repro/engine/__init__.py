"""The event-pipeline engine: execution decoupled from detection.

The engine makes the instrumented event stream a first-class artifact
instead of an implicit callback side effect:

- :mod:`repro.engine.bus` — the :class:`EventBus` the device publishes
  typed events into, with pluggable sinks (every existing
  :class:`~repro.instrument.nvbit.Tool` is already sink-shaped) and the
  :class:`ToolSink` adapter adding failure isolation + per-sink timing;
- :mod:`repro.engine.trace` — the trace codec: capture one execution to a
  compact JSONL (optionally gzipped) record stream;
- :mod:`repro.engine.replay` — re-drive any detector over a recorded
  trace deterministically, without re-simulating the GPU;
- :mod:`repro.engine.fanout` — one execution pass feeding N detectors
  simultaneously, each with its own timing accounting;
- :mod:`repro.engine.parallel` — the multiprocessing suite executor
  behind the experiment drivers' ``--workers N`` flag.

Submodules that depend on :mod:`repro.workloads` are imported lazily to
keep ``gpu.device -> engine.bus`` cycle-free.
"""

from __future__ import annotations

from repro.engine.bus import EventBus, ToolSink
from repro.engine.trace import Trace, TraceSink, RunMarker

__all__ = [
    "EventBus",
    "ToolSink",
    "Trace",
    "TraceSink",
    "RunMarker",
    "capture_workload",
    "replay",
    "replay_workload",
    "ReplayDevice",
    "run_workload_fanout",
    "parallel_map",
]

_LAZY = {
    "capture_workload": "repro.engine.replay",
    "replay": "repro.engine.replay",
    "replay_workload": "repro.engine.replay",
    "ReplayDevice": "repro.engine.replay",
    "run_workload_fanout": "repro.engine.fanout",
    "parallel_map": "repro.engine.parallel",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
