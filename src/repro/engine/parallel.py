"""The multiprocessing executor behind the suite drivers' ``--workers``.

One helper: :func:`parallel_map`, an order-preserving map over a list of
picklable tasks.  ``chunksize=1`` keeps scheduling granular (workload ×
seed cells vary wildly in cost) and the returned list is in input order,
so callers merge results deterministically — the parallel path produces
byte-identical merged output to the serial one.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(fn: Callable[[T], R], items: Sequence[T], workers: int) -> List[R]:
    """Map ``fn`` over ``items`` using up to ``workers`` processes.

    Falls back to an inline loop when parallelism cannot help (one worker
    or at most one item).  Prefers the ``fork`` start method (cheap, no
    re-import) and uses ``spawn`` where fork is unavailable; either way
    ``fn`` and each item must be picklable module-level objects.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(method)
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items, chunksize=1)
