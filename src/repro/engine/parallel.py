"""The multiprocessing executor behind the suite drivers' ``--workers``.

One helper: :func:`parallel_map`, an order-preserving map over a list of
picklable tasks.  Cells are handed to workers one at a time (scheduling
stays granular — workload × seed cells vary wildly in cost) and the
returned list is in input order, so callers merge results
deterministically — the parallel path produces byte-identical merged
output to the serial one.

Unlike a plain ``Pool``, the executor *supervises* its workers, so suite
runs survive their environment:

- **soft timeout** — a cell silent for ``soft_timeout`` seconds triggers
  a structured stall warning naming the cell (diagnostic only);
- **hard timeout** (``--cell-timeout`` / ``IGUARD_CELL_TIMEOUT``) — a
  cell running past the deadline has its worker killed and the cell
  resubmitted;
- **dead-worker detection** — a worker that dies mid-cell (segfault,
  OOM-kill, injected chaos crash) is detected, replaced, and its cell
  resubmitted;
- **bounded retries** — every failure path (crash, kill, in-worker
  exception) retries the cell up to ``max_retries`` times with
  exponential backoff plus deterministic jitter, then raises
  :class:`~repro.errors.RetryExhaustedError`; retry counts surface in
  ``HOT`` metrics.

Observability rides the map without changing its contract: every task is
wrapped in a picklable :class:`_InstrumentedCall` that snapshots the
worker's metrics registry delta and drains its span tracer per cell, so
``--metrics-out``/``--trace-out`` aggregate across ``--workers N``
exactly like a serial run.  The same wrapper is where
:mod:`repro.faults.chaos` injects worker faults when ``IGUARD_CHAOS`` is
set.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
from dataclasses import dataclass, field
from time import perf_counter, sleep, time as wall_clock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.common.rng import SplitMix64
from repro.errors import RetryExhaustedError, WorkerCrashError
from repro.faults import chaos
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.metrics import HOT
from repro.obs.spans import TRACER, now_us
from repro.obs.telemetry import HEARTBEATS

T = TypeVar("T")
R = TypeVar("R")

#: Seconds a cell may stay silent before a stall warning is logged.
DEFAULT_SOFT_TIMEOUT = 120.0
#: Seconds between progress heartbeats on multi-cell runs.
HEARTBEAT_INTERVAL = 10.0
#: Retries per cell after its first attempt fails.
DEFAULT_MAX_RETRIES = 2
#: First-retry backoff in seconds (doubles per retry, deterministic jitter).
DEFAULT_BACKOFF_BASE = 0.1
#: Supervisor poll interval while no results are arriving.
_POLL_SECONDS = 0.02

#: Environment default for the hard per-cell timeout (``--cell-timeout``).
CELL_TIMEOUT_ENV = "IGUARD_CELL_TIMEOUT"


def default_cell_timeout() -> Optional[float]:
    """The ``IGUARD_CELL_TIMEOUT`` default, or None when unset."""
    raw = os.environ.get(CELL_TIMEOUT_ENV, "")
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class _CellResult:
    """One task's value plus the worker-side observability payload."""

    value: Any
    pid: int
    start_us: float
    seconds: float
    spans: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None


class _InstrumentedCall:
    """Picklable wrapper executing one task inside a worker process.

    The worker inherits the parent's enabled flags (fork) or re-reads the
    ``IGUARD_METRICS``/``IGUARD_TRACE`` environment (spawn).  Each call
    starts from a clean slate — the inherited registry contents and any
    inherited tracer events are discarded — so the returned snapshot is
    exactly this cell's delta and the parent can merge deltas from all
    workers without double counting.

    Chaos faults (``IGUARD_CHAOS``) are injected here, before the cell
    body runs: a crashed or flaked attempt loses the whole cell, exactly
    like a real mid-cell failure.
    """

    def __init__(self, fn: Callable, label: Callable[[Any], str] = str):
        self.fn = fn
        self.label = label

    def __call__(self, item, attempt: int = 1):
        chaos.maybe_inject(self.label(item), attempt)
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.reset()
        if TRACER.enabled:
            TRACER.drain()
        start_us = now_us()
        start = perf_counter()
        value = self.fn(item)
        seconds = perf_counter() - start
        result = _CellResult(
            value=value,
            pid=os.getpid(),
            start_us=start_us,
            seconds=seconds,
        )
        if TRACER.enabled:
            TRACER.add_complete(
                f"cell:{self.label(item)}",
                start_us,
                seconds * 1e6,
                cat="cell",
                tid=0,
            )
            result.spans = TRACER.drain()
        if registry.enabled:
            result.metrics = registry.snapshot()
        return result


def _absorb(result: _CellResult) -> Any:
    """Fold one worker cell's observability payload into this process."""
    if HOT.enabled:
        HOT.parallel_cells.inc()
        HOT.parallel_cell_seconds.observe(result.seconds)
        registry = obs_metrics.get_registry()
        if result.metrics:
            registry.merge_snapshot(result.metrics)
        registry.counter(f"parallel.worker.{result.pid}.cells").inc()
        registry.counter(f"parallel.worker.{result.pid}.seconds").inc(
            result.seconds
        )
    if TRACER.enabled and result.spans:
        TRACER.name_process(result.pid, f"worker {result.pid}")
        TRACER.absorb(result.spans)
    return result.value


# ---------------------------------------------------------------------------
# The supervised worker team
# ---------------------------------------------------------------------------


def _team_worker(call: _InstrumentedCall, task_q, result_q) -> None:
    """Worker loop: pull ``(index, attempt, item)`` jobs until sentinel.

    Failures are reported as ``("error", ...)`` messages rather than
    letting the process die: only genuine crashes (or injected chaos
    crashes) kill the worker, which is exactly the signal the supervisor's
    liveness check exists for.
    """
    while True:
        job = task_q.get()
        if job is None:
            return
        index, attempt, item = job
        try:
            value = call(item, attempt)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            result_q.put(
                ("error", index, attempt, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put(("done", index, attempt, value))


class _Worker:
    """A supervised worker process with private task/result queues.

    Queues are per-worker on purpose: killing a process mid-``put`` can
    corrupt the underlying pipe, and a private pipe is simply discarded
    with its worker instead of poisoning the whole run.
    """

    __slots__ = ("process", "task_q", "result_q", "current", "started", "warned")

    def __init__(self, ctx, call: _InstrumentedCall):
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.process = ctx.Process(
            target=_team_worker,
            args=(call, self.task_q, self.result_q),
            daemon=True,
        )
        self.process.start()
        #: The in-flight (index, attempt), or None when idle.
        self.current: Optional[Tuple[int, int]] = None
        self.started = 0.0
        self.warned = 0.0

    def assign(self, index: int, attempt: int, item, now: float) -> None:
        self.task_q.put((index, attempt, item))
        self.current = (index, attempt)
        self.started = now
        self.warned = now

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - kill escalation
            self.process.kill()
            self.process.join(timeout=1.0)

    def shutdown(self) -> None:
        try:
            self.task_q.put_nowait(None)
        except Exception:  # pragma: no cover - queue already broken
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()


class _Supervisor:
    """Drives a team of workers over one task list with retries."""

    def __init__(
        self,
        ctx,
        call: _InstrumentedCall,
        items: List,
        workers: int,
        soft_timeout: float,
        hard_timeout: Optional[float],
        max_retries: int,
        backoff_base: float,
        on_result: Optional[Callable[[int, Any], None]],
    ):
        self.ctx = ctx
        self.call = call
        self.items = items
        self.soft_timeout = soft_timeout
        self.hard_timeout = hard_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.on_result = on_result
        self.logger = get_logger("parallel")
        #: Deterministic jitter: seeded, not wall-clock dependent.
        self.rng = SplitMix64(0xC4A05C4A05)
        self.results: Dict[int, Any] = {}
        self.pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(items))]
        self.delayed: List[Tuple[float, int, int]] = []
        self.team = [
            _Worker(ctx, call) for _ in range(min(workers, len(items)))
        ]

    # -- failure handling ----------------------------------------------

    def _label(self, index: int) -> str:
        return self.call.label(self.items[index])

    def _retry(self, index: int, attempt: int, reason: str, now: float) -> None:
        """Resubmit a failed cell with backoff, or give up."""
        if index in self.results:
            # The cell actually completed (result raced the failure
            # signal, e.g. a kill landing just after the final put).
            return
        if attempt > self.max_retries:
            raise RetryExhaustedError(self._label(index), attempt, reason)
        if HOT.enabled:
            HOT.parallel_retries.inc()
        backoff = self.backoff_base * (2 ** (attempt - 1))
        backoff *= 1.0 + 0.25 * self.rng.random()
        self.logger.warning(
            "cell %s failed (%s); retry %d/%d in %.2fs",
            self._label(index), reason, attempt, self.max_retries, backoff,
        )
        self.delayed.append((now + backoff, index, attempt + 1))

    def _replace(self, worker: _Worker) -> _Worker:
        worker.kill()
        fresh = _Worker(self.ctx, self.call)
        self.team[self.team.index(worker)] = fresh
        return fresh

    # -- one supervision pass ------------------------------------------

    def _drain(self, worker: _Worker) -> bool:
        progressed = False
        while True:
            try:
                message = worker.result_q.get_nowait()
            except queue_module.Empty:
                return progressed
            kind, index, attempt, payload = message
            worker.current = None
            progressed = True
            if HEARTBEATS.enabled:
                HEARTBEATS.finish_cell(worker.process.pid, ok=kind == "done")
            if kind == "done":
                if index not in self.results:
                    self.results[index] = _absorb(payload)
                    if self.on_result is not None:
                        self.on_result(index, self.results[index])
            else:
                self._retry(index, attempt, payload, perf_counter())

    def _check_health(self, worker: _Worker, now: float) -> None:
        current = worker.current
        if current is None:
            return
        index, attempt = current
        if not worker.process.is_alive():
            if HOT.enabled:
                HOT.parallel_worker_crashes.inc()
            crash = WorkerCrashError(
                f"worker pid {worker.process.pid} died (exit code "
                f"{worker.process.exitcode}) while running cell "
                f"{self._label(index)!r}"
            )
            self.logger.warning("%s", crash)
            worker.current = None
            if HEARTBEATS.enabled:
                HEARTBEATS.update(worker.process.pid, state="dead")
            self._replace(worker)
            self._retry(index, attempt, str(crash), now)
        elif (
            self.hard_timeout is not None
            and now - worker.started > self.hard_timeout
        ):
            if HOT.enabled:
                HOT.parallel_hard_timeouts.inc()
            self.logger.warning(
                "cell %s exceeded the hard timeout (%.0fs); killing its "
                "worker and resubmitting",
                self._label(index), self.hard_timeout,
            )
            worker.current = None
            if HEARTBEATS.enabled:
                HEARTBEATS.update(worker.process.pid, state="dead")
            self._replace(worker)
            self._retry(index, attempt, f"hard timeout {self.hard_timeout}s", now)
        elif now - worker.warned >= self.soft_timeout:
            worker.warned = now
            if HOT.enabled:
                HOT.parallel_soft_timeouts.inc()
            self.logger.warning(
                "cell %s has produced no result for %.0fs — still waiting "
                "(soft timeout, not killed)",
                self._label(index), now - worker.started,
            )

    # -- the loop -------------------------------------------------------

    def run(self) -> List:
        num_items = len(self.items)
        try:
            return self._run_loop(num_items)
        except (RetryExhaustedError, WorkerCrashError) as exc:
            # Salvage contract: hand callers everything that *did*
            # complete, so a suite run can emit a partial report with a
            # failed_cells block instead of dying report-less.
            exc.partial_results = dict(self.results)
            exc.total_items = num_items
            raise

    def _run_loop(self, num_items: int) -> List:
        last_heartbeat = perf_counter()
        try:
            while len(self.results) < num_items:
                now = perf_counter()
                if self.delayed:
                    ready = [d for d in self.delayed if d[0] <= now]
                    if ready:
                        self.delayed = [d for d in self.delayed if d[0] > now]
                        self.pending.extend((i, a) for _, i, a in ready)
                for worker in list(self.team):
                    while worker.current is None and self.pending:
                        if not worker.process.is_alive():
                            worker = self._replace(worker)  # pragma: no cover
                        index, attempt = self.pending.pop(0)
                        if index in self.results:
                            continue  # superseded by a raced completion
                        worker.assign(index, attempt, self.items[index], now)
                        if HEARTBEATS.enabled:
                            HEARTBEATS.update(
                                worker.process.pid,
                                state="running",
                                cell=self._label(index),
                                attempt=attempt,
                                started=wall_clock(),
                            )
                progressed = False
                for worker in list(self.team):
                    progressed |= self._drain(worker)
                for worker in list(self.team):
                    self._check_health(worker, perf_counter())
                now = perf_counter()
                if now - last_heartbeat >= HEARTBEAT_INTERVAL:
                    last_heartbeat = now
                    self.logger.info(
                        "progress: %d/%d cells complete",
                        len(self.results), num_items,
                    )
                if not progressed:
                    sleep(_POLL_SECONDS)
        finally:
            for worker in self.team:
                if HEARTBEATS.enabled:
                    HEARTBEATS.update(worker.process.pid, state="exited")
                worker.shutdown()
        return [self.results[i] for i in range(num_items)]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    soft_timeout: float = DEFAULT_SOFT_TIMEOUT,
    label: Callable[[Any], str] = str,
    hard_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    backoff_base: float = DEFAULT_BACKOFF_BASE,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` using up to ``workers`` processes.

    Falls back to an inline loop when parallelism cannot help (one worker
    or at most one item).  Prefers the ``fork`` start method (cheap, no
    re-import) and uses ``spawn`` where fork is unavailable; either way
    ``fn`` and each item must be picklable module-level objects.

    ``soft_timeout`` bounds how long a cell may stay silent before a
    stall warning names it; ``hard_timeout`` (default: the
    ``IGUARD_CELL_TIMEOUT`` environment variable, unset = never) kills
    the cell's worker and resubmits; any failed attempt is retried up to
    ``max_retries`` times with exponential backoff before
    :class:`~repro.errors.RetryExhaustedError`.  ``label`` renders an
    item for log lines and cell span names; ``on_result(index, value)``
    fires in the parent as each cell completes (in completion order),
    which is how the checkpoint journal records cells incrementally.
    """
    items = list(items)
    if hard_timeout is None:
        hard_timeout = default_cell_timeout()
    if workers <= 1 or len(items) <= 1:
        # Inline: no worker process, so no registry reset/merge — the
        # parent registry accumulates directly; only timing is added.
        results = []
        for index, item in enumerate(items):
            if not (HOT.enabled or TRACER.enabled):
                value = fn(item)
            else:
                start_us = now_us()
                start = perf_counter()
                value = fn(item)
                seconds = perf_counter() - start
                if HOT.enabled:
                    HOT.parallel_cells.inc()
                    HOT.parallel_cell_seconds.observe(seconds)
                if TRACER.enabled:
                    TRACER.add_complete(
                        f"cell:{label(item)}", start_us, seconds * 1e6,
                        cat="cell", tid=0,
                    )
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(method)
    supervisor = _Supervisor(
        ctx,
        _InstrumentedCall(fn, label),
        items,
        workers,
        soft_timeout=soft_timeout,
        hard_timeout=hard_timeout,
        max_retries=max_retries,
        backoff_base=backoff_base,
        on_result=on_result,
    )
    return supervisor.run()
