"""The multiprocessing executor behind the suite drivers' ``--workers``.

One helper: :func:`parallel_map`, an order-preserving map over a list of
picklable tasks.  ``chunksize=1`` keeps scheduling granular (workload ×
seed cells vary wildly in cost) and the returned list is in input order,
so callers merge results deterministically — the parallel path produces
byte-identical merged output to the serial one.

Observability rides the map without changing its contract:

- every task is wrapped in a picklable :class:`_InstrumentedCall` that
  snapshots the worker's metrics registry delta and drains its span
  tracer per cell, so ``--metrics-out``/``--trace-out`` aggregate across
  ``--workers N`` exactly like a serial run;
- results are consumed incrementally with a **soft timeout**: a cell
  that produces nothing for ``soft_timeout`` seconds triggers a
  structured stall warning (naming the cell) instead of a silent hang,
  and a periodic heartbeat logs ``k/n`` progress on long runs.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.metrics import HOT
from repro.obs.spans import TRACER, now_us

T = TypeVar("T")
R = TypeVar("R")

#: Seconds a cell may stay silent before a stall warning is logged.
DEFAULT_SOFT_TIMEOUT = 120.0
#: Seconds between progress heartbeats on multi-cell runs.
HEARTBEAT_INTERVAL = 10.0


@dataclass
class _CellResult:
    """One task's value plus the worker-side observability payload."""

    value: Any
    pid: int
    start_us: float
    seconds: float
    spans: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None


class _InstrumentedCall:
    """Picklable wrapper executing one task inside a worker process.

    The worker inherits the parent's enabled flags (fork) or re-reads the
    ``IGUARD_METRICS``/``IGUARD_TRACE`` environment (spawn).  Each call
    starts from a clean slate — the inherited registry contents and any
    inherited tracer events are discarded — so the returned snapshot is
    exactly this cell's delta and the parent can merge deltas from all
    workers without double counting.
    """

    def __init__(self, fn: Callable, label: Callable[[Any], str] = str):
        self.fn = fn
        self.label = label

    def __call__(self, item):
        registry = obs_metrics.get_registry()
        if registry.enabled:
            registry.reset()
        if TRACER.enabled:
            TRACER.drain()
        start_us = now_us()
        start = perf_counter()
        value = self.fn(item)
        seconds = perf_counter() - start
        result = _CellResult(
            value=value,
            pid=os.getpid(),
            start_us=start_us,
            seconds=seconds,
        )
        if TRACER.enabled:
            TRACER.add_complete(
                f"cell:{self.label(item)}",
                start_us,
                seconds * 1e6,
                cat="cell",
                tid=0,
            )
            result.spans = TRACER.drain()
        if registry.enabled:
            result.metrics = registry.snapshot()
        return result


def _absorb(result: _CellResult) -> Any:
    """Fold one worker cell's observability payload into this process."""
    if HOT.enabled:
        HOT.parallel_cells.inc()
        HOT.parallel_cell_seconds.observe(result.seconds)
        registry = obs_metrics.get_registry()
        if result.metrics:
            registry.merge_snapshot(result.metrics)
        registry.counter(f"parallel.worker.{result.pid}.cells").inc()
        registry.counter(f"parallel.worker.{result.pid}.seconds").inc(
            result.seconds
        )
    if TRACER.enabled and result.spans:
        TRACER.name_process(result.pid, f"worker {result.pid}")
        TRACER.absorb(result.spans)
    return result.value


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    soft_timeout: float = DEFAULT_SOFT_TIMEOUT,
    label: Callable[[Any], str] = str,
) -> List[R]:
    """Map ``fn`` over ``items`` using up to ``workers`` processes.

    Falls back to an inline loop when parallelism cannot help (one worker
    or at most one item).  Prefers the ``fork`` start method (cheap, no
    re-import) and uses ``spawn`` where fork is unavailable; either way
    ``fn`` and each item must be picklable module-level objects.

    ``soft_timeout`` bounds how long a single cell may stay silent before
    a stall warning names it (the run keeps waiting — the timeout is
    diagnostic, not a kill); ``label`` renders an item for log lines and
    cell span names.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        # Inline: no worker process, so no registry reset/merge — the
        # parent registry accumulates directly; only timing is added.
        results = []
        for item in items:
            if not (HOT.enabled or TRACER.enabled):
                results.append(fn(item))
                continue
            start_us = now_us()
            start = perf_counter()
            value = fn(item)
            seconds = perf_counter() - start
            if HOT.enabled:
                HOT.parallel_cells.inc()
                HOT.parallel_cell_seconds.observe(seconds)
            if TRACER.enabled:
                TRACER.add_complete(
                    f"cell:{label(item)}", start_us, seconds * 1e6,
                    cat="cell", tid=0,
                )
            results.append(value)
        return results
    logger = get_logger("parallel")
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(method)
    call = _InstrumentedCall(fn, label)
    results: List[R] = []
    num_items = len(items)
    with ctx.Pool(processes=min(workers, num_items)) as pool:
        iterator = pool.imap(call, items, chunksize=1)
        last_heartbeat = perf_counter()
        for index in range(num_items):
            stalled_for = 0.0
            while True:
                try:
                    wrapped = iterator.next(timeout=soft_timeout)
                    break
                except multiprocessing.TimeoutError:
                    stalled_for += soft_timeout
                    if HOT.enabled:
                        HOT.parallel_soft_timeouts.inc()
                    logger.warning(
                        "cell %d/%d (%s) has produced no result for %.0fs "
                        "— still waiting (soft timeout, not killed)",
                        index + 1, num_items, label(items[index]), stalled_for,
                    )
            results.append(_absorb(wrapped))
            now = perf_counter()
            if now - last_heartbeat >= HEARTBEAT_INTERVAL:
                last_heartbeat = now
                logger.info(
                    "progress: %d/%d cells complete", index + 1, num_items
                )
    return results
