"""Record/replay: re-drive detectors from a trace, no GPU simulation.

Capture is cheap — a :class:`~repro.engine.trace.TraceSink` rides one
execution pass as a zero-overhead observer — and replay is deterministic:
:func:`replay` walks the recorded stream and publishes each event on a
fresh bus, so any detector analyses *exactly* the execution that was
captured.  Because every tool in this codebase is a pure observer (the
scheduler interleaving depends only on the seed, never on attached
tools), a trace captured natively is bit-for-bit the stream a live
detector run would have seen: replayed race sites, types, and Figure 13
timing breakdowns match live runs exactly.

:class:`ReplayDevice` is the minimal device stand-in detectors read
through ``launch.device``: the hardware config and an address map rebuilt
from the recorded allocations (for metadata sizing and ``name[index]``
race descriptions).  Tool failures replicate organically — Barracuda's
memory reservation, event-budget timeout, and unsupported-feature checks
fire during replay dispatch exactly where they fired live.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional

from repro.engine.bus import EventBus
from repro.engine.trace import RunMarker, Trace, TraceSink
from repro.errors import (
    DeadlockError,
    OutOfMemoryError,
    TimeoutError_,
    UnsupportedFeatureError,
)
from repro.faults import quarantine
from repro.gpu.arch import GPUConfig, TITAN_RTX
from repro.gpu.costs import CostParams, DEFAULT_COSTS
from repro.gpu.device import Device, KernelRun
from repro.gpu.events import (
    AllocEvent,
    KernelEndEvent,
    LaunchEvent,
    MemoryEvent,
    SyncEvent,
)
from repro.gpu.memory import WORD_BYTES, Allocation, GlobalMemory
from repro.instrument.nvbit import LaunchInfo, Tool
from repro.instrument.timing import Category, TimingBreakdown
from repro.obs.metrics import HOT
from repro.workloads.base import SIM_GPU, Workload, WorkloadResult


class ReplayMemory(GlobalMemory):
    """An address map rebuilt from recorded allocations, no backing data.

    Detectors only read the map — capacity, bytes allocated, and
    ``describe()`` for race reports — so replay restores allocations at
    their recorded bases without materializing contents.
    """

    def restore(self, event: AllocEvent) -> Allocation:
        allocation = Allocation(
            name=event.name, base=event.base, num_words=event.num_words
        )
        self._allocations.append(allocation)
        self._bytes_allocated += allocation.num_bytes
        self._bump = max(self._bump, allocation.end + WORD_BYTES)
        return allocation


class ReplayDevice:
    """The device stand-in a replayed launch hangs off ``launch.device``.

    Mirrors the :class:`~repro.gpu.device.Device` surface detectors
    actually touch: ``config``, ``costs``, ``memory``, the event ``bus``
    (with the same ``tools`` alias), and completed ``runs``.
    """

    def __init__(
        self,
        config: GPUConfig = TITAN_RTX,
        costs: CostParams = DEFAULT_COSTS,
    ):
        self.config = config
        self.costs = costs
        self.memory = ReplayMemory(config.memory_bytes)
        self.bus = EventBus()
        self.tools: List[Tool] = self.bus.sinks
        self.runs: List[KernelRun] = []

    def add_tool(self, tool: Tool) -> Tool:
        return self.bus.add_sink(tool, self)

    def add_sink(self, sink):
        return self.bus.add_sink(sink, self)


def replay(
    events: Iterable,
    tools: Iterable[Tool] = (),
    config: Optional[GPUConfig] = None,
    device: Optional[ReplayDevice] = None,
) -> ReplayDevice:
    """Publish a recorded event stream to ``tools`` on a replay device.

    ``events`` is a :class:`~repro.engine.trace.Trace` or any iterable of
    typed stream records; a recorded :class:`~repro.gpu.arch.GPUConfig`
    header configures the device unless ``config`` or ``device`` is given.
    Tool failures (unsupported feature, OOM, detection timeout) propagate
    mid-stream exactly as they would mid-execution.

    Returns the device; detector state (races, timings) lives on the
    attached tools and ``device.runs``.
    """
    if device is None and config is None:
        if isinstance(events, (list, Trace)):
            # Materialized input: scan for the header without consuming.
            config = next(
                (e for e in events if isinstance(e, GPUConfig)), TITAN_RTX
            )
        else:
            # Lazy stream (a coltrace chunk generator, a JSONL line
            # reader): peek just past the preamble — the GPUConfig header
            # precedes the first run's events — then chain the buffer
            # back, so the stream is never materialized whole.
            iterator = iter(events)
            buffered: list = []
            for event in iterator:
                buffered.append(event)
                if isinstance(event, GPUConfig):
                    config = event
                    break
                if not isinstance(event, RunMarker):
                    break
            if config is None:
                config = TITAN_RTX
            events = itertools.chain(buffered, iterator)
    if device is None:
        device = ReplayDevice(config)
    for tool in tools:
        device.add_tool(tool)

    launch: Optional[LaunchInfo] = None
    for event in events:
        if isinstance(event, (GPUConfig, RunMarker)):
            continue
        if HOT.enabled:
            HOT.replay_events.inc()
        try:
            launch = _replay_one(device, event, launch)
        except (
            UnsupportedFeatureError, OutOfMemoryError, TimeoutError_,
            DeadlockError,
        ):
            # Policy signals propagate mid-stream exactly as they would
            # mid-execution (the docstring's contract).
            raise
        except Exception as exc:
            # Poison-event quarantine: one malformed record must not
            # abort a million-event replay.  poison() re-raises exempt
            # exceptions and overflows past the absorption budget.
            quarantine.poison(event, exc, "replay")
    return device


def _replay_one(device, event, launch: Optional[LaunchInfo]):
    """Dispatch one trace record; returns the (possibly new) launch."""
    if isinstance(event, AllocEvent):
        device.bus.publish_alloc(device.memory.restore(event))
    elif isinstance(event, LaunchEvent):
        launch = LaunchInfo(
            kernel_name=event.kernel_name,
            grid_dim=event.grid_dim,
            block_dim=event.block_dim,
            warp_size=event.warp_size,
            warps_per_block=event.warps_per_block,
            num_threads=event.num_threads,
            timing=TimingBreakdown(parallelism=event.parallelism),
            device=device,
            seed=event.seed,
            static_instruction_count=event.static_instruction_count,
        )
        device.bus.publish_launch_begin(launch)
    elif isinstance(event, MemoryEvent):
        device.bus.publish_memory(event, launch)
    elif isinstance(event, SyncEvent):
        device.bus.publish_sync(event, launch)
    elif isinstance(event, KernelEndEvent):
        # Rebuild the native account before finalizing tools: iGUARD's
        # end-of-launch charges are fractions of native time.
        launch.timing.charge(Category.NATIVE, event.native_parallel)
        launch.timing.charge(
            Category.NATIVE, event.native_serial, serial=True
        )
        if event.timed_out:
            device.bus.publish_timeout(launch)
        else:
            device.bus.publish_launch_end(launch)
        run = KernelRun(
            kernel_name=event.kernel_name,
            grid_dim=launch.grid_dim,
            block_dim=launch.block_dim,
            num_threads=launch.num_threads,
            batches=event.batches,
            instructions=event.instructions,
            timed_out=event.timed_out,
            timing=launch.timing,
        )
        device.runs.append(run)
        device.bus.publish_kernel_end(run, launch)
        launch = None
    else:
        raise TypeError(f"unexpected trace event {event!r}")
    return launch


def capture_workload(
    workload: Workload,
    seeds=None,
    config: GPUConfig = SIM_GPU,
) -> Trace:
    """Execute ``workload`` natively once per seed, recording the stream.

    The trace carries the device config header and a
    :class:`~repro.engine.trace.RunMarker` per seed, so
    :func:`replay_workload` can re-run any detector over it with the
    runner's fresh-device-per-seed semantics.  A deadlocking kernel (a
    legitimate racy outcome) simply truncates that seed's recording, the
    same way it aborts a live run.
    """
    seeds = tuple(seeds) if seeds is not None else workload.seeds
    trace = Trace([config])
    for seed in seeds:
        sink = TraceSink(trace, header=False)
        sink.mark_run(seed)
        device = Device(config)
        device.add_sink(sink)
        try:
            workload.run(device, seed)
        except DeadlockError:
            pass
    return trace


def replay_workload(
    trace: Trace,
    tool_factory,
    workload_name: str = "replay",
) -> WorkloadResult:
    """Run a detector over a captured workload trace.

    The merge semantics mirror :func:`repro.workloads.runner.run_workload`
    exactly — per-seed fresh device and tool, race sites unioned in seed
    order, timing averaged, and the unsupported/OOM/timeout statuses
    replicated from the tool's own failures during replay.
    """
    from repro.workloads.runner import (
        SeedOutcome,
        _collect_outcome,
        _merge_outcomes,
        detector_name,
    )

    name = detector_name(tool_factory)
    config = trace.gpu_config or SIM_GPU
    outcomes = []
    for _seed, events in trace.runs():
        device = ReplayDevice(config)
        tool = device.add_tool(tool_factory())
        status, detail = "ok", ""
        try:
            replay(events, device=device)
        except UnsupportedFeatureError as exc:
            outcomes.append(
                SeedOutcome(status="unsupported", detail=str(exc))
            )
            break
        except OutOfMemoryError as exc:
            outcomes.append(SeedOutcome(status="oom", detail=str(exc)))
            break
        except TimeoutError_ as exc:
            status, detail = "timeout", str(exc)
        outcomes.append(_collect_outcome(device, tool, status, detail))
        if status == "timeout":
            break
    return _merge_outcomes(workload_name, name, outcomes)
