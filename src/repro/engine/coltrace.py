"""Columnar trace container: structure-of-arrays event storage (``.ctr``).

The JSONL codec (:mod:`repro.engine.trace`) spends its replay budget in
``json.loads`` — one dict, one string scan, and a dozen key lookups per
event.  This module stores the same typed stream as *columns*: one numpy
array per event field, grouped by event type, so loading a chunk costs
O(fields) numpy reads instead of O(events) JSON parses, and batch
consumers (the sharded replay driver, the shard router) can compute over
whole columns vectorized before any per-event Python object exists.

File layout (``.ctr``; ``.ctr.gz`` is the same stream gzipped)::

    header line   {"format": "iguard-ctr", "version": 1, "events": N,
                   "chunk_rows": C}\\n
    chunk*        chunk header line
                  {"rows": r, "counts": {"m": ..., "y": ..., ...},
                   "strings": [new string-pool entries]}\\n
                  npy block: et uint8[r]     (event-type code per row)
                  npy blocks: one per column of each present type group

Columns are written as standard ``numpy.save``-style blocks
(``np.lib.format.write_array``) back to back in one stream, so both the
plain and gzipped forms read sequentially with no seeking.  Strings (ips,
kernel/alloc names, JSON-degraded payload values) live in a file-level
string pool; each chunk header carries only the entries first seen in
that chunk, and columns reference pool indices — decoded events share one
interned string object per distinct ip, exactly like the slotted-event
pooling of the live pipeline.

Salvage semantics match the JSONL codec's contract: a truncated or
corrupt file raises :class:`~repro.errors.TraceCorruptionError`, and
``salvage=True`` recovers the longest valid *chunk* prefix (columnar
rows are interleaved across blocks, so the chunk is the recovery
granule).  ``line`` in the error is the 1-based block ordinal (the file
header is block 1) and ``last_good_offset`` is the uncompressed stream
offset after the last intact chunk — the same meaning the JSONL reader
gives gzipped inputs.
"""

from __future__ import annotations

import gzip
import json
import zlib
from dataclasses import asdict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.common.budget import (
    MAX_POOL_STRINGS,
    block_limit,
    line_limit,
    mem_budget,
    pool_byte_limit,
)
from repro.errors import ConfigError, TraceCorruptionError
from repro.gpu.arch import GPUConfig
from repro.gpu.events import (
    AccessKind,
    AllocEvent,
    KernelEndEvent,
    LaunchEvent,
    MemoryEvent,
    SyncEvent,
    SyncKind,
)
from repro.gpu.ids import ThreadLocation
from repro.gpu.instructions import AtomicOp, Scope
from repro.obs.metrics import HOT

FORMAT_NAME = "iguard-ctr"
#: Bumped whenever the column schema changes incompatibly.
FORMAT_VERSION = 1
#: Default rows per chunk: large enough to amortize the per-chunk numpy
#: block overhead, small enough that replay never holds more than one
#: chunk of materialized events.
CHUNK_ROWS = 8192

#: Row event-type codes (the ``et`` column).
ET_GPU, ET_RUN, ET_ALLOC, ET_LAUNCH, ET_MEM, ET_SYNC, ET_END = range(7)

_ACCESS_CODES = {AccessKind.LOAD: 0, AccessKind.STORE: 1, AccessKind.ATOMIC: 2}
_ACCESS_BY_CODE = (AccessKind.LOAD, AccessKind.STORE, AccessKind.ATOMIC)
_SYNC_CODES = {
    SyncKind.SYNCTHREADS: 0, SyncKind.SYNCWARP: 1, SyncKind.FENCE: 2,
}
_SYNC_BY_CODE = (SyncKind.SYNCTHREADS, SyncKind.SYNCWARP, SyncKind.FENCE)
#: Atomic ops by wire code; 0 means "no atomic op" in the column.
_OP_BY_CODE = (None,) + tuple(AtomicOp)
_OP_CODES = {op: i for i, op in enumerate(_OP_BY_CODE) if op is not None}
_SCOPE_BY_CODE = tuple(Scope(v) for v in sorted(int(s) for s in Scope))

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: The multiplicative-mix router constants, mirrored from
#: :mod:`repro.core.sharding` (numpy-typed here so column-wide routing
#: wraps identically to the scalar hash).
_MIX64 = np.uint64(0x9E3779B97F4A7C15)
_SHIFT17 = np.uint64(17)


def is_columnar_path(path) -> bool:
    """Whether ``path`` names the columnar container by extension."""
    name = str(path)
    return name.endswith(".ctr") or name.endswith(".ctr.gz")


def _opener(path):
    return gzip.open if str(path).endswith(".gz") else open


def _write_block(handle, array) -> None:
    np.lib.format.write_array(handle, array, version=(1, 0), allow_pickle=False)


def _read_block(handle):
    """Read one 1-D column block with its declared size pre-validated.

    ``np.lib.format.read_array`` allocates whatever the npy header
    declares *before* reading a byte, so a fuzzed header claiming a
    terabyte column would OOM the process.  Validating the header's
    shape and byte count against the decoder budget first turns that
    into an ordinary :class:`TraceCorruptionError` (via the caller's
    ``ValueError`` catch).  The returned array is a read-only view of
    the block bytes; decode never mutates columns.
    """
    try:
        magic = np.lib.format.read_magic(handle)
        if magic == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif magic == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(f"unsupported npy block version {magic}")
    except (ValueError, EOFError, OSError):
        raise
    except Exception as exc:
        # numpy parses the header dict with a Python literal evaluator;
        # fuzzed header bytes surface as TokenError/SyntaxError/KeyError
        # and friends.  Normalize to the decoder's corruption type.
        raise ValueError(f"malformed npy block header: {exc!r}") from exc
    if dtype.hasobject:
        raise ValueError("object-dtype column block rejected")
    if fortran or not 1 <= len(shape) <= 2:
        raise ValueError(f"column block must be a 1/2-D C array, got {shape}")
    count = 1
    for dim in shape:
        if dim < 0:
            raise ValueError(f"column block declares shape {shape}")
        count *= int(dim)
    nbytes = count * dtype.itemsize
    cap = block_limit()
    if nbytes > cap:
        raise ValueError(
            f"column block declares {nbytes} bytes, over the "
            f"{cap}-byte decoder budget"
        )
    data = handle.read(nbytes)
    if len(data) != nbytes:
        raise EOFError(
            f"column block truncated: wanted {nbytes} bytes, "
            f"got {len(data)}"
        )
    return np.frombuffer(data, dtype=dtype).reshape(shape)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class _PoolWriter:
    """File-level string pool: dedupes and tracks per-chunk fresh entries.

    The dedup memo is the only structure a pathological stream (every IP
    string unique) can grow without bound on the *write* side, so it is
    capped by ``IGUARD_MEM_BUDGET``: past the budget the oldest memo
    entries are FIFO-evicted.  Eviction only forgets that a string was
    pooled — a re-encountered string is simply appended to the file pool
    again under a fresh index, so the container stays bit-exact to
    decode and only its dedup ratio degrades.
    """

    def __init__(self, byte_budget: Optional[int] = None):
        self._index: Dict[str, int] = {}
        self._fresh: List[str] = []
        #: Next pool index — monotonically increasing, never reused, so
        #: writer indices always match the reader's ever-growing pool
        #: list even after memo evictions.
        self._next = 0
        self._bytes = 0
        self._budget = byte_budget
        self.evictions = 0

    def add(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = self._next
            self._next += 1
            self._index[value] = index
            self._fresh.append(value)
            budget = self._budget
            if budget is not None:
                self._bytes += len(value)
                entries = self._index
                while self._bytes > budget and len(entries) > 1:
                    oldest = next(iter(entries))
                    if oldest == value:
                        break
                    del entries[oldest]
                    self._bytes -= len(oldest)
                    self.evictions += 1
                    if HOT.enabled:
                        HOT.pool_memo_evictions.inc()
        return index

    def take_fresh(self) -> List[str]:
        fresh, self._fresh = self._fresh, []
        return fresh


def _jsonable(value):
    """Mirror the JSONL codec's payload degradation (exotic -> ``repr``)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _encode_value(value, pool: _PoolWriter) -> Tuple[int, int]:
    """One optional event payload -> (tag, payload) column pair.

    Tag 0 = absent/None, 1 = int carried inline in the i64 payload,
    2 = payload is a pool index of the JSON-encoded value (bools, floats,
    strings, out-of-range ints, and ``repr``-degraded exotics).
    """
    if value is None:
        return 0, 0
    if type(value) is int and _I64_MIN <= value <= _I64_MAX:
        return 1, value
    return 2, pool.add(json.dumps(_jsonable(value)))


def _encode_mask(mask) -> int:
    bits = 0
    for lane in mask:
        if not 0 <= lane < 64:
            raise ValueError(
                f"active-mask lane {lane} does not fit the 64-bit "
                f"columnar mask (warp_size <= 64)"
            )
        bits |= 1 << lane
    return bits


def _where_row(where: ThreadLocation) -> Tuple[int, ...]:
    return (
        where.global_tid,
        where.block_id,
        where.tid_in_block,
        where.warp_id,
        where.lane,
        where.warp_in_block,
    )


def write_columnar(handle, events, chunk_rows: int = CHUNK_ROWS) -> None:
    """Write the typed event stream to an open binary ``handle``."""
    events = list(events)
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "events": len(events),
        "chunk_rows": chunk_rows,
    }
    handle.write(json.dumps(header, separators=(",", ":")).encode("utf-8"))
    handle.write(b"\n")
    pool = _PoolWriter(byte_budget=mem_budget())
    for start in range(0, len(events), max(1, chunk_rows)):
        _write_chunk(handle, events[start:start + chunk_rows], pool)


def _write_chunk(handle, events, pool: _PoolWriter) -> None:
    et: List[int] = []
    mem: List[tuple] = []
    syn: List[tuple] = []
    lau: List[tuple] = []
    alo: List[tuple] = []
    end: List[tuple] = []
    run: List[int] = []
    gpu: List[int] = []
    for event in events:
        kind = type(event)
        if kind is MemoryEvent:
            et.append(ET_MEM)
            vs = _encode_value(event.value_stored, pool)
            vl = _encode_value(event.value_loaded, pool)
            cmp_ = _encode_value(event.compare, pool)
            mem.append((
                _ACCESS_CODES[event.kind],
                event.address,
                _where_row(event.where),
                pool.add(event.ip),
                _encode_mask(event.active_mask),
                int(event.scope),
                _OP_CODES[event.atomic_op] if event.atomic_op is not None else 0,
                event.batch,
                (vs[0], vl[0], cmp_[0]),
                (vs[1], vl[1], cmp_[1]),
            ))
        elif kind is SyncEvent:
            et.append(ET_SYNC)
            syn.append((
                _SYNC_CODES[event.kind],
                _where_row(event.where),
                pool.add(event.ip),
                _encode_mask(event.active_mask),
                int(event.scope),
                event.batch,
            ))
        elif kind is LaunchEvent:
            et.append(ET_LAUNCH)
            lau.append((
                pool.add(event.kernel_name),
                (
                    event.grid_dim, event.block_dim, event.warp_size,
                    event.warps_per_block, event.num_threads, event.seed,
                    event.static_instruction_count, event.parallelism,
                ),
            ))
        elif kind is AllocEvent:
            et.append(ET_ALLOC)
            alo.append((pool.add(event.name), event.base, event.num_words))
        elif kind is KernelEndEvent:
            et.append(ET_END)
            end.append((
                pool.add(event.kernel_name),
                int(event.timed_out),
                event.native_parallel,
                event.native_serial,
                event.batches,
                event.instructions,
            ))
        elif kind is GPUConfig:
            et.append(ET_GPU)
            gpu.append(pool.add(json.dumps(asdict(event), sort_keys=True)))
        else:
            # RunMarker lives in repro.engine.trace; late import avoids a
            # module cycle (trace.py dispatches to this module).
            from repro.engine.trace import RunMarker

            if kind is RunMarker:
                et.append(ET_RUN)
                run.append(event.seed)
            else:
                raise TypeError(f"cannot encode trace event {event!r}")

    counts = {}
    for key, group in (
        ("m", mem), ("y", syn), ("l", lau), ("a", alo),
        ("e", end), ("r", run), ("g", gpu),
    ):
        if group:
            counts[key] = len(group)
    chunk_header = {
        "rows": len(et),
        "counts": counts,
        "strings": pool.take_fresh(),
    }
    handle.write(
        json.dumps(chunk_header, separators=(",", ":")).encode("utf-8")
    )
    handle.write(b"\n")
    _write_block(handle, np.asarray(et, dtype=np.uint8))
    if mem:
        cols = list(zip(*mem))
        _write_block(handle, np.asarray(cols[0], dtype=np.uint8))   # kind
        _write_block(handle, np.asarray(cols[1], dtype=np.uint64))  # addr
        _write_block(handle, np.asarray(cols[2], dtype=np.int64))   # where
        _write_block(handle, np.asarray(cols[3], dtype=np.uint32))  # ip
        _write_block(handle, np.asarray(cols[4], dtype=np.uint64))  # mask
        _write_block(handle, np.asarray(cols[5], dtype=np.uint8))   # scope
        _write_block(handle, np.asarray(cols[6], dtype=np.uint8))   # op
        _write_block(handle, np.asarray(cols[7], dtype=np.int64))   # batch
        _write_block(handle, np.asarray(cols[8], dtype=np.uint8))   # value tags
        _write_block(handle, np.asarray(cols[9], dtype=np.int64))   # payloads
    if syn:
        cols = list(zip(*syn))
        _write_block(handle, np.asarray(cols[0], dtype=np.uint8))
        _write_block(handle, np.asarray(cols[1], dtype=np.int64))
        _write_block(handle, np.asarray(cols[2], dtype=np.uint32))
        _write_block(handle, np.asarray(cols[3], dtype=np.uint64))
        _write_block(handle, np.asarray(cols[4], dtype=np.uint8))
        _write_block(handle, np.asarray(cols[5], dtype=np.int64))
    if lau:
        cols = list(zip(*lau))
        _write_block(handle, np.asarray(cols[0], dtype=np.uint32))
        _write_block(handle, np.asarray(cols[1], dtype=np.int64))
    if alo:
        cols = list(zip(*alo))
        _write_block(handle, np.asarray(cols[0], dtype=np.uint32))
        _write_block(handle, np.asarray(cols[1], dtype=np.uint64))
        _write_block(handle, np.asarray(cols[2], dtype=np.int64))
    if end:
        cols = list(zip(*end))
        _write_block(handle, np.asarray(cols[0], dtype=np.uint32))
        _write_block(handle, np.asarray(cols[1], dtype=np.uint8))
        _write_block(handle, np.asarray(cols[2], dtype=np.float64))
        _write_block(handle, np.asarray(cols[3], dtype=np.float64))
        _write_block(handle, np.asarray(cols[4], dtype=np.int64))
        _write_block(handle, np.asarray(cols[5], dtype=np.int64))
    if gpu:
        _write_block(handle, np.asarray(gpu, dtype=np.uint32))
    if run:
        _write_block(handle, np.asarray(run, dtype=np.int64))


def save_columnar(events, path, chunk_rows: int = CHUNK_ROWS) -> None:
    """Write ``events`` to a ``.ctr`` / ``.ctr.gz`` file."""
    with _opener(path)(path, "wb") as handle:
        write_columnar(handle, events, chunk_rows=chunk_rows)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class Chunk:
    """One decoded chunk: raw column arrays plus lazy row materialization.

    Batch consumers read the raw columns (``mem_routes`` hashes the whole
    address column vectorized); :meth:`events` materializes the slotted
    event objects row by row, memoizing :class:`ThreadLocation` and
    active-mask objects across the whole read session so repeated
    identities share one object, like the live pipeline's pooling.
    """

    __slots__ = (
        "ordinal", "rows", "start_offset", "et", "groups",
        "_pool", "_memos",
    )

    def __init__(self, ordinal, rows, start_offset, et, groups, pool, memos):
        self.ordinal = ordinal
        self.rows = rows
        self.start_offset = start_offset
        self.et = et
        self.groups = groups
        self._pool = pool
        self._memos = memos

    def mem_routes(
        self, granularity_bytes: int, shards: int
    ) -> Tuple[List[int], List[int]]:
        """Vectorized granule + shard of every memory row, in row order.

        Reproduces :func:`repro.core.sharding.shard_of` over the address
        column: granule = address >> log2(granularity), then the 64-bit
        multiplicative mix (numpy uint64 arithmetic wraps exactly like
        the scalar ``& _MASK``).
        """
        group = self.groups.get("m")
        if group is None:
            return [], []
        addresses = group[1]
        shift = np.uint64(granularity_bytes.bit_length() - 1)
        granules = addresses >> shift
        if shards <= 1:
            return granules.tolist(), [0] * len(granules)
        routed = ((granules * _MIX64) >> _SHIFT17) % np.uint64(shards)
        return granules.tolist(), routed.tolist()

    def events(self) -> list:
        """Materialize the chunk's rows as typed event objects."""
        pool = self._pool
        loc_memo, mask_memo, value_memo = self._memos
        out: List[object] = []
        groups = self.groups

        mem = groups.get("m")
        if mem is not None:
            m_kind = mem[0].tolist()
            m_addr = mem[1].tolist()
            m_where = mem[2].tolist()
            m_ip = mem[3].tolist()
            m_mask = mem[4].tolist()
            m_scope = mem[5].tolist()
            m_op = mem[6].tolist()
            m_batch = mem[7].tolist()
            m_vtag = mem[8].tolist()
            m_vpay = mem[9].tolist()
        syn = groups.get("y")
        if syn is not None:
            y_kind = syn[0].tolist()
            y_where = syn[1].tolist()
            y_ip = syn[2].tolist()
            y_mask = syn[3].tolist()
            y_scope = syn[4].tolist()
            y_batch = syn[5].tolist()
        lau = groups.get("l")
        if lau is not None:
            l_name = lau[0].tolist()
            l_num = lau[1].tolist()
        alo = groups.get("a")
        if alo is not None:
            a_name = alo[0].tolist()
            a_base = alo[1].tolist()
            a_words = alo[2].tolist()
        end = groups.get("e")
        if end is not None:
            e_name = end[0].tolist()
            e_timed = end[1].tolist()
            e_np = end[2].tolist()
            e_ns = end[3].tolist()
            e_batches = end[4].tolist()
            e_instr = end[5].tolist()
        run = groups.get("r")
        r_seed = run.tolist() if run is not None else None
        gpu = groups.get("g")
        g_json = gpu.tolist() if gpu is not None else None

        # Late import: trace.py dispatches to this module, so the usual
        # top-level import would be a cycle.
        from repro.engine.trace import RunMarker

        append = out.append
        i_m = i_y = i_l = i_a = i_e = i_r = i_g = 0
        for code in self.et.tolist():
            if code == ET_MEM:
                w = tuple(m_where[i_m])
                where = loc_memo.get(w)
                if where is None:
                    where = ThreadLocation(*w)
                    loc_memo[w] = where
                bits = m_mask[i_m]
                mask = mask_memo.get(bits)
                if mask is None:
                    mask = frozenset(
                        lane for lane in range(bits.bit_length())
                        if bits >> lane & 1
                    )
                    mask_memo[bits] = mask
                append(MemoryEvent(
                    _ACCESS_BY_CODE[m_kind[i_m]],
                    m_addr[i_m],
                    where,
                    pool[m_ip[i_m]],
                    mask,
                    _SCOPE_BY_CODE[m_scope[i_m]],
                    _OP_BY_CODE[m_op[i_m]],
                    _decode_value(
                        m_vtag[i_m][0], m_vpay[i_m][0], pool, value_memo
                    ),
                    _decode_value(
                        m_vtag[i_m][1], m_vpay[i_m][1], pool, value_memo
                    ),
                    _decode_value(
                        m_vtag[i_m][2], m_vpay[i_m][2], pool, value_memo
                    ),
                    m_batch[i_m],
                ))
                i_m += 1
            elif code == ET_SYNC:
                w = tuple(y_where[i_y])
                where = loc_memo.get(w)
                if where is None:
                    where = ThreadLocation(*w)
                    loc_memo[w] = where
                bits = y_mask[i_y]
                mask = mask_memo.get(bits)
                if mask is None:
                    mask = frozenset(
                        lane for lane in range(bits.bit_length())
                        if bits >> lane & 1
                    )
                    mask_memo[bits] = mask
                append(SyncEvent(
                    _SYNC_BY_CODE[y_kind[i_y]],
                    where,
                    pool[y_ip[i_y]],
                    mask,
                    _SCOPE_BY_CODE[y_scope[i_y]],
                    y_batch[i_y],
                ))
                i_y += 1
            elif code == ET_LAUNCH:
                num = l_num[i_l]
                append(LaunchEvent(
                    kernel_name=pool[l_name[i_l]],
                    grid_dim=num[0],
                    block_dim=num[1],
                    warp_size=num[2],
                    warps_per_block=num[3],
                    num_threads=num[4],
                    seed=num[5],
                    static_instruction_count=num[6],
                    parallelism=num[7],
                ))
                i_l += 1
            elif code == ET_END:
                append(KernelEndEvent(
                    kernel_name=pool[e_name[i_e]],
                    timed_out=bool(e_timed[i_e]),
                    native_parallel=e_np[i_e],
                    native_serial=e_ns[i_e],
                    batches=e_batches[i_e],
                    instructions=e_instr[i_e],
                ))
                i_e += 1
            elif code == ET_ALLOC:
                append(AllocEvent(
                    name=pool[a_name[i_a]],
                    base=a_base[i_a],
                    num_words=a_words[i_a],
                ))
                i_a += 1
            elif code == ET_RUN:
                append(RunMarker(seed=r_seed[i_r]))
                i_r += 1
            elif code == ET_GPU:
                append(GPUConfig(**json.loads(pool[g_json[i_g]])))
                i_g += 1
            else:
                raise ValueError(f"unknown event-type code {code}")
        return out


def _decode_value(tag: int, payload: int, pool, memo):
    if tag == 0:
        return None
    if tag == 1:
        return payload
    if tag == 2:
        if payload in memo:
            return memo[payload]
        value = json.loads(pool[payload])
        memo[payload] = value
        return value
    raise ValueError(f"unknown value tag {tag}")


#: Column block counts per type group, in on-disk order.
_GROUP_BLOCKS = (("m", 10), ("y", 6), ("l", 2), ("a", 3), ("e", 6), ("g", 1))


def iter_chunks(source, path: Optional[str] = None) -> Iterator[Chunk]:
    """Yield :class:`Chunk` objects from a path or open binary handle.

    Raises :class:`TraceCorruptionError` on a truncated or corrupt file
    (``events_recovered`` counts the rows of chunks already yielded).
    Callers wanting salvage catch it after consuming the yielded prefix.
    """
    if hasattr(source, "read"):
        yield from _iter_chunks_handle(source, path or "<handle>")
    else:
        with _opener(source)(source, "rb") as handle:
            yield from _iter_chunks_handle(handle, str(source))


def _iter_chunks_handle(handle, path: str) -> Iterator[Chunk]:
    pool: List[str] = []
    pool_bytes = 0
    memos = ({}, {}, {})  # locations, masks, decoded JSON values
    recovered = 0
    block = 1  # the file header is block 1; chunks follow
    last_good = 0
    line_cap = line_limit()
    try:
        header_line = handle.readline(line_cap)
        header = json.loads(header_line)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported columnar format version {header.get('version')}"
            )
        declared = int(header["events"])
        last_good = handle.tell()
        while True:
            line = handle.readline(line_cap)
            if not line:
                break
            block += 1
            chunk_header = json.loads(line)
            rows = int(chunk_header["rows"])
            counts = chunk_header["counts"]
            strings = chunk_header.get("strings", ())
            pool_bytes += sum(len(s) for s in strings)
            if (
                len(pool) + len(strings) > MAX_POOL_STRINGS
                or pool_bytes > pool_byte_limit()
            ):
                raise ValueError(
                    f"string pool exceeds the decoder budget after "
                    f"{len(pool) + len(strings)} entries"
                )
            pool.extend(strings)
            et = _read_block(handle)
            if len(et) != rows:
                raise ValueError(
                    f"et column has {len(et)} rows, header says {rows}"
                )
            if sum(counts.values()) != rows:
                raise ValueError(
                    f"group counts sum to {sum(counts.values())}, "
                    f"header says {rows} rows"
                )
            groups: Dict[str, object] = {}
            for key, blocks in _GROUP_BLOCKS:
                if counts.get(key):
                    arrays = tuple(_read_block(handle) for _ in range(blocks))
                    if len(arrays[0]) != counts[key]:
                        raise ValueError(
                            f"group {key!r} has {len(arrays[0])} rows, "
                            f"header says {counts[key]}"
                        )
                    groups[key] = arrays if blocks > 1 else arrays[0]
            if counts.get("r"):
                seeds = _read_block(handle)
                if len(seeds) != counts["r"]:
                    raise ValueError(
                        f"group 'r' has {len(seeds)} rows, "
                        f"header says {counts['r']}"
                    )
                groups["r"] = seeds
            if HOT.enabled:
                HOT.trace_chunks.inc()
                HOT.trace_rows.inc(rows)
            yield Chunk(block, rows, last_good, et, groups, pool, memos)
            recovered += rows
            last_good = handle.tell()
        if recovered != declared:
            raise TraceCorruptionError(
                path, block + 1, last_good,
                f"file ends after {recovered} of {declared} declared events",
                events_recovered=recovered,
            )
    except TraceCorruptionError:
        raise
    except (
        json.JSONDecodeError, KeyError, ValueError, TypeError, IndexError,
        EOFError, UnicodeDecodeError, gzip.BadGzipFile, zlib.error, OSError,
        RecursionError, ConfigError,
    ) as exc:
        raise TraceCorruptionError(
            path, block, last_good,
            f"{type(exc).__name__}: {exc}",
            events_recovered=recovered,
        ) from exc


def read_events(source, salvage: bool = False, path: Optional[str] = None):
    """Read all events; returns ``(events, corruption_or_None)``.

    With ``salvage=False`` corruption raises; with ``salvage=True`` the
    intact chunk-prefix is returned alongside the corruption record.
    """
    events: List[object] = []
    corruption: Optional[TraceCorruptionError] = None
    try:
        for chunk in iter_chunks(source, path=path):
            try:
                chunk_events = chunk.events()
            except (
                IndexError, KeyError, ValueError, TypeError, RecursionError,
                ConfigError,
            ) as exc:
                corruption = TraceCorruptionError(
                    path or str(source), chunk.ordinal, chunk.start_offset,
                    f"{type(exc).__name__}: {exc}",
                    events_recovered=len(events),
                )
                break
            events.extend(chunk_events)
    except TraceCorruptionError as exc:
        corruption = TraceCorruptionError(
            exc.path, exc.line, exc.last_good_offset, exc.reason,
            events_recovered=len(events),
        )
    if corruption is not None and not salvage:
        raise corruption
    return events, corruption


def stream_events(source, path: Optional[str] = None) -> Iterator:
    """Lazily yield events chunk by chunk (no whole-trace materialization)."""
    for chunk in iter_chunks(source, path=path):
        yield from chunk.events()
