"""Crash-safe checkpoint journal for suite runs (``--checkpoint``/``--resume``).

A :class:`CellJournal` is an append-only JSONL file mapping cell keys to
JSON payloads.  The suite runner journals every completed (workload,
detector, seed) cell as it finishes — including cells finishing out of
order under ``--workers N`` — so an interrupted run can be resumed with
``--resume``: journaled cells are served from the file and skipped
byte-identically, only the missing ones execute.

Two properties make the journal trustworthy after a crash:

- **append + flush per record** — a record is durable the moment the
  cell completes; there is no buffered tail to lose;
- **tolerant loading** — a partial trailing line (the crash landing
  mid-write) is detected and ignored with a warning rather than
  poisoning the resume.

Keys embed a fingerprint of the device configuration, so a journal
recorded against one simulated GPU is never replayed against another.

The *ambient* journal (:func:`set_active`/:func:`active_journal`) lets
entry points (``iguard-experiments --checkpoint``) arm checkpointing
without threading a parameter through every experiment driver:
:func:`repro.workloads.runner.run_suite` consults it when no explicit
journal is passed.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import HOT

#: Bumped whenever the journal record schema changes incompatibly.
JOURNAL_VERSION = 1


def config_fingerprint(config) -> str:
    """A short stable fingerprint of a (frozen dataclass) configuration."""
    return hashlib.sha1(repr(config).encode("utf-8")).hexdigest()[:10]


def cell_key(workload_name: str, detector: str, seed: int, config) -> str:
    """The journal key of one suite cell."""
    return f"{workload_name}|{detector}|s{seed}|{config_fingerprint(config)}"


class CellJournal:
    """Append-only key -> payload store backed by one JSONL file."""

    def __init__(self, path, resume: bool = False):
        self.path = str(path)
        self.resumed_cells = 0
        self._cells: Dict[str, Any] = {}
        self._logger = get_logger("checkpoint")
        if resume and os.path.exists(self.path):
            self._load()
        else:
            # Fresh run: truncate any stale journal so --resume later
            # only ever sees cells from this run.
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(
                    json.dumps({"journal": JOURNAL_VERSION}) + "\n"
                )

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one partial
                    # trailing line; anything it held re-executes.
                    self._logger.warning(
                        "%s: ignoring partial journal line %d",
                        self.path, lineno,
                    )
                    continue
                if "k" in record:
                    self._cells[record["k"]] = record["o"]
        self._logger.info(
            "resuming from %s: %d journaled cell(s)",
            self.path, len(self._cells),
        )

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str) -> Any:
        """The journaled payload for ``key`` (KeyError when absent)."""
        payload = self._cells[key]
        self.resumed_cells += 1
        if HOT.enabled:
            HOT.checkpoint_reused.inc()
        return payload

    def record(self, key: str, payload: Any) -> None:
        """Durably append one completed cell (idempotent per key)."""
        if key in self._cells:
            return
        self._cells[key] = payload
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"k": key, "o": payload}, separators=(",", ":"))
            )
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())


# ---------------------------------------------------------------------------
# SeedOutcome codec (the runner's journal payload)
# ---------------------------------------------------------------------------


def encode_outcome(outcome) -> dict:
    """A :class:`~repro.workloads.runner.SeedOutcome` as JSON.

    Every field is JSON-native already (``sites`` maps ip strings to
    race-type tags, ``breakdown`` category names to cycle counts), and
    floats survive JSON exactly — Python emits shortest-repr decimals —
    so the round-trip is lossless and resumed merges are byte-identical.
    """
    return {
        "status": outcome.status,
        "detail": outcome.detail,
        "sites": dict(outcome.sites),
        "overhead": outcome.overhead,
        "native_time": outcome.native_time,
        "total_time": outcome.total_time,
        "breakdown": dict(outcome.breakdown),
    }


def decode_outcome(payload: dict):
    """Inverse of :func:`encode_outcome`."""
    from repro.workloads.runner import SeedOutcome

    return SeedOutcome(
        status=payload["status"],
        detail=payload["detail"],
        sites=dict(payload["sites"]),
        overhead=payload["overhead"],
        native_time=payload["native_time"],
        total_time=payload["total_time"],
        breakdown=dict(payload["breakdown"]),
    )


# ---------------------------------------------------------------------------
# The ambient journal
# ---------------------------------------------------------------------------

_ACTIVE: Optional[CellJournal] = None


def set_active(journal: Optional[CellJournal]) -> None:
    """Install (or clear) the process-wide ambient journal."""
    global _ACTIVE
    _ACTIVE = journal


def active_journal() -> Optional[CellJournal]:
    """The ambient journal armed by an entry point, if any."""
    return _ACTIVE
