"""Multi-detector fan-out: one execution pass, N detectors riding it.

Live comparisons like Table 4 / Figure 11 run every workload once per
detector.  With the event bus, one pass suffices: each detector is
wrapped in a :class:`~repro.engine.bus.ToolSink` (failure isolation +
a private timing view over the shared native account), attached to the
same device, and observes the identical stream.  Because tools are pure
observers and per-sink timing views share the executor's NATIVE account
while keeping overhead categories private, each detector's races *and*
its Figure 13 overhead accounting come out exactly equal to a solo
:func:`~repro.workloads.runner.run_workload` — down to float identity —
for a single execution's cost.

A detector dropping out mid-stream (Barracuda's unsupported scoped
atomics, memory reservation OOM, event-budget timeout) detaches only
itself; the pass keeps feeding the others, and its result reports the
same status a solo run would have.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.bus import ToolSink
from repro.errors import (
    DeadlockError,
    OutOfMemoryError,
    TimeoutError_,
    UnsupportedFeatureError,
)
from repro.gpu.arch import GPUConfig
from repro.gpu.device import Device
from repro.workloads.base import SIM_GPU, Workload, WorkloadResult
from repro.workloads.runner import (
    SeedOutcome,
    _merge_outcomes,
    _unsupported_binary,
    detector_name,
)


def _sink_outcome(sink: ToolSink, status: str, detail: str) -> SeedOutcome:
    """One sink's per-seed harvest, shaped like the runner's outcomes."""
    if sink.failure is not None:
        status, detail = sink.failure
        if status in ("unsupported", "oom"):
            return SeedOutcome(status=status, detail=detail)
    outcome = SeedOutcome(status=status, detail=detail)
    races = getattr(sink.tool, "races", None)
    if races is not None:
        for ip, race_type in races.sites():
            outcome.sites[ip] = str(race_type)
    timings = sink.completed_timings
    if timings:
        native = sum(t.native_time for t in timings)
        total = sum(t.total_time for t in timings)
        outcome.overhead = total / native if native > 0 else 1.0
        outcome.native_time = native
        outcome.total_time = total
        totals: dict = {}
        for timing in timings:
            for category, time in timing.snapshot().items():
                totals[category] = totals.get(category, 0.0) + time
        outcome.breakdown = totals
    return outcome


def _build_tool(factory, shards: Optional[int]):
    """Instantiate a detector, threading the shard count through.

    With ``shards`` of None the factory is called bare (its own default
    applies, including the ``IGUARD_SHARDS`` environment variable).  An
    explicit count requires the factory to accept a ``shards`` keyword —
    true of every detector class and of
    :class:`~repro.workloads.runner.DetectorFactory`-style wrappers.
    """
    if shards is None:
        return factory()
    return factory(shards=shards)


def run_workload_fanout(
    workload: Workload,
    tool_factories: Sequence,
    config: GPUConfig = SIM_GPU,
    seeds=None,
    shards: Optional[int] = None,
) -> List[WorkloadResult]:
    """Run ``workload`` once per seed with every detector attached.

    Returns one :class:`~repro.workloads.base.WorkloadResult` per factory,
    in factory order, each equal to what a solo
    :func:`~repro.workloads.runner.run_workload` with that factory would
    have produced (races, statuses, and overhead breakdowns alike).
    ``shards`` partitions each detector's per-launch check work
    (byte-identical results for any count).
    """
    seeds = tuple(seeds) if seeds is not None else workload.seeds
    names = [detector_name(factory) for factory in tool_factories]

    active = [
        not (workload.complex_binary and name in ("Barracuda", "CURD"))
        for name in names
    ]
    per_factory: List[List[SeedOutcome]] = [[] for _ in tool_factories]

    if any(active):
        for seed in seeds:
            device = Device(config)
            sinks: List[Optional[ToolSink]] = []
            for factory, is_active in zip(tool_factories, active):
                if not is_active:
                    sinks.append(None)
                    continue
                sinks.append(
                    device.add_sink(ToolSink(_build_tool(factory, shards)))
                )
            status, detail = "ok", ""
            try:
                workload.run(device, seed)
            except UnsupportedFeatureError as exc:
                status, detail = "unsupported", str(exc)
            except OutOfMemoryError as exc:
                status, detail = "oom", str(exc)
            except TimeoutError_ as exc:
                status, detail = "timeout", str(exc)
            except DeadlockError as exc:
                detail = f"deadlock: {exc}"
            for sink, bucket in zip(sinks, per_factory):
                if sink is not None:
                    bucket.append(_sink_outcome(sink, status, detail))

    results: List[WorkloadResult] = []
    for name, is_active, outcomes in zip(names, active, per_factory):
        if not is_active:
            results.append(_unsupported_binary(workload, name))
        else:
            results.append(_merge_outcomes(workload.name, name, outcomes))
    return results

def _stream_runs(stream, default_config: GPUConfig = SIM_GPU):
    """Split a lazy event stream at RunMarker boundaries.

    Yields ``(config, events)`` per run — the same split
    :meth:`~repro.engine.trace.Trace.runs` performs on a materialized
    trace, but holding only one run's events in memory at a time, so a
    columnar chunk stream never materializes the whole file.
    """
    from repro.engine.trace import RunMarker

    config = default_config
    current: List = []
    pending = False
    for event in stream:
        if isinstance(event, GPUConfig):
            config = event
            continue
        if isinstance(event, RunMarker):
            if pending:
                yield config, current
                current = []
            pending = True
            continue
        current.append(event)
        pending = True
    if pending:
        yield config, current


def replay_trace_fanout(
    source,
    tool_factories: Sequence,
    shards: Optional[int] = None,
    workload_name: str = "replay",
) -> List[WorkloadResult]:
    """Replay one saved trace through many detectors in a single pass.

    ``source`` is a :class:`~repro.engine.trace.Trace` or a path to a
    saved trace file (JSONL or columnar; paths are streamed run by run,
    never loaded whole).  Each detector observes the identical stream
    behind its own :class:`~repro.engine.bus.ToolSink`, so the results
    match what a solo :func:`~repro.engine.replay.replay_workload` with
    that factory would produce — one decode pass instead of N.
    """
    from repro.engine.replay import ReplayDevice, replay
    from repro.engine.trace import Trace, stream_events

    names = [detector_name(factory) for factory in tool_factories]
    per_factory: List[List[SeedOutcome]] = [[] for _ in tool_factories]

    if isinstance(source, Trace):
        runs = (
            (source.gpu_config or SIM_GPU, events)
            for _seed, events in source.runs()
        )
    else:
        runs = _stream_runs(stream_events(source))

    for config, events in runs:
        device = ReplayDevice(config)
        sinks = [
            device.add_sink(ToolSink(_build_tool(factory, shards)))
            for factory in tool_factories
        ]
        replay(events, device=device)
        for sink, bucket in zip(sinks, per_factory):
            bucket.append(_sink_outcome(sink, "ok", ""))

    return [
        _merge_outcomes(workload_name, name, outcomes)
        for name, outcomes in zip(names, per_factory)
    ]
