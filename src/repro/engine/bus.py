"""The event bus: execution publishes, detection subscribes.

Historically the simulated :class:`~repro.gpu.device.Device` pushed events
synchronously into its attached tools — execution and detection were one
loop.  The bus makes the event stream an explicit seam: the device
*publishes* typed records (allocations, launch boundaries, memory and sync
operations, kernel completion) and any number of *sinks* consume them.

A sink is anything with the :class:`~repro.instrument.nvbit.Tool` callback
shape — every existing detector already qualifies, unchanged.  The
:class:`ToolSink` adapter adds the two facilities multi-detector fan-out
needs on top of a plain tool:

- **failure isolation** — a tool aborting with one of the runner's
  recognized failure modes (unsupported feature, OOM, detection timeout)
  is detached from the stream with its status recorded, instead of killing
  the execution pass for every other detector;
- **private timing** — the tool charges a per-sink view of the launch
  timing (see :func:`~repro.instrument.timing.shared_native_view`), so N
  detectors riding one execution each report the overhead they would have
  measured alone.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    OutOfMemoryError,
    TimeoutError_,
    UnsupportedFeatureError,
)
from repro.instrument.timing import TimingBreakdown, shared_native_view
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import HOT
from repro.obs.spans import TRACER, now_us


class EventBus:
    """An ordered fan-out of device events to registered sinks.

    Sinks are invoked synchronously in registration order, which preserves
    the exact callback sequence tools saw before the bus existed.

    The common deployment is a single detector riding one execution, and
    the per-instruction publishes are the hottest calls in the system —
    so ``publish_memory``/``publish_sync`` carry a monomorphic fast path:
    with exactly one sink the bus calls a cached bound method instead of
    looping and re-resolving ``sink.on_memory`` per event.  The cache is
    guarded by identity against ``sinks`` (which legacy code may append
    to directly via the ``device.tools`` alias), so mutations from any
    path fall back to the general loop and re-prime the cache.

    When the metrics registry is enabled, the hot publishes switch to a
    timed dispatch instead: each sink call is measured with
    ``perf_counter`` into the global and per-sink publish-latency
    histograms, and per-launch accumulated dispatch seconds are emitted
    as ``dispatch:<sink>`` trace spans at kernel end.  The cost lives
    entirely behind the ``HOT.enabled`` test, so a disabled registry
    keeps the monomorphic fast path untouched.
    """

    __slots__ = (
        "sinks", "_solo", "_solo_memory", "_solo_sync",
        "_sink_hists", "_dispatch_accum", "_dispatch_start",
    )

    def __init__(self) -> None:
        self.sinks: List = []
        self._solo = None
        self._solo_memory = None
        self._solo_sync = None
        #: sink name -> per-sink publish-latency histogram (lazy).
        self._sink_hists: Dict[str, object] = {}
        #: sink name -> dispatch seconds accumulated this launch.
        self._dispatch_accum: Dict[str, float] = {}
        self._dispatch_start = 0.0

    def add_sink(self, sink, device=None):
        """Register a sink; if ``device`` is given, attach the sink to it."""
        self.sinks.append(sink)
        if device is not None:
            attach = getattr(sink, "attach", None)
            if attach is not None:
                attach(device)
        return sink

    def remove_sink(self, sink) -> None:
        """Unregister a sink (no further events are delivered to it)."""
        self.sinks.remove(sink)
        self._solo = None
        self._solo_memory = None
        self._solo_sync = None

    def _prime_solo(self, sink) -> None:
        """Cache the single sink's bound hot callbacks."""
        self._solo = sink
        self._solo_memory = sink.on_memory
        self._solo_sync = sink.on_sync

    # -- publication ----------------------------------------------------

    def publish_alloc(self, allocation) -> None:
        for sink in self.sinks:
            sink.on_alloc(allocation)

    def publish_launch_begin(self, launch) -> None:
        if HOT.enabled:
            self._dispatch_accum = {}
            self._dispatch_start = now_us()
        for sink in self.sinks:
            sink.on_launch_begin(launch)

    def publish_memory(self, event, launch) -> None:
        if HOT.enabled:
            self._publish_timed("on_memory", event, launch)
            return
        sinks = self.sinks
        if len(sinks) == 1:
            if sinks[0] is not self._solo:
                self._prime_solo(sinks[0])
            self._solo_memory(event, launch)
            return
        for sink in sinks:
            sink.on_memory(event, launch)

    def publish_sync(self, event, launch) -> None:
        if HOT.enabled:
            self._publish_timed("on_sync", event, launch)
            return
        sinks = self.sinks
        if len(sinks) == 1:
            if sinks[0] is not self._solo:
                self._prime_solo(sinks[0])
            self._solo_sync(event, launch)
            return
        for sink in sinks:
            sink.on_sync(event, launch)

    def _publish_timed(self, method: str, event, launch) -> None:
        """Metrics-enabled dispatch: per-sink latency into the registry."""
        for sink in self.sinks:
            start = perf_counter()
            getattr(sink, method)(event, launch)
            elapsed = perf_counter() - start
            HOT.bus_publish_seconds.observe(elapsed)
            name = getattr(sink, "name", None) or type(sink).__name__
            hist = self._sink_hists.get(name)
            if hist is None:
                hist = obs_metrics.get_registry().histogram(
                    f"bus.publish_seconds.{name}"
                )
                self._sink_hists[name] = hist
            hist.observe(elapsed)
            self._dispatch_accum[name] = (
                self._dispatch_accum.get(name, 0.0) + elapsed
            )

    def publish_launch_end(self, launch) -> None:
        for sink in self.sinks:
            sink.on_launch_end(launch)

    def publish_timeout(self, launch) -> None:
        for sink in self.sinks:
            sink.on_timeout(launch)

    def publish_kernel_end(self, run, launch) -> None:
        """Deliver the completed :class:`~repro.gpu.device.KernelRun`.

        Guarded with ``getattr`` because minimal hand-rolled sinks (tests,
        user tools predating the bus) may implement only the classic seven
        callbacks.
        """
        for sink in self.sinks:
            callback = getattr(sink, "on_kernel_end", None)
            if callback is not None:
                callback(run, launch)
        if TRACER.enabled and self._dispatch_accum:
            # One span per sink covering this launch's accumulated
            # dispatch time, anchored at the launch's first publish.
            for name, seconds in sorted(self._dispatch_accum.items()):
                TRACER.add_complete(
                    f"dispatch:{name}",
                    self._dispatch_start,
                    seconds * 1e6,
                    cat="bus",
                    tid=TRACER.tid_for(f"dispatch:{name}"),
                    args={"kernel": run.kernel_name},
                )
            self._dispatch_accum = {}


#: Failure modes a ToolSink absorbs, mapped to WorkloadResult statuses.
_FAILURE_STATUS = (
    (UnsupportedFeatureError, "unsupported"),
    (OutOfMemoryError, "oom"),
    (TimeoutError_, "timeout"),
)


class ToolSink:
    """Run one tool as an isolated bus sink with its own timing view.

    Args:
        tool: the wrapped instrumentation tool.
        isolate: absorb the tool's unsupported/OOM/timeout failures into
            :attr:`failure` instead of propagating (required for fan-out);
            other exceptions always propagate — they are bugs.
        private_timing: hand the tool a per-sink timing view instead of
            the launch's shared breakdown.
    """

    def __init__(self, tool, isolate: bool = True, private_timing: bool = True):
        self.tool = tool
        self.isolate = isolate
        self.private_timing = private_timing
        #: ``(status, detail)`` once the tool has dropped out of the stream.
        self.failure: Optional[Tuple[str, str]] = None
        #: One private timing per *completed* launch (mirrors the live
        #: runner's use of ``device.runs``: aborted launches don't count).
        self.completed_timings: List[TimingBreakdown] = []
        self._current: Optional[Tuple[object, object]] = None

    @property
    def name(self) -> str:
        return self.tool.name

    @property
    def disabled(self) -> bool:
        """Whether the tool has failed and stopped observing the stream."""
        return self.failure is not None

    # -- plumbing -------------------------------------------------------

    def attach(self, device) -> None:
        self.tool.attach(device)

    def _call(self, callback, *args) -> None:
        if self.disabled:
            return
        if not self.isolate:
            callback(*args)
            return
        try:
            callback(*args)
        except tuple(exc for exc, _ in _FAILURE_STATUS) as exc:
            for exc_type, status in _FAILURE_STATUS:
                if isinstance(exc, exc_type):
                    self.failure = (status, str(exc))
                    break

    def _view_of(self, launch):
        """The per-sink LaunchInfo for ``launch`` (identity-cached)."""
        if self._current is not None and self._current[0] is launch:
            return self._current[1]
        return launch

    # -- sink callbacks -------------------------------------------------

    def on_alloc(self, allocation) -> None:
        self._call(self.tool.on_alloc, allocation)

    def on_launch_begin(self, launch) -> None:
        if self.disabled:
            return
        view = launch
        if self.private_timing:
            view = replace(launch, timing=shared_native_view(launch.timing))
        self._current = (launch, view)
        self._call(self.tool.on_launch_begin, view)

    def on_memory(self, event, launch) -> None:
        self._call(self.tool.on_memory, event, self._view_of(launch))

    def on_sync(self, event, launch) -> None:
        self._call(self.tool.on_sync, event, self._view_of(launch))

    def on_launch_end(self, launch) -> None:
        self._call(self.tool.on_launch_end, self._view_of(launch))

    def on_timeout(self, launch) -> None:
        self._call(self.tool.on_timeout, self._view_of(launch))

    def on_kernel_end(self, run, launch) -> None:
        if self.disabled:
            return
        view = self._view_of(launch)
        self.completed_timings.append(view.timing)
        self._current = None
        callback = getattr(self.tool, "on_kernel_end", None)
        if callback is not None:
            self._call(callback, run, view)
