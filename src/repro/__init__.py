"""iGUARD: In-GPU Advanced Race Detection — a Python reproduction.

This package reproduces the system from *iGUARD: In-GPU Advanced Race
Detection* (Kamath & Basu, SOSP 2021) over a simulated GPU execution
model.  The central pieces:

- :mod:`repro.gpu` — the GPU substrate: a CUDA-like kernel DSL (Python
  generators yielding instructions), lockstep and ITS warp schedulers,
  scoped atomics/fences, barriers, and a cycle-cost model;
- :mod:`repro.core` — the iGUARD detector: Figure 4's packed metadata,
  Table 2's two-tier checks, lock-protocol inference, UVM-backed metadata,
  and the contention optimizations;
- :mod:`repro.baselines` — Barracuda, CURD, and ScoRD-mode comparators;
- :mod:`repro.cg` — Cooperative Groups built from the primitives;
- :mod:`repro.workloads` — the 43 Table 4/5 applications;
- :mod:`repro.experiments` — regenerate every table and figure.

Quick start::

    from repro import Device, IGuard
    from repro.gpu import load, store, syncthreads

    device = Device()
    detector = device.add_tool(IGuard())
    data = device.alloc("data", 64, init=0)

    def kernel(ctx, data):
        yield store(data, ctx.tid, ctx.tid)
        v = yield load(data, (ctx.tid + 1) % ctx.num_threads)  # racy!
        yield store(data, ctx.tid, v)

    device.launch(kernel, grid_dim=2, block_dim=32, args=(data,))
    print(detector.summary())
"""

from repro.baselines import Barracuda, CURD, ScoRD
from repro.core import IGuard, IGuardConfig, RaceRecord, RaceType
from repro.gpu import Device, GPUConfig, TITAN_RTX
from repro.gpu.device import KernelRun
from repro.gpu.scheduler import SchedulerKind
from repro.workloads import REGISTRY, get_workload, run_workload

__version__ = "1.0.0"

__all__ = [
    "Barracuda",
    "CURD",
    "ScoRD",
    "IGuard",
    "IGuardConfig",
    "RaceRecord",
    "RaceType",
    "Device",
    "GPUConfig",
    "KernelRun",
    "TITAN_RTX",
    "SchedulerKind",
    "REGISTRY",
    "get_workload",
    "run_workload",
    "__version__",
]
