"""Live telemetry: time-series sampling of the metrics registry.

The flight recorder (:mod:`repro.obs.metrics`) materializes one snapshot
at process exit, which is useless for asking *where is this run right
now* — a stalled worker or a hot shard in a long ``--workers N`` suite
is invisible until the end.  This module adds the live layer:

- :class:`TelemetrySampler` — a daemon thread that snapshots the default
  registry on a fixed interval and appends a **delta sample** to a
  bounded ring buffer: counters contribute their increase since the last
  tick, gauges their last value, histograms their count/sum/bucket
  deltas.  The ring is what the scrape server and the run-health
  watchdog (:mod:`repro.obs.watchdog`) read; ``--telemetry-out`` also
  persists it as a schema-validated ``telemetry.jsonl``
  (``benchmarks/schemas/telemetry.schema.json``).
- :class:`Heartbeats` — the supervisor's heartbeat channel.  The
  parallel executor (:mod:`repro.engine.parallel`) publishes per-worker
  liveness here (which cell, which attempt, running since when), giving
  the watchdog its worker-stall signal and the OpenMetrics exposition
  its per-worker label dimension.

Both are **pure readers** of detection state: no instrumentation site in
the detector, scheduler or bus knows the sampler exists, so detection
output is byte-identical with telemetry on or off, and the cost with
telemetry off is structurally zero (nothing starts, nothing is
published — ``HEARTBEATS.enabled`` guards the one executor call site
exactly like ``HOT.enabled`` guards the metrics sites).
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger

#: telemetry.jsonl line-schema version (benchmarks/schemas/telemetry.schema.json).
TELEMETRY_SCHEMA = 1

#: Default sampling interval in seconds (``--telemetry-interval``).
DEFAULT_INTERVAL = 1.0

#: Default ring-buffer capacity in samples (old samples are dropped, the
#: drop count is reported in the header record).
DEFAULT_CAPACITY = 512


# ---------------------------------------------------------------------------
# The heartbeat channel: per-worker liveness from the parallel executor.
# ---------------------------------------------------------------------------


class Heartbeats:
    """Thread-safe per-worker liveness shared by executor and telemetry.

    The supervisor (:mod:`repro.engine.parallel`) calls :meth:`update` on
    assignment, completion, crash and shutdown; the sampler, watchdog and
    scrape server read :meth:`snapshot`.  The ``enabled`` flag mirrors
    the ``HOT.enabled`` pattern: the executor tests one attribute and
    skips the call entirely when no telemetry consumer armed the channel,
    so a plain run never takes the lock.
    """

    #: Bound on tracked workers: crash-looping executors recycle pids, and
    #: an unbounded map would grow for the life of the run.  FIFO eviction
    #: of the oldest record — liveness data, not accounting.
    MAX_WORKERS = 1024

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._workers: Dict[int, dict] = {}

    def update(self, pid: int, **fields) -> None:
        """Merge ``fields`` into worker ``pid``'s record (upsert)."""
        now = time.time()
        with self._lock:
            record = self._workers.setdefault(
                pid, {"pid": pid, "state": "idle", "cells_done": 0}
            )
            record.update(fields)
            record["updated"] = now
            while len(self._workers) > self.MAX_WORKERS:
                self._workers.pop(next(iter(self._workers)))

    def finish_cell(self, pid: int, ok: bool = True) -> None:
        """Mark ``pid`` idle after a cell result (done or error)."""
        with self._lock:
            record = self._workers.get(pid)
            if record is None:
                return
            record["state"] = "idle"
            record.pop("cell", None)
            record.pop("started", None)
            if ok:
                record["cells_done"] = record.get("cells_done", 0) + 1
            record["updated"] = time.time()

    def remove(self, pid: int) -> None:
        with self._lock:
            self._workers.pop(pid, None)

    def snapshot(self) -> List[dict]:
        """Copies of every worker record, ordered by pid."""
        with self._lock:
            return [dict(r) for _, r in sorted(self._workers.items())]

    def reset(self) -> None:
        with self._lock:
            self._workers.clear()


#: The process-wide heartbeat channel (armed by the telemetry sampler).
HEARTBEATS = Heartbeats()


# ---------------------------------------------------------------------------
# Histogram percentile estimation (shared by watchdog and reports).
# ---------------------------------------------------------------------------


def approx_quantile(hist_snapshot: dict, q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of a histogram snapshot's buckets.

    The registry's histograms bucket by binary exponent
    (:class:`repro.obs.metrics.Histogram`), so the estimate returns the
    upper bound ``2**k`` of the bucket containing the quantile — a
    factor-of-two answer, which is what the magnitude buckets promise.
    Returns **None** for an empty histogram: percentiles of nothing are
    absent, never NaN or infinity.
    """
    count = hist_snapshot.get("count", 0)
    if not count:
        return None
    target = q * count
    seen = 0
    for key in sorted(hist_snapshot.get("buckets", {}), key=int):
        seen += hist_snapshot["buckets"][key]
        if seen >= target:
            return math.ldexp(1.0, min(int(key), 1023))
    return hist_snapshot.get("max")


# ---------------------------------------------------------------------------
# Delta samples and the ring-buffer sampler.
# ---------------------------------------------------------------------------


@dataclass
class TelemetrySample:
    """One tick of the time series: deltas since the previous tick."""

    seq: int
    t: float  # wall-clock seconds (time.time)
    interval: float  # seconds actually covered by this sample
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)

    def as_record(self) -> dict:
        """The telemetry.jsonl line for this sample."""
        return {
            "kind": "sample",
            "seq": self.seq,
            "t": round(self.t, 6),
            "interval": round(self.interval, 6),
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }


def _delta_sample(
    seq: int,
    now: float,
    interval: float,
    previous: Dict[str, dict],
    current: Dict[str, dict],
) -> TelemetrySample:
    """Diff two registry snapshots into one delta sample.

    Counters record their increase (only when nonzero — idle series stay
    sparse), gauges their last value, histograms their count/sum/bucket
    deltas.  A counter that *shrank* (registry reset between ticks)
    records its absolute value, treating the reset as a restart.
    """
    sample = TelemetrySample(seq=seq, t=now, interval=interval)
    for name, snap in current.items():
        kind = snap.get("type")
        prev = previous.get(name)
        if kind == "counter":
            value = snap.get("value", 0)
            base = prev.get("value", 0) if prev else 0
            delta = value - base if value >= base else value
            if delta:
                sample.counters[name] = delta
        elif kind == "gauge":
            sample.gauges[name] = snap.get("value", 0.0)
        elif kind == "histogram":
            base_count = prev.get("count", 0) if prev else 0
            count = snap.get("count", 0)
            if count < base_count:  # registry reset between ticks
                prev = None
                base_count = 0
            count_delta = count - base_count
            if not count_delta:
                continue
            base_buckets = prev.get("buckets", {}) if prev else {}
            buckets = {
                key: value - base_buckets.get(key, 0)
                for key, value in snap.get("buckets", {}).items()
                if value - base_buckets.get(key, 0)
            }
            sample.histograms[name] = {
                "count": count_delta,
                "sum": snap.get("sum", 0.0)
                - (prev.get("sum", 0.0) if prev else 0.0),
                "buckets": buckets,
            }
    return sample


class TelemetrySampler:
    """Snapshot the registry on an interval into a bounded ring buffer.

    ``tick()`` is also callable directly (no thread), which is how the
    tests drive deterministic series and how :meth:`stop` guarantees a
    final sample covering the tail of the run.  An attached watchdog
    (:class:`repro.obs.watchdog.Watchdog`) is evaluated once per tick,
    on the sampler thread — never on the detection path.
    """

    def __init__(
        self,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        watchdog=None,
        heartbeats: Heartbeats = HEARTBEATS,
    ) -> None:
        self.registry = registry or obs_metrics.get_registry()
        self.interval = max(0.01, float(interval))
        self.capacity = max(1, int(capacity))
        self.watchdog = watchdog
        self.heartbeats = heartbeats
        self.started_at: Optional[float] = None
        self.dropped = 0
        self._ring: deque = deque(maxlen=self.capacity)
        self._previous: Dict[str, dict] = {}
        self._last_tick = 0.0
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "TelemetrySampler":
        """Arm the heartbeat channel and start the sampling thread."""
        if self._thread is not None:
            return self
        self.started_at = time.time()
        self._last_tick = time.monotonic()
        self._previous = self.registry.snapshot()
        self.heartbeats.enabled = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="iguard-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def stop(self) -> None:
        """Stop the thread and take one final sample of the tail."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.tick()
        self.heartbeats.enabled = False

    # -- sampling -------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> TelemetrySample:
        """Take one delta sample (thread-safe; callable without start)."""
        with self._lock:
            monotonic = time.monotonic()
            covered = (
                monotonic - self._last_tick if self._last_tick else self.interval
            )
            self._last_tick = monotonic
            current = self.registry.snapshot()
            self._seq += 1
            sample = _delta_sample(
                self._seq,
                now if now is not None else time.time(),
                covered,
                self._previous,
                current,
            )
            self._previous = current
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(sample)
        if self.watchdog is not None:
            try:
                self.watchdog.observe(
                    sample, self.heartbeats.snapshot(), current
                )
            except Exception:  # pragma: no cover - watchdog must not kill runs
                get_logger("telemetry").exception("watchdog evaluation failed")
        return sample

    def samples(self) -> List[TelemetrySample]:
        with self._lock:
            return list(self._ring)

    def totals(self) -> Dict[str, dict]:
        """The last cumulative registry snapshot the sampler has seen."""
        with self._lock:
            return dict(self._previous)

    # -- persistence ----------------------------------------------------

    def header_record(self) -> dict:
        return {
            "kind": "header",
            "schema": TELEMETRY_SCHEMA,
            "generated_by": "repro.obs.telemetry",
            "interval": self.interval,
            "capacity": self.capacity,
            "started": round(self.started_at or 0.0, 6),
            "dropped": self.dropped,
        }

    def write_jsonl(self, path, health: Optional[dict] = None) -> int:
        """Persist header + samples (+ optional health tail) as JSONL.

        Returns the number of records written.  Every line is one JSON
        object validating against ``telemetry.schema.json``.
        """
        records = [self.header_record()]
        records.extend(sample.as_record() for sample in self.samples())
        if health is not None:
            records.append({"kind": "health", **health})
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
        return len(records)


# ---------------------------------------------------------------------------
# The process-wide sampler (armed by --telemetry-out / --serve-metrics).
# ---------------------------------------------------------------------------

_SAMPLER: Optional[TelemetrySampler] = None


def active_sampler() -> Optional[TelemetrySampler]:
    return _SAMPLER


def start_sampler(
    interval: float = DEFAULT_INTERVAL,
    capacity: int = DEFAULT_CAPACITY,
    watchdog=None,
) -> TelemetrySampler:
    """Start (or return) the process-wide sampler."""
    global _SAMPLER
    if _SAMPLER is None:
        _SAMPLER = TelemetrySampler(
            interval=interval, capacity=capacity, watchdog=watchdog
        )
        _SAMPLER.start()
    return _SAMPLER


def stop_sampler() -> Optional[TelemetrySampler]:
    """Stop and detach the process-wide sampler; returns it for export."""
    global _SAMPLER
    sampler, _SAMPLER = _SAMPLER, None
    if sampler is not None:
        sampler.stop()
    return sampler
