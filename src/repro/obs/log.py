"""The leveled logging facade: diagnostics on stderr, results on stdout.

Historically the experiments and harnesses printed everything — tables,
progress, warnings — straight to stdout, so a suite run's *product* (the
paper-style tables) and its *diagnostics* (worker heartbeats, stall
warnings, profile dumps) were inseparable.  This module splits the two
channels:

- :func:`output` is the **result channel**: plain ``print`` to stdout,
  used for the tables, figures and summaries an experiment exists to
  produce.  Redirecting stdout captures exactly the product.
- :func:`get_logger` returns a stdlib logger under the ``iguard`` root,
  whose handler writes *stderr*.  The level comes from ``IGUARD_LOG``
  (``debug`` | ``info`` | ``warn`` | ``error``; default ``info``) or the
  ``--log-level`` CLI flag via :func:`configure`.

The facade configures the ``iguard`` root logger only — never the global
root — so embedding applications keep full control of their own logging.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Root logger name; every facade logger is ``iguard`` or ``iguard.<sub>``.
ROOT = "iguard"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warn": logging.WARNING,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False


def _resolve_level(level: Optional[str]) -> int:
    """Map a level name (or None → $IGUARD_LOG → 'info') to a logging level."""
    name = (level or os.environ.get("IGUARD_LOG") or "info").strip().lower()
    try:
        return _LEVELS[name]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; use one of {', '.join(_LEVELS)}"
        ) from None


def configure(level: Optional[str] = None, stream=None) -> logging.Logger:
    """(Re)configure the ``iguard`` root logger and return it.

    Idempotent: repeated calls adjust the level and replace the facade's
    single handler rather than stacking handlers.  ``stream`` defaults to
    stderr so diagnostics never pollute the result channel.
    """
    global _configured
    root = logging.getLogger(ROOT)
    root.setLevel(_resolve_level(level))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("[%(levelname)s] %(name)s: %(message)s")
    )
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``iguard`` root, auto-configuring on first use."""
    if not _configured:
        configure()
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def log_run_config(
    backend: str,
    shards: int,
    workers: int,
    fast_path=None,
    logger: Optional[logging.Logger] = None,
) -> None:
    """One-line INFO summary of a run's execution shape.

    Emitted once at startup by the entry points (runner, recall gate,
    bench) so any log capture states how the run was configured —
    which detector backend, how many detector shards partition the
    per-launch check work, how many worker processes fan cells out,
    and whether the same-epoch elision fast path is active.
    ``fast_path`` of None (detectors without the knob) logs as ``n/a``;
    the string ``"auto"`` logs as-is (per-kernel adaptive decision).
    """
    log = logger if logger is not None else get_logger("config")
    if fast_path is None:
        shown = "n/a"
    elif fast_path == "auto":
        shown = "auto"
    else:
        shown = "on" if fast_path else "off"
    log.info(
        "run config: backend=%s shards=%d workers=%d fast-path=%s",
        backend,
        shards,
        workers,
        shown,
    )


def output(*parts: object, sep: str = " ", end: str = "\n") -> None:
    """Write to the result channel (stdout).

    The facade's counterpart of a bare ``print``: experiment tables and
    summaries go through here, so they remain separable from diagnostics
    (which :func:`get_logger` sends to stderr).
    """
    print(*parts, sep=sep, end=end)
