"""Race forensics: why did (or didn't) the detector report that race?

A :class:`RaceRecord` names the racing instruction and classifies the race
— but the *provenance* of the verdict lives in state the detector threw
away: the metadata words the Table 2 checks compared, the interleaving
that put them there, and the lock-inference decisions that shaped the
lockset.  This module reconstructs all of it **from a recorded trace**
(:mod:`repro.engine.replay` — replay, not re-simulation): a
:class:`ForensicProbe` rides a replayed iGUARD via the detector's probe
hooks and, for every race matching the requested site, captures

- the **racing instruction pair**: the reporting instruction plus the
  previous conflicting access to the same granule (with thread/warp/block
  identities for both);
- the **metadata word history** of the granule — the packed
  accessor/writer words before the check, fully decoded field by field,
  plus the recent transitions that produced them;
- the **Table 2 condition** that fired (R1-R5, derived from the race
  classification) with the paper's description;
- the **lock-inference timeline** (CAS inserts, fence activations, EXCH
  releases, per-thread-locking inference) up to the racing access;
- a sliding **instruction window** of the accesses and synchronization
  operations leading up to the race.

``iguard-experiments explain <race-site>`` is the CLI front-end
(:func:`main`); :func:`explain_trace` / :func:`explain_workload` are the
library entry points.
"""

from __future__ import annotations

import argparse
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.metadata import ACCESSOR_WORD, WRITER_WORD
from repro.core.report import RaceRecord, RaceType
from repro.obs.log import get_logger, output

#: Which Table 2 race condition produces each classification, with the
#: paper's description (section 6.4 / Table 2).
CONDITION_OF: Dict[RaceType, Tuple[str, str]] = {
    RaceType.ATOMIC_SCOPE: (
        "R1", "insufficiently scoped atomic: the granule is used with "
        "block-scope atomics but the conflicting accesses come from "
        "different threadblocks"),
    RaceType.ITS: (
        "R2", "intra-warp race under independent thread scheduling: same "
        "warp, not converged, no syncwarp and no intervening fence by the "
        "previous thread"),
    RaceType.INTRA_BLOCK: (
        "R3", "intra-threadblock race: same block, no intervening "
        "syncthreads and no intervening fence"),
    RaceType.INTER_BLOCK: (
        "R4", "inter-threadblock (device) race: different blocks and the "
        "previous thread executed no device-scope fence since its access"),
    RaceType.IMPROPER_LOCKING: (
        "R5", "improper locking (lockset): locks are in use for this "
        "granule but the previous and current lock sets do not intersect"),
}


def _decode_word(struct, word: int) -> Dict[str, int]:
    """Field-by-field decode of one packed metadata word."""
    return {
        f.name: f.extract(word) for f in struct.fields if f.name != "Unused"
    }


@dataclass(frozen=True)
class WindowEntry:
    """One instruction in the sliding pre-race window."""

    seq: int
    ip: str
    op: str  # "load" / "store" / "atomic:add" / "sync:fence" / ...
    address: Optional[int]
    warp_id: int
    lane: int
    batch: int


@dataclass(frozen=True)
class LockTimelineEntry:
    """One lock-inference step (CAS insert / fence activate / EXCH release)."""

    seq: int
    action: str
    ip: str
    warp_id: int
    lane: int
    detail: str


@dataclass(frozen=True)
class MetadataTransition:
    """One metadata update of the racing granule: words before → after."""

    seq: int
    ip: str
    op: str
    accessor_before: int
    writer_before: int
    accessor_after: int
    writer_after: int
    outcome: str  # "P1".."P6", "R1".."R5", or "updated"


@dataclass
class RaceForensics:
    """Everything reconstructed about one reported race."""

    seed: int
    record: RaceRecord
    condition: str
    condition_text: str
    current_ip: str
    previous_ip: Optional[str]
    accessor_word_before: int
    writer_word_before: int
    accessor_fields: Dict[str, int] = field(default_factory=dict)
    writer_fields: Dict[str, int] = field(default_factory=dict)
    window: List[WindowEntry] = field(default_factory=list)
    lock_timeline: List[LockTimelineEntry] = field(default_factory=list)
    metadata_history: List[MetadataTransition] = field(default_factory=list)


class ForensicProbe:
    """Detector probe collecting per-access provenance during replay.

    Attach with ``detector.probe = probe``; the detector invokes the
    ``on_*`` hooks inline (they only run when a probe is set, so normal
    runs pay a single ``is not None`` test per event).
    """

    def __init__(self, site: str = "", window: int = 16, history: int = 8):
        #: Substring of the racing ip to match ("" matches every race).
        self.site = site
        self.seed = 0
        self.reports: List[RaceForensics] = []
        self._seq = 0
        self._window: Deque[WindowEntry] = deque(maxlen=window)
        self._locks: List[LockTimelineEntry] = []
        self._history: Dict[int, Deque[MetadataTransition]] = {}
        self._history_depth = history
        #: Last access per granule, for naming the racing pair's other half.
        self._last_access: Dict[int, WindowEntry] = {}
        #: Race(s) reported by the check currently in flight.
        self._pending: List[Tuple[RaceRecord, object]] = []
        self._pre_words: Dict[int, Tuple[int, int]] = {}

    # -- detector hooks -------------------------------------------------

    def on_check(self, event, granule: int, accessor_word: int, writer_word: int) -> None:
        """Called before the Table 2 checks with the pre-check words."""
        self._seq += 1
        self._pre_words[granule] = (accessor_word, writer_word)
        op = event.kind.value
        if event.atomic_op is not None:
            op = f"atomic:{event.atomic_op.value}"
        self._window.append(WindowEntry(
            seq=self._seq,
            ip=event.ip,
            op=op,
            address=event.address,
            warp_id=event.where.warp_id,
            lane=event.where.lane,
            batch=event.batch,
        ))

    def on_race(self, record: RaceRecord, md) -> None:
        """Called by the detector's ``_report`` for every dynamic race."""
        self._pending.append((record, md))

    def on_outcome(
        self,
        event,
        granule: int,
        passed: Optional[str],
        race_type: Optional[RaceType],
        accessor_word: int,
        writer_word: int,
    ) -> None:
        """Called after write-back; finalizes history and pending races."""
        pre_acc, pre_wr = self._pre_words.pop(granule, (0, 0))
        outcome = passed or (str(race_type and CONDITION_OF[race_type][0]) if race_type else "updated")
        history = self._history.get(granule)
        if history is None:
            history = deque(maxlen=self._history_depth)
            self._history[granule] = history
        entry = self._window[-1] if self._window else None
        history.append(MetadataTransition(
            seq=self._seq,
            ip=event.ip,
            op=entry.op if entry is not None else event.kind.value,
            accessor_before=pre_acc,
            writer_before=pre_wr,
            accessor_after=accessor_word,
            writer_after=writer_word,
            outcome=outcome,
        ))
        for record, md in self._pending:
            if self.site and self.site not in record.ip:
                continue
            previous = self._last_access.get(granule)
            condition, text = CONDITION_OF[record.race_type]
            self.reports.append(RaceForensics(
                seed=self.seed,
                record=record,
                condition=condition,
                condition_text=text,
                current_ip=record.ip,
                previous_ip=previous.ip if previous is not None else None,
                accessor_word_before=pre_acc,
                writer_word_before=pre_wr,
                accessor_fields=_decode_word(ACCESSOR_WORD, pre_acc),
                writer_fields=_decode_word(WRITER_WORD, pre_wr),
                window=list(self._window),
                lock_timeline=list(self._locks),
                metadata_history=list(history),
            ))
        self._pending.clear()
        if self._window:
            self._last_access[granule] = self._window[-1]

    def on_lock(self, action: str, event, detail: str = "") -> None:
        """Called on lock-inference steps (CAS/EXCH/fence activation)."""
        self._seq += 1
        self._locks.append(LockTimelineEntry(
            seq=self._seq,
            action=action,
            ip=event.ip,
            warp_id=event.where.warp_id,
            lane=event.where.lane,
            detail=detail,
        ))

    def on_sync(self, event) -> None:
        """Called on synchronization operations, for the window timeline."""
        self._seq += 1
        self._window.append(WindowEntry(
            seq=self._seq,
            ip=event.ip,
            op=f"sync:{event.kind.value}",
            address=None,
            warp_id=event.where.warp_id,
            lane=event.where.lane,
            batch=event.batch,
        ))


# ---------------------------------------------------------------------------
# Replay-driven explanation
# ---------------------------------------------------------------------------


def explain_trace(
    trace,
    site: str = "",
    window: int = 16,
    config=None,
) -> List[RaceForensics]:
    """Replay a recorded trace and reconstruct every race matching ``site``.

    Pure replay: the trace fully determines the event stream, so the
    forensic detector observes exactly the execution that was recorded.
    The replayed detector runs with the same-epoch fast path disabled —
    elision replays cached *outcomes*, while forensics wants every check
    derived in full — which by the PR 2 invariant changes no detection
    output.
    """
    from repro.core.config import DEFAULT_CONFIG
    from repro.core.detector import IGuard
    from repro.engine.replay import ReplayDevice, replay
    from repro.errors import TimeoutError_
    from repro.workloads.base import SIM_GPU

    detector_config = replace(config or DEFAULT_CONFIG, fast_path=False)
    gpu = trace.gpu_config or SIM_GPU
    reports: List[RaceForensics] = []
    for seed, events in trace.runs():
        device = ReplayDevice(gpu)
        probe = ForensicProbe(site=site, window=window)
        probe.seed = seed
        tool = IGuard(config=detector_config)
        tool.probe = probe
        device.add_tool(tool)
        try:
            replay(events, device=device)
        except TimeoutError_:
            pass  # races up to the timeout stand, like the live runner's
        reports.extend(probe.reports)
    return reports


def explain_workload(
    name: str,
    site: str = "",
    seeds=None,
    window: int = 16,
) -> List[RaceForensics]:
    """Capture ``name``'s trace once, then :func:`explain_trace` it."""
    from repro.engine.replay import capture_workload
    from repro.workloads import get_workload

    workload = get_workload(name)
    trace = capture_workload(workload, seeds=seeds)
    return explain_trace(trace, site=site, window=window)


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def _fields_line(fields: Dict[str, int]) -> str:
    return " ".join(f"{k}={v}" for k, v in fields.items())


def forensics_to_dict(forensics: RaceForensics) -> dict:
    """The machine-readable form of one reconstructed race.

    Deterministic for a pinned (workload, seed): replay fully determines
    the event stream, so this is golden-file testable.  Metadata words
    render as fixed-width hex strings (JSON numbers would lose the
    visual field alignment and risk 2**63 precision traps downstream).
    """
    record = forensics.record
    return {
        "seed": forensics.seed,
        "race": {
            "type": str(record.race_type),
            "kernel": record.kernel,
            "ip": record.ip,
            "access": record.access,
            "address": f"0x{record.address:x}",
            "location": record.location,
            "warp_id": record.warp_id,
            "lane": record.lane,
            "block_id": record.block_id,
            "prev_warp_id": record.prev_warp_id,
            "prev_lane": record.prev_lane,
        },
        "condition": forensics.condition,
        "condition_text": forensics.condition_text,
        "racing_pair": {
            "current_ip": forensics.current_ip,
            "previous_ip": forensics.previous_ip,
        },
        "metadata_words": {
            "accessor": f"0x{forensics.accessor_word_before:016x}",
            "writer": f"0x{forensics.writer_word_before:016x}",
            "accessor_fields": dict(forensics.accessor_fields),
            "writer_fields": dict(forensics.writer_fields),
        },
        "metadata_history": [
            {
                "seq": tr.seq,
                "ip": tr.ip,
                "op": tr.op,
                "accessor_before": f"0x{tr.accessor_before:016x}",
                "writer_before": f"0x{tr.writer_before:016x}",
                "accessor_after": f"0x{tr.accessor_after:016x}",
                "writer_after": f"0x{tr.writer_after:016x}",
                "outcome": tr.outcome,
            }
            for tr in forensics.metadata_history
        ],
        "lock_timeline": [
            {
                "seq": entry.seq,
                "action": entry.action,
                "ip": entry.ip,
                "warp_id": entry.warp_id,
                "lane": entry.lane,
                "detail": entry.detail,
            }
            for entry in forensics.lock_timeline
        ],
        "window": [
            {
                "seq": entry.seq,
                "ip": entry.ip,
                "op": entry.op,
                "address": (
                    f"0x{entry.address:x}"
                    if entry.address is not None
                    else None
                ),
                "warp_id": entry.warp_id,
                "lane": entry.lane,
                "batch": entry.batch,
            }
            for entry in forensics.window
        ],
    }


def render_json(reports: List[RaceForensics], shown: int) -> str:
    """The ``--format json`` document: schema header + report list."""
    import json

    document = {
        "schema": 1,
        "generated_by": "repro.obs.forensics",
        "matched": len(reports),
        "reports": [
            forensics_to_dict(forensics) for forensics in reports[:shown]
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_report(forensics: RaceForensics) -> str:
    """The human-readable explain report for one reconstructed race."""
    record = forensics.record
    lines = [
        f"RACE [{record.race_type}] at {record.ip} (seed {forensics.seed})",
        f"  kernel: {record.kernel}    location: {record.location} "
        f"(0x{record.address:x})",
        "",
        "  racing instruction pair:",
        f"    current : {forensics.current_ip} ({record.access}) by "
        f"w{record.warp_id}.t{record.lane} (block {record.block_id})",
        f"    previous: {forensics.previous_ip or '<unknown>'} by "
        f"w{record.prev_warp_id}.t{record.prev_lane}",
        "",
        "  metadata words before the check:",
        f"    accessor = 0x{forensics.accessor_word_before:016x}  "
        f"[{_fields_line(forensics.accessor_fields)}]",
        f"    writer   = 0x{forensics.writer_word_before:016x}  "
        f"[{_fields_line(forensics.writer_fields)}]",
        "",
        f"  fired condition: {forensics.condition} — {forensics.condition_text}",
    ]
    if forensics.metadata_history:
        lines += ["", "  metadata transitions of the racing granule:"]
        for tr in forensics.metadata_history:
            lines.append(
                f"    #{tr.seq:<6} {tr.op:<12} {tr.ip:<28} "
                f"acc 0x{tr.accessor_before:016x}->0x{tr.accessor_after:016x} "
                f"[{tr.outcome}]"
            )
    if forensics.lock_timeline:
        lines += ["", "  lock-inference timeline:"]
        for entry in forensics.lock_timeline:
            detail = f" ({entry.detail})" if entry.detail else ""
            lines.append(
                f"    #{entry.seq:<6} {entry.action:<14} "
                f"w{entry.warp_id}.t{entry.lane} at {entry.ip}{detail}"
            )
    else:
        lines += ["", "  lock-inference timeline: (no lock activity observed)"]
    if forensics.window:
        lines += ["", "  instruction window before the race:"]
        for entry in forensics.window:
            addr = f"0x{entry.address:x}" if entry.address is not None else "-"
            lines.append(
                f"    #{entry.seq:<6} b{entry.batch:<7} "
                f"w{entry.warp_id}.t{entry.lane}  {entry.op:<12} {addr:<12} "
                f"{entry.ip}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI: iguard-experiments explain <race-site>
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    from repro.obs import (
        add_observability_args,
        begin_observability,
        finalize_observability,
    )

    parser = argparse.ArgumentParser(
        prog="iguard-experiments explain",
        description="Reconstruct a race's provenance from a recorded trace.",
    )
    parser.add_argument(
        "site",
        nargs="?",
        default="",
        metavar="RACE-SITE",
        help="racing instruction to explain (substring of the reported "
             "ip; default: every race in the trace)",
    )
    parser.add_argument(
        "--workload", default=None, metavar="NAME",
        help="Table 4 workload to capture a trace from",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="previously recorded trace (.jsonl / .jsonl.gz) to replay",
    )
    parser.add_argument(
        "--seeds", default=None, metavar="S1,S2",
        help="scheduler seeds when capturing (default: the workload's)",
    )
    parser.add_argument(
        "--window", type=int, default=16,
        help="instruction-window length in the report (default 16)",
    )
    parser.add_argument(
        "--max-reports", type=int, default=4,
        help="print at most this many reconstructed races (default 4)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="output format: human-readable text (default) or a "
             "machine-readable JSON document on stdout",
    )
    add_observability_args(parser)
    args = parser.parse_args(argv)
    begin_observability(args)
    logger = get_logger("forensics")

    if bool(args.workload) == bool(args.trace):
        parser.error("exactly one of --workload or --trace is required")

    if args.trace:
        from repro.engine.trace import Trace

        logger.info("replaying recorded trace %s", args.trace)
        trace = Trace.load(args.trace)
        reports = explain_trace(trace, site=args.site, window=args.window)
    else:
        seeds = (
            tuple(int(s) for s in args.seeds.split(",")) if args.seeds else None
        )
        logger.info("capturing %s, then explaining via replay", args.workload)
        reports = explain_workload(
            args.workload, site=args.site, seeds=seeds, window=args.window
        )

    finalize_observability(args)
    if not reports:
        if args.format == "json":
            output(render_json([], 0))
        target = args.site or "<any>"
        logger.warning("no race matching %r was reported during replay", target)
        return 1
    if args.format == "json":
        output(render_json(reports, max(1, args.max_reports)))
        return 0
    shown = reports[: max(1, args.max_reports)]
    for index, forensics in enumerate(shown):
        if index:
            output("")
        output(render_report(forensics))
    if len(reports) > len(shown):
        output(
            f"\n({len(reports) - len(shown)} further dynamic race(s) "
            f"matched; raise --max-reports to see them)"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
