"""Run-health watchdog: SLO rules over the sampled telemetry series.

Evaluated once per sampler tick (:meth:`Watchdog.observe` is called by
:class:`repro.obs.telemetry.TelemetrySampler` on the sampler thread,
never on the detection path), the watchdog turns the live series into a
small set of operational verdicts:

``worker_stall``
    A worker's heartbeat shows the same cell running longer than the
    stall threshold — the live version of the supervisor's soft-timeout
    warning, visible over ``/healthz`` while the cell is still stuck.
``shard_imbalance``
    The ``shard.imbalance`` gauge (max/mean events per shard) exceeds
    its ratio once enough events have been routed to make the ratio
    meaningful.
``fastpath_churn``
    The adaptive fast path is disabling itself on a large fraction of
    kernels — the workload defeats the same-epoch elision cache and the
    warm-up cost is being paid for nothing.
``retry_burn``
    Cell retries are burning budget faster than the per-minute
    threshold; at this rate the run ends in ``RetryExhaustedError``.
``event_quarantine``
    Poison events have been quarantined (``quarantine.events`` total) —
    detection kept going but skipped raising records, so recall is
    degraded the same bounded way ``metadata_max_entries`` degrades it.

Each rule fires at most one leveled warning per subject (worker pid,
rule name) but keeps updating the finding's ``last_seen``/``worst``
fields; :meth:`health_block` renders the machine-readable ``health``
section embedded in the final report, the ``--metrics-out`` document and
the ``telemetry.jsonl`` tail.  Findings are advisory: a degraded run
still exits 0 — the watchdog reports, the retry/timeout machinery in
:mod:`repro.engine.parallel` enforces.

Thresholds come from :class:`WatchdogConfig`, overridable with the
``IGUARD_WATCHDOG`` env spec (``key=value`` pairs, comma-separated, same
grammar as ``IGUARD_CHAOS``): ``stall_s``, ``imbalance_ratio``,
``imbalance_min_events``, ``churn_ratio``, ``churn_min_decisions``,
``retries_per_min``, ``quarantine_events``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.log import get_logger

ENV_VAR = "IGUARD_WATCHDOG"

logger = get_logger("watchdog")


@dataclass
class WatchdogConfig:
    """Thresholds for the SLO rules (see module docstring)."""

    #: A running cell older than this many seconds is a stall finding.
    stall_s: float = 30.0
    #: shard.imbalance (max/mean) above this fires shard_imbalance ...
    imbalance_ratio: float = 2.0
    #: ... but only once this many events have been routed in total.
    imbalance_min_events: int = 10_000
    #: disabled/(kept+disabled) above this fires fastpath_churn ...
    churn_ratio: float = 0.5
    #: ... but only after this many auto decisions.
    churn_min_decisions: int = 8
    #: Retry deltas scaled to a per-minute rate above this fire retry_burn.
    retries_per_min: float = 6.0
    #: Cumulative quarantined (poison) events at or above this fire
    #: event_quarantine — detection is degrading by absorbing raising
    #: records (see repro.faults.quarantine).
    quarantine_events: int = 1

    @classmethod
    def from_env(cls, spec: Optional[str] = None) -> "WatchdogConfig":
        """Parse an ``IGUARD_WATCHDOG`` style ``k=v,k=v`` spec."""
        spec = os.environ.get(ENV_VAR, "") if spec is None else spec
        config = cls()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if not hasattr(config, key):
                logger.warning("unknown watchdog threshold %r ignored", key)
                continue
            current = getattr(config, key)
            setattr(config, key, type(current)(float(value)))
        return config

    def as_dict(self) -> dict:
        return {
            "stall_s": self.stall_s,
            "imbalance_ratio": self.imbalance_ratio,
            "imbalance_min_events": self.imbalance_min_events,
            "churn_ratio": self.churn_ratio,
            "churn_min_decisions": self.churn_min_decisions,
            "retries_per_min": self.retries_per_min,
            "quarantine_events": self.quarantine_events,
        }


@dataclass
class Finding:
    """One fired SLO rule, deduplicated by (rule, subject)."""

    rule: str
    subject: str
    level: str
    message: str
    first_seen: float
    last_seen: float
    worst: float = 0.0
    count: int = 1
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "subject": self.subject,
            "level": self.level,
            "message": self.message,
            "first_seen": round(self.first_seen, 3),
            "last_seen": round(self.last_seen, 3),
            "worst": round(self.worst, 3),
            "count": self.count,
            "detail": self.detail,
        }


class Watchdog:
    """Evaluate the SLO rules against each telemetry sample."""

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config or WatchdogConfig.from_env()
        self._findings: Dict[Tuple[str, str], Finding] = {}
        self.ticks = 0

    # -- rule evaluation -----------------------------------------------

    def observe(
        self,
        sample,
        heartbeats: List[dict],
        totals: Dict[str, dict],
        now: Optional[float] = None,
    ) -> List[Finding]:
        """Evaluate every rule; returns findings fired *this* tick."""
        now = time.time() if now is None else now
        self.ticks += 1
        fired: List[Finding] = []
        fired.extend(self._check_worker_stall(heartbeats, now))
        fired.extend(self._check_shard_imbalance(totals, now))
        fired.extend(self._check_fastpath_churn(totals, now))
        fired.extend(self._check_retry_burn(sample, now))
        fired.extend(self._check_quarantine(totals, now))
        return fired

    def _check_worker_stall(
        self, heartbeats: List[dict], now: float
    ) -> List[Finding]:
        fired = []
        for worker in heartbeats:
            if worker.get("state") != "running":
                continue
            started = worker.get("started")
            if not started:
                continue
            age = now - started
            if age <= self.config.stall_s:
                continue
            fired.append(
                self._record(
                    rule="worker_stall",
                    subject=f"worker:{worker.get('pid')}",
                    level="warning",
                    message=(
                        f"worker {worker.get('pid')} has been running cell "
                        f"{worker.get('cell')!r} for {age:.1f}s "
                        f"(threshold {self.config.stall_s:.0f}s)"
                    ),
                    value=age,
                    now=now,
                    detail={
                        "pid": worker.get("pid"),
                        "cell": worker.get("cell"),
                        "attempt": worker.get("attempt"),
                        "running_s": round(age, 3),
                    },
                )
            )
        return fired

    def _check_shard_imbalance(
        self, totals: Dict[str, dict], now: float
    ) -> List[Finding]:
        routed = totals.get("shard.events_routed", {}).get("value", 0)
        if routed < self.config.imbalance_min_events:
            return []
        ratio = totals.get("shard.imbalance", {}).get("value", 0.0)
        if ratio <= self.config.imbalance_ratio:
            return []
        return [
            self._record(
                rule="shard_imbalance",
                subject="shards",
                level="warning",
                message=(
                    f"shard imbalance {ratio:.2f}x exceeds "
                    f"{self.config.imbalance_ratio:.2f}x over "
                    f"{routed} routed events — one shard is hot"
                ),
                value=ratio,
                now=now,
                detail={"imbalance": round(ratio, 3), "events_routed": routed},
            )
        ]

    def _check_fastpath_churn(
        self, totals: Dict[str, dict], now: float
    ) -> List[Finding]:
        kept = totals.get("detector.fastpath.auto_kept", {}).get("value", 0)
        disabled = totals.get(
            "detector.fastpath.auto_disabled", {}
        ).get("value", 0)
        decisions = kept + disabled
        if decisions < self.config.churn_min_decisions:
            return []
        ratio = disabled / decisions
        if ratio <= self.config.churn_ratio:
            return []
        return [
            self._record(
                rule="fastpath_churn",
                subject="fastpath",
                level="warning",
                message=(
                    f"adaptive fast path disabled itself on "
                    f"{disabled}/{decisions} kernels "
                    f"({100 * ratio:.0f}% > "
                    f"{100 * self.config.churn_ratio:.0f}%) — "
                    f"consider --fast-path off"
                ),
                value=ratio,
                now=now,
                detail={"kept": kept, "disabled": disabled,
                        "churn": round(ratio, 3)},
            )
        ]

    def _check_retry_burn(self, sample, now: float) -> List[Finding]:
        delta = sample.counters.get("parallel.retries", 0)
        interval = max(sample.interval, 1e-6)
        per_min = 60.0 * delta / interval
        if delta == 0 or per_min <= self.config.retries_per_min:
            return []
        return [
            self._record(
                rule="retry_burn",
                subject="retries",
                level="warning",
                message=(
                    f"cell retries burning at {per_min:.1f}/min "
                    f"(threshold {self.config.retries_per_min:.1f}/min) — "
                    f"retry budget exhaustion likely"
                ),
                value=per_min,
                now=now,
                detail={"retries_delta": delta,
                        "per_min": round(per_min, 2),
                        "interval_s": round(interval, 3)},
            )
        ]

    def _check_quarantine(
        self, totals: Dict[str, dict], now: float
    ) -> List[Finding]:
        absorbed = totals.get("quarantine.events", {}).get("value", 0)
        if absorbed < self.config.quarantine_events:
            return []
        return [
            self._record(
                rule="event_quarantine",
                subject="quarantine",
                level="warning",
                message=(
                    f"{absorbed} poison event(s) quarantined — detection "
                    f"continued but skipped raising records; see the "
                    f"report's quarantine block"
                ),
                value=float(absorbed),
                now=now,
                detail={"events": absorbed},
            )
        ]

    # -- finding bookkeeping -------------------------------------------

    def _record(
        self,
        rule: str,
        subject: str,
        level: str,
        message: str,
        value: float,
        now: float,
        detail: dict,
    ) -> Finding:
        key = (rule, subject)
        finding = self._findings.get(key)
        if finding is None:
            finding = Finding(
                rule=rule,
                subject=subject,
                level=level,
                message=message,
                first_seen=now,
                last_seen=now,
                worst=value,
                detail=detail,
            )
            self._findings[key] = finding
            getattr(logger, level, logger.warning)(
                "health: %s", message
            )
        else:
            finding.last_seen = now
            finding.count += 1
            finding.message = message
            finding.detail = detail
            if value > finding.worst:
                finding.worst = value
        return finding

    # -- reporting ------------------------------------------------------

    @property
    def findings(self) -> List[Finding]:
        return [
            self._findings[key] for key in sorted(self._findings)
        ]

    @property
    def status(self) -> str:
        return "warn" if self._findings else "ok"

    def health_block(self) -> dict:
        """The machine-readable ``health`` section for reports."""
        return {
            "status": self.status,
            "ticks": self.ticks,
            "rules": self.config.as_dict(),
            "findings": [finding.as_dict() for finding in self.findings],
        }
