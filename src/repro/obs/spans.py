"""Span tracing with Chrome/Perfetto ``trace_event`` JSON export.

A :class:`SpanTracer` accumulates *complete* events (``"ph": "X"``) in the
Chrome trace-event format, which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  A whole suite run renders as one
timeline: kernel launches and per-sink dispatch on the driver process,
suite cells on each worker process, and per-warp activity of a simulated
launch on a synthetic "simulated time" track (timestamps in scheduler
batches rather than microseconds — the shape of the interleaving, not its
wall-clock cost).

Timestamps are wall-anchored: each process computes ``time.time() -
perf_counter()`` once at import and reports ``perf_counter``-resolution
microseconds on that epoch base, so spans recorded in forked worker
processes line up with the parent's on one timeline.

Disabled (the default), the tracer costs one attribute test per guarded
call site — hot paths never create spans at all (per-event spans would
dwarf the traced work); the finest-grained wall-clock spans are per
launch and per suite cell.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

#: Wall-clock anchor for perf_counter-based timestamps (per process).
_EPOCH_OFFSET = time.time() - time.perf_counter()


def now_us() -> float:
    """Current wall-anchored timestamp in microseconds."""
    return (_EPOCH_OFFSET + time.perf_counter()) * 1e6


class SpanTracer:
    """An accumulator of Chrome trace-event records.

    Guard hot call sites with ``if TRACER.enabled:`` so a disabled tracer
    costs one attribute load; the recording methods also no-op themselves
    when disabled, so cold call sites may skip the guard.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[dict] = []
        self._named_tids: Dict[str, int] = {}
        self._named_pids: Dict[str, int] = {}

    # -- recording ------------------------------------------------------

    def add_complete(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        cat: str = "obs",
        pid: Optional[int] = None,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """One finished span (a ``"ph": "X"`` complete event)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round(ts_us, 3),
            "dur": round(dur_us, 3),
            "pid": pid if pid is not None else os.getpid(),
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def add_instant(
        self,
        name: str,
        ts_us: Optional[float] = None,
        cat: str = "obs",
        pid: Optional[int] = None,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """A zero-duration marker (``"ph": "i"``)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": round(ts_us if ts_us is not None else now_us(), 3),
            "pid": pid if pid is not None else os.getpid(),
            "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def name_process(self, pid: int, name: str) -> None:
        """Label a pid track (Perfetto shows the name instead of the number)."""
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        """Label a tid track within a pid."""
        self.events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    def tid_for(self, name: str) -> int:
        """A stable small integer tid for a named track (e.g. a sink)."""
        tid = self._named_tids.get(name)
        if tid is None:
            tid = len(self._named_tids) + 1
            self._named_tids[name] = tid
            self.name_thread(os.getpid(), tid, name)
        return tid

    def synthetic_pid(self, name: str) -> int:
        """A stable synthetic pid for a non-wall-clock track.

        Used for the "simulated time" tracks, whose timestamps are
        scheduler batch indices; a synthetic pid keeps them from
        interleaving with real wall-clock spans.
        """
        pid = self._named_pids.get(name)
        if pid is None:
            pid = 1_000_000 + len(self._named_pids)
            self._named_pids[name] = pid
            self.name_process(pid, name)
        return pid

    # -- worker hand-off ------------------------------------------------

    def drain(self) -> List[dict]:
        """Remove and return all recorded events (worker → parent hand-off)."""
        events, self.events = self.events, []
        return events

    def absorb(self, events: List[dict]) -> None:
        """Append events drained from another tracer (a worker process)."""
        self.events.extend(events)

    # -- export ---------------------------------------------------------

    def to_document(self) -> dict:
        """The exported JSON object (Chrome trace-event array format)."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"generated_by": "repro.obs.spans"},
        }

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_document(), handle, indent=None, separators=(",", ":"))
            handle.write("\n")


#: The process-wide tracer.  ``IGUARD_TRACE=1`` enables it at import so
#: forked/spawned workers inherit the setting.
TRACER = SpanTracer(
    enabled=os.environ.get("IGUARD_TRACE", "") not in ("", "0", "false")
)


def tracing_enabled() -> bool:
    return TRACER.enabled


def set_tracing(enabled: bool) -> None:
    TRACER.enabled = enabled
