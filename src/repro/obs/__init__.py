"""``repro.obs`` — the observability subsystem.

Three independent facilities, each near-zero cost when disabled (the
default), wired through every layer of the reproduction:

- :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  instrumenting the detector hot path, the scheduler, the event bus, and
  the parallel suite executor.  Hot-path call sites guard on a single
  ``HOT.enabled`` boolean, so a disabled registry costs one attribute
  load per guarded block.
- :mod:`repro.obs.spans` — span-based tracing with Chrome/Perfetto
  ``trace_event`` JSON export (``--trace-out``): launches, per-warp
  activity, per-sink dispatch, suite cells and worker processes render
  as one timeline.
- :mod:`repro.obs.log` — the leveled logging facade (stdlib ``logging``
  backed) separating diagnostics (stderr, ``IGUARD_LOG`` /
  ``--log-level``) from experiment output (stdout, :func:`~repro.obs.log.output`).

:mod:`repro.obs.forensics` (imported lazily — it depends on the core and
engine layers) reconstructs, from a recorded trace, why a race was
reported: the racing instruction pair, the metadata word history, and the
lock-inference timeline (``iguard-experiments explain``).

The CLI helpers below give every entry point (``iguard-experiments``, the
bench harness, the suite drivers, ``python -m repro.workloads.runner``)
the same three flags with one call each.
"""

from __future__ import annotations

import json

from repro.obs import log, metrics, spans

__all__ = [
    "log",
    "metrics",
    "spans",
    "add_observability_args",
    "begin_observability",
    "finalize_observability",
]


def add_observability_args(parser) -> None:
    """Register ``--log-level``, ``--metrics-out`` and ``--trace-out``."""
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warn", "warning", "error"],
        help="diagnostic verbosity (default: $IGUARD_LOG or info); "
             "diagnostics go to stderr, results stay on stdout",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable the metrics registry and write its JSON snapshot "
             "here at exit",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable span tracing and write a Chrome/Perfetto "
             "trace_event JSON here at exit",
    )


def begin_observability(args) -> None:
    """Apply parsed observability flags before any work runs."""
    log.configure(getattr(args, "log_level", None))
    if getattr(args, "metrics_out", None):
        metrics.set_enabled(True)
    if getattr(args, "trace_out", None):
        spans.set_tracing(True)


def finalize_observability(args) -> None:
    """Write the requested snapshot/trace artifacts after the work ran."""
    logger = log.get_logger("obs")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        document = metrics.get_registry().snapshot_document()
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info(
            "wrote metrics snapshot (%d metrics) to %s",
            len(document["metrics"]), metrics_out,
        )
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        spans.TRACER.save(trace_out)
        logger.info(
            "wrote Perfetto trace (%d events) to %s",
            len(spans.TRACER.events), trace_out,
        )
