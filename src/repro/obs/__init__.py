"""``repro.obs`` — the observability subsystem.

Independent facilities, each near-zero cost when disabled (the default),
wired through every layer of the reproduction:

- :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  instrumenting the detector hot path, the scheduler, the event bus, and
  the parallel suite executor.  Hot-path call sites guard on a single
  ``HOT.enabled`` boolean, so a disabled registry costs one attribute
  load per guarded block.
- :mod:`repro.obs.spans` — span-based tracing with Chrome/Perfetto
  ``trace_event`` JSON export (``--trace-out``): launches, per-warp
  activity, per-sink dispatch, suite cells and worker processes render
  as one timeline.
- :mod:`repro.obs.log` — the leveled logging facade (stdlib ``logging``
  backed) separating diagnostics (stderr, ``IGUARD_LOG`` /
  ``--log-level``) from experiment output (stdout, :func:`~repro.obs.log.output`).
- :mod:`repro.obs.telemetry` — the live layer: a time-series sampler
  over the registry (``--telemetry-out`` → ``telemetry.jsonl``) plus the
  supervisor's heartbeat channel, feeding
  :mod:`repro.obs.openmetrics` (the ``--serve-metrics`` scrape server:
  ``/metrics`` + ``/healthz``) and :mod:`repro.obs.watchdog` (SLO rules
  over the series, surfaced as a ``health`` block in final reports).
- :mod:`repro.obs.profiler` — per-phase sampling profiler behind
  ``bench --attribution`` (collapsed-stack flamegraphs, per-phase
  self-time).

:mod:`repro.obs.forensics` (imported lazily — it depends on the core and
engine layers) reconstructs, from a recorded trace, why a race was
reported: the racing instruction pair, the metadata word history, and the
lock-inference timeline (``iguard-experiments explain``).

The CLI helpers below give every entry point (``iguard-experiments``, the
bench harness, the suite drivers, ``python -m repro.workloads.runner``,
``python -m repro.faults.recall``) the same flags with one call each.
The telemetry stack is a **pure reader** of the registry: arming it
cannot change detection output (byte-identical reports with telemetry on
or off), and with the flags absent nothing starts.
"""

from __future__ import annotations

import json

from repro.obs import log, metrics, spans

__all__ = [
    "log",
    "metrics",
    "spans",
    "add_observability_args",
    "begin_observability",
    "finalize_observability",
    "active_watchdog",
]

#: The watchdog attached to the active sampler (None unless telemetry is
#: armed).  Reports read it through :func:`active_watchdog` at the end of
#: a run to embed the ``health`` block.
_WATCHDOG = None
_SERVER = None


def active_watchdog():
    """The run-health watchdog for this process, if telemetry is armed."""
    return _WATCHDOG


def add_observability_args(parser) -> None:
    """Register the shared observability flags on an argparse parser.

    ``--log-level``, ``--metrics-out``, ``--trace-out`` (the flight
    recorder), plus the live-telemetry trio: ``--telemetry-out``,
    ``--telemetry-interval`` and ``--serve-metrics``.
    """
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warn", "warning", "error"],
        help="diagnostic verbosity (default: $IGUARD_LOG or info); "
             "diagnostics go to stderr, results stay on stdout",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable the metrics registry and write its JSON snapshot "
             "here at exit",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable span tracing and write a Chrome/Perfetto "
             "trace_event JSON here at exit",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="sample the metrics registry on an interval and write the "
             "time series here as telemetry.jsonl at exit (implies "
             "metrics on)",
    )
    parser.add_argument(
        "--telemetry-interval",
        default=None,
        type=float,
        metavar="SECONDS",
        help="sampling interval for --telemetry-out / --serve-metrics "
             "(default 1.0)",
    )
    parser.add_argument(
        "--serve-metrics",
        default=None,
        type=int,
        metavar="PORT",
        help="serve live OpenMetrics on http://0.0.0.0:PORT/metrics and "
             "run health on /healthz while the run is in flight "
             "(implies metrics on; 0 picks a free port)",
    )


def _telemetry_requested(args) -> bool:
    return (
        getattr(args, "telemetry_out", None) is not None
        or getattr(args, "serve_metrics", None) is not None
    )


def begin_observability(args) -> None:
    """Apply parsed observability flags before any work runs."""
    global _WATCHDOG, _SERVER
    log.configure(getattr(args, "log_level", None))
    if getattr(args, "metrics_out", None) or _telemetry_requested(args):
        metrics.set_enabled(True)
    if getattr(args, "trace_out", None):
        spans.set_tracing(True)
    if _telemetry_requested(args):
        # Lazy imports: the telemetry stack only loads when armed.
        from repro.obs import telemetry
        from repro.obs.watchdog import Watchdog

        _WATCHDOG = Watchdog()
        interval = getattr(args, "telemetry_interval", None)
        sampler = telemetry.start_sampler(
            interval=interval if interval else telemetry.DEFAULT_INTERVAL,
            watchdog=_WATCHDOG,
        )
        port = getattr(args, "serve_metrics", None)
        if port is not None:
            from repro.obs.openmetrics import MetricsServer

            _SERVER = MetricsServer(
                port=port,
                health_provider=_WATCHDOG.health_block,
                heartbeats_provider=sampler.heartbeats.snapshot,
            ).start()


def finalize_observability(args) -> None:
    """Write the requested snapshot/trace artifacts after the work ran."""
    global _WATCHDOG, _SERVER
    logger = log.get_logger("obs")
    health = None
    sampler = None
    if _telemetry_requested(args):
        from repro.obs import telemetry

        sampler = telemetry.stop_sampler()
        if _WATCHDOG is not None:
            health = _WATCHDOG.health_block()
            for finding in health["findings"]:
                logger.warning(
                    "health finding [%s] %s", finding["rule"],
                    finding["message"],
                )
    if _SERVER is not None:
        _SERVER.stop()
        _SERVER = None
    telemetry_out = getattr(args, "telemetry_out", None)
    if telemetry_out and sampler is not None:
        records = sampler.write_jsonl(telemetry_out, health=health)
        logger.info(
            "wrote telemetry series (%d records, %d dropped) to %s",
            records, sampler.dropped, telemetry_out,
        )
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        document = metrics.get_registry().snapshot_document()
        if health is not None:
            document["health"] = health
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info(
            "wrote metrics snapshot (%d metrics) to %s",
            len(document["metrics"]), metrics_out,
        )
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        spans.TRACER.save(trace_out)
        logger.info(
            "wrote Perfetto trace (%d events) to %s",
            len(spans.TRACER.events), trace_out,
        )
    _WATCHDOG = None
