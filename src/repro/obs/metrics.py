"""The metrics registry: counters, gauges and histograms.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  The instrumented code paths are
   the hottest in the system (one detector check per dynamic memory
   instruction), so a disabled registry must cost almost nothing.  Every
   hot call site is written as::

       if HOT.enabled:
           HOT.detector_checked.inc()

   — one attribute load and one boolean test per guarded block, no
   function call, no dict lookup.  ``HOT`` carries the pre-registered
   hot-path instruments as plain attributes.

2. **Plain data out.**  ``snapshot()`` returns JSON-able dicts (the
   ``--metrics-out`` artifact is validated against a checked-in schema in
   CI), and worker-process snapshots merge losslessly into the parent
   registry (counters add, gauges last-write-wins, histograms merge
   bucket-wise) so ``--workers N`` suite runs aggregate like serial ones.

3. **No dependencies.**  Stdlib only; the registry works everywhere the
   reproduction does.

Enable with ``set_enabled(True)``, the ``--metrics-out`` CLI flags, or
``IGUARD_METRICS=1`` in the environment (read at import, so forked or
spawned workers inherit the setting).
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, Optional


class Counter:
    """A monotonically increasing count (float increments allowed)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> dict:
        value = self.value
        return {
            "type": "counter",
            "value": int(value) if float(value).is_integer() else value,
        }

    def merge(self, snap: dict) -> None:
        self.value += snap.get("value", 0)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}

    def merge(self, snap: dict) -> None:
        self.value = snap.get("value", self.value)


class Histogram:
    """Count/sum/min/max plus power-of-two magnitude buckets.

    Bucketing uses ``math.frexp`` — the bucket key is the binary exponent
    of the observed value — which is cheap, needs no preconfigured bounds,
    and merges trivially across processes.  Good enough to tell a 2 µs
    dispatch from a 2 ms one, which is what the registry is for.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else 0.0,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def merge(self, snap: dict) -> None:
        self.count += snap.get("count", 0)
        self.sum += snap.get("sum", 0.0)
        for bound in ("min", "max"):
            theirs = snap.get(bound)
            if theirs is None:
                continue
            ours = getattr(self, bound)
            if ours is None:
                setattr(self, bound, theirs)
            else:
                pick = min if bound == "min" else max
                setattr(self, bound, pick(ours, theirs))
        for key, count in snap.get("buckets", {}).items():
            key = int(key)
            self.buckets[key] = self.buckets.get(key, 0) + count


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of instruments with JSON snapshot/merge."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def reset(self) -> None:
        """Zero every instrument (keeps registrations)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> Dict[str, dict]:
        """Every instrument's current state as plain JSON-able dicts."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def snapshot_document(self) -> dict:
        """The ``--metrics-out`` artifact (see benchmarks/schemas/)."""
        return {
            "schema": 1,
            "generated_by": "repro.obs.metrics",
            "enabled": self.enabled,
            "metrics": self.snapshot(),
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Counters add, gauges last-write-wins, histograms merge buckets —
        so a parallel suite run aggregates to the same totals a serial
        one accumulates directly.
        """
        for name, snap in snapshot.items():
            cls = _KINDS.get(snap.get("type"))
            if cls is None:
                continue
            self._get(name, cls).merge(snap)


class _HotMetrics:
    """Pre-registered hot-path instruments behind one ``enabled`` flag.

    Call sites test ``HOT.enabled`` before touching any instrument; the
    flag mirrors the default registry's ``enabled`` and is flipped only
    through :func:`set_enabled`.
    """

    def __init__(self, registry: MetricsRegistry):
        self.enabled = registry.enabled
        # Detector hot path.
        self.detector_checked = registry.counter("detector.accesses_checked")
        self.detector_elided = registry.counter("detector.accesses_elided")
        self.detector_pruned = registry.counter("detector.accesses_pruned")
        self.detector_coalesced = registry.counter("detector.accesses_coalesced")
        self.detector_prelim_pass = registry.counter("detector.preliminary_pass")
        self.detector_race_tier = registry.counter("detector.race_checks_run")
        self.detector_races = registry.counter("detector.races_reported")
        self.detector_uvm_faults = registry.counter("detector.uvm.faults")
        self.detector_bloom_fp = registry.counter("detector.bloom.false_positives")
        self.contention_stalls = registry.counter("detector.contention.stalled_accesses")
        self.contention_cycles = registry.counter("detector.contention.serialized_cycles")
        # Lock tables (section 6.3).
        self.lock_inserts = registry.counter("detector.locktable.inserts")
        self.lock_evictions = registry.counter("detector.locktable.evictions")
        self.lock_activations = registry.counter("detector.locktable.activations")
        self.lock_releases = registry.counter("detector.locktable.releases")
        # Race reporting.
        self.races_dropped = registry.counter("racelog.records_dropped")
        self.race_flushes = registry.counter("racelog.buffer_flushes")
        # Scheduler.
        self.sched_batches = registry.counter("scheduler.batches")
        self.sched_divergent = registry.counter("scheduler.divergent_picks")
        self.sched_splits = registry.counter("scheduler.its_splits")
        self.sched_reconverged = registry.counter("scheduler.reconvergences")
        self.sched_barrier_releases = registry.counter("scheduler.barrier_releases")
        self.sched_occupancy = registry.histogram("scheduler.ready_warps")
        # Event bus.
        self.bus_publish_seconds = registry.histogram("bus.publish_seconds")
        # Replay engine.
        self.replay_events = registry.counter("replay.events")
        # Suite runner / parallel executor.
        self.runner_cells = registry.counter("runner.cells")
        self.parallel_cells = registry.counter("parallel.cells_completed")
        self.parallel_cell_seconds = registry.histogram("parallel.cell_seconds")
        self.parallel_soft_timeouts = registry.counter("parallel.soft_timeouts")
        self.parallel_hard_timeouts = registry.counter("parallel.hard_timeouts")
        self.parallel_retries = registry.counter("parallel.retries")
        self.parallel_worker_crashes = registry.counter("parallel.worker_crashes")
        # Chaos / fault injection (repro.faults).
        self.chaos_injected = registry.counter("chaos.injected_faults")
        # Checkpoint/resume journal.
        self.checkpoint_reused = registry.counter("checkpoint.cells_reused")
        # Metadata-table pressure (graceful degradation knob).
        self.metadata_evictions = registry.counter("detector.metadata.evictions")
        # Poison-event quarantine and resource budgets (repro.faults.fuzz).
        self.quarantined_events = registry.counter("quarantine.events")
        self.backpressure_drains = registry.counter("shard.backpressure_drains")
        self.pool_memo_evictions = registry.counter("trace.pool_memo_evictions")
        # Sharded detection core (repro.core.sharding).
        self.shard_routed = registry.counter("shard.events_routed")
        self.shard_broadcast = registry.counter("shard.events_broadcast")
        self.shard_flushes = registry.counter("shard.queue_flushes")
        self.shard_queue_depth = registry.histogram("shard.queue_depth")
        self.shard_imbalance = registry.gauge("shard.imbalance")
        # Columnar trace container (repro.engine.coltrace).
        self.trace_chunks = registry.counter("trace.chunks_decoded")
        self.trace_rows = registry.counter("trace.rows_decoded")
        # Adaptive fast path: per-kernel warm-up decisions.
        self.fastpath_auto_kept = registry.counter("detector.fastpath.auto_kept")
        self.fastpath_auto_disabled = registry.counter(
            "detector.fastpath.auto_disabled"
        )


_REGISTRY = MetricsRegistry(
    enabled=os.environ.get("IGUARD_METRICS", "") not in ("", "0", "false")
)
HOT = _HotMetrics(_REGISTRY)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY.enabled


def set_enabled(enabled: bool) -> None:
    """Turn the default registry (and the HOT fast-path flag) on or off."""
    _REGISTRY.enabled = enabled
    HOT.enabled = enabled
